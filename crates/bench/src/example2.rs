//! Section 5, Example 2 (Figures 9–11): SET_APPLY fusion and pushing work
//! inside COMP.
//!
//! "retrieve (S.name) by S.dept.division where S.dept.floor = 5" — the
//! student tuples hold a `dept` *reference*, so every access to a dept
//! attribute costs a DEREF; Figure 11's payoff is "the dept attribute
//! needs to be DEREF'd only once".

use excess_core::expr::{CmpOp, Expr, Func, Pred};
use excess_db::Database;
use excess_types::{SchemaType, Value};

/// Build the Example 2 database: `n` students over `depts` departments
/// (dept objects are referenced, floors cycle 1..=floors).
pub fn example2_db(n: usize, depts: usize, floors: usize) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    populate_example2(&mut db, n, depts, floors);
    db.collect_stats();
    db
}

/// Load the Example 2 schema and extents (`Dept2` objects in the store,
/// `S2` referencing them) into an existing database — shared between
/// [`example2_db`] and the server-mix builder.  Does not collect
/// statistics; callers do once everything is loaded.
pub fn populate_example2(db: &mut Database, n: usize, depts: usize, floors: usize) {
    db.execute("define type Dept2: (division: char[], dname: char[], floor: int4)")
        .unwrap();
    let dept_ty = db.registry().lookup("Dept2").unwrap();
    let dept_oids: Vec<_> = (0..depts.max(1))
        .map(|i| {
            let v = Value::tuple([
                ("division", Value::str(format!("div{}", i % 4))),
                ("dname", Value::str(format!("d{i}"))),
                ("floor", Value::int((i % floors.max(1)) as i32 + 1)),
            ]);
            db.store_mut().create_unchecked(dept_ty, v)
        })
        .collect();
    let students: Vec<Value> = (0..n)
        .map(|i| {
            Value::tuple([
                ("sname", Value::str(format!("s{i}"))),
                ("dept", Value::Ref(dept_oids[i % dept_oids.len()])),
            ])
        })
        .collect();
    db.put_object(
        "S2",
        SchemaType::set(SchemaType::tuple([
            ("sname", SchemaType::chars()),
            ("dept", SchemaType::reference("Dept2")),
        ])),
        Value::set(students),
    );
}

fn floor_is_5_via_deref() -> Pred {
    Pred::cmp(
        Expr::input().extract("dept").deref().extract("floor"),
        CmpOp::Eq,
        Expr::int(5),
    )
}

/// Drop empty groups: Figures 9/10 group *before* selecting, so divisions
/// with no 5th-floor students survive as empty groups, which the σ-first
/// Figure 11 never produces.  The paper's rule 10 is stated without this
/// compensation (see `excess-optimizer`'s rule docs); the benches add it
/// so all three plans return identical values.
fn drop_empty_groups(groups: Expr) -> Expr {
    groups.select(Pred::cmp(
        Expr::call(Func::Count, vec![Expr::input()]),
        CmpOp::Gt,
        Expr::int(0),
    ))
}

/// Figure 9 — the initial tree: GRP on `division(DEREF(dept))`, then a
/// per-group σ on `floor(DEREF(dept)) = 5`, then a per-group π of the
/// name.  Three passes; `dept` DEREF'd in both the grouping key and the σ.
pub fn figure9() -> Expr {
    drop_empty_groups(
        Expr::named("S2")
            .group_by(Expr::input().extract("dept").deref().extract("division"))
            .set_apply(
                Expr::input()
                    .select(floor_is_5_via_deref())
                    .set_apply(Expr::input().extract("sname")),
            ),
    )
}

/// Figure 10 — rule 15 applied twice: the per-group σ and π collapse into
/// one SET_APPLY whose body is `π(COMP(…))`.
pub fn figure10() -> Expr {
    drop_empty_groups(
        Expr::named("S2")
            .group_by(Expr::input().extract("dept").deref().extract("division"))
            .set_apply(
                Expr::input()
                    .set_apply(Expr::input().comp(floor_is_5_via_deref()).extract("sname")),
            ),
    )
}

/// Figure 11 — σ pushed ahead of GRP (rule 10) *and* the dereference
/// pushed inside the COMP (rule 26): each student's `dept` is DEREF'd
/// exactly once, into a projected pair `(sname, dept-value)`, and the
/// grouping key reads the already-materialised dept.
pub fn figure11() -> Expr {
    let project_and_test = Expr::input()
        .extract("sname")
        .make_tup("sname")
        .tup_cat(Expr::input().extract("dept").deref().make_tup("dept"))
        .comp(Pred::cmp(
            Expr::input().extract("dept").extract("floor"),
            CmpOp::Eq,
            Expr::int(5),
        ));
    Expr::named("S2")
        .set_apply(project_and_test)
        .group_by(Expr::input().extract("dept").extract("division"))
        .set_apply(Expr::input().set_apply(Expr::input().extract("sname")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_figures_agree() {
        let mut db = example2_db(100, 10, 5);
        let f9 = db.run_plan(&figure9()).unwrap();
        let f10 = db.run_plan(&figure10()).unwrap();
        let f11 = db.run_plan(&figure11()).unwrap();
        assert_eq!(f9, f10, "figure 9 vs 10");
        assert_eq!(f10, f11, "figure 10 vs 11");
        assert!(!f9.as_set().unwrap().is_empty());
    }

    #[test]
    fn figure11_halves_derefs() {
        let mut db = example2_db(200, 10, 5);
        db.run_plan(&figure9()).unwrap();
        let d9 = db.last_counters().derefs;
        db.run_plan(&figure11()).unwrap();
        let d11 = db.last_counters().derefs;
        // Figure 9 dereferences dept in GRP *and* σ (2 per student);
        // Figure 11 exactly once per student.
        assert_eq!(d11, 200);
        assert!(d9 >= 2 * d11 - 10, "figure9 {d9} derefs, figure11 {d11}");
    }

    #[test]
    fn optimizer_reaches_a_fused_plan_from_figure9() {
        // The greedy optimizer must find an estimated-cheaper (or equal)
        // plan and preserve the answer.  (Operator count may grow: the
        // winning plan is often the desugared σ → SET_APPLY∘COMP form,
        // which has more nodes but fewer passes.)
        let db = example2_db(50, 10, 5);
        let fused = db.optimize_plan(&figure9());
        let stats = db.statistics();
        assert!(
            excess_optimizer::cost_of(&fused, stats)
                <= excess_optimizer::cost_of(&figure9(), stats)
        );
        let mut db2 = example2_db(50, 10, 5);
        assert_eq!(
            db2.run_plan(&fused).unwrap(),
            db2.run_plan(&figure9()).unwrap()
        );
    }
}
