//! # excess-bench — shared fixtures for the paper's figure experiments
//!
//! Plan builders and data generators used by both the Criterion benches
//! (`benches/`) and the `report` binary that prints the EXPERIMENTS.md
//! rows.  Each builder constructs a *specific figure's query tree* so the
//! benches compare exactly the plans the paper draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod example1;
pub mod example2;
pub mod server_mix;

use excess_db::Database;
use excess_types::{SchemaType, Value};

/// A bench database preloaded with an array object `BigArr` of `len`
/// references (Figure 3 scaling) and nothing else.
pub fn array_db(len: usize) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.execute("define type Cell: (name: char[], salary: int4)")
        .unwrap();
    let cell_ty = db.registry().lookup("Cell").unwrap();
    let refs: Vec<Value> = (0..len)
        .map(|i| {
            let v = Value::tuple([
                ("name", Value::str(format!("n{i}"))),
                ("salary", Value::int(i as i32)),
            ]);
            Value::Ref(db.store_mut().create_unchecked(cell_ty, v))
        })
        .collect();
    db.put_object(
        "BigArr",
        SchemaType::array(SchemaType::reference("Cell")),
        Value::array(refs),
    );
    db
}

/// Milliseconds spent running `f` once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-n timing (milliseconds) for the report binary.
pub fn time_median<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..n.max(1)).map(|_| time_once(&mut f).1).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}
