//! Section 5, Example 1 (Figures 6–8): the DE-pushing pipeline.
//!
//! "retrieve unique (S.dept.name, E.name) by S.dept where S.advisor =
//! E.name" over value-typed advisors.  To keep the three figures'
//! structure exact (and projection names unprimed) the bench uses disjoint
//! field names:
//!
//! * `S(sdept: int4, sadv: char[], sname: char[])`
//! * `E(ename: char[], esal: int4)`
//!
//! The *duplication factor* d controls how many students share each
//! `(dept, advisor)` pair — exactly the lever the paper's prose attaches
//! to Figure 7 ("especially advantageous when the duplication factor is
//! large").

use excess_core::expr::{CmpOp, Expr, Pred};
use excess_db::Database;
use excess_types::{SchemaType, Value};

/// Build the Example 1 database: `n_students` students whose (dept,
/// advisor) pairs repeat every `dup` students, and `n_emps` employees.
pub fn example1_db(n_students: usize, n_emps: usize, dup: usize) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    populate_example1(&mut db, n_students, n_emps, dup);
    db.collect_stats();
    db
}

/// Load the Example 1 extents (`S1`, `E1`) into an existing database —
/// shared between [`example1_db`] and the server-mix builder.  Does not
/// collect statistics; callers do once everything is loaded.
pub fn populate_example1(db: &mut Database, n_students: usize, n_emps: usize, dup: usize) {
    let dup = dup.max(1);
    let distinct = (n_students / dup).max(1);
    let students: Vec<Value> = (0..n_students)
        .map(|i| {
            let k = i % distinct;
            Value::tuple([
                ("sdept", Value::int((k % 10) as i32)),
                (
                    "sadv",
                    Value::str(format!("e{}", k % (n_emps / dup).max(1))),
                ),
                ("sname", Value::str(format!("s{i}"))),
            ])
        })
        .collect();
    // Employee *names* repeat every `dup` employees too: that is what
    // makes the join output balloon toward |S|·|E| — the quantity the
    // Figure 8 rewrite keeps away from DE.
    let distinct_enames = (n_emps / dup).max(1);
    let emps: Vec<Value> = (0..n_emps)
        .map(|i| {
            Value::tuple([
                ("ename", Value::str(format!("e{}", i % distinct_enames))),
                ("esal", Value::int(1000 + i as i32)),
            ])
        })
        .collect();
    db.put_object(
        "S1",
        SchemaType::set(SchemaType::tuple([
            ("sdept", SchemaType::int4()),
            ("sadv", SchemaType::chars()),
            ("sname", SchemaType::chars()),
        ])),
        Value::set(students),
    );
    db.put_object(
        "E1",
        SchemaType::set(SchemaType::tuple([
            ("ename", SchemaType::chars()),
            ("esal", SchemaType::int4()),
        ])),
        Value::set(emps),
    );
}

fn join() -> Expr {
    Expr::named("S1").rel_join(
        Expr::named("E1"),
        Pred::cmp(
            Expr::input().extract("sadv"),
            CmpOp::Eq,
            Expr::input().extract("ename"),
        ),
    )
}

fn by_dept() -> Expr {
    Expr::input().extract("sdept")
}

fn pi() -> Expr {
    Expr::input().project(["sdept", "ename"])
}

/// Figure 6 — the parser-style initial tree: join, group, project per
/// group, then DE per group (`unique`).
pub fn figure6() -> Expr {
    join()
        .group_by(by_dept())
        .set_apply(Expr::input().set_apply(pi()).dup_elim())
}

/// Figure 7 — rule 8: DE (and the projection that feeds it) pushed ahead
/// of GRP: project + DE the join output once, then group.
pub fn figure7() -> Expr {
    join()
        .set_apply(pi())
        .dup_elim()
        .group_by(by_dept())
        .set_apply(Expr::input())
}

/// Figure 8 — DE and π pushed past the join: "DE operating on |S| + |E|
/// occurrences rather than |S| · |E| occurrences".
pub fn figure8() -> Expr {
    let s_small = Expr::named("S1")
        .set_apply(Expr::input().project(["sdept", "sadv"]))
        .dup_elim();
    let e_small = Expr::named("E1")
        .set_apply(Expr::input().project(["ename"]))
        .dup_elim();
    s_small
        .rel_join(
            e_small,
            Pred::cmp(
                Expr::input().extract("sadv"),
                CmpOp::Eq,
                Expr::input().extract("ename"),
            ),
        )
        .set_apply(pi())
        .dup_elim()
        .group_by(by_dept())
        .set_apply(Expr::input())
}

/// The canonical optimized plan the greedy optimizer converges on from
/// any of the three figures: [`figure8`] minus the vestigial trailing
/// per-group identity SET_APPLY (stripped by `rel7-identity-apply`).
pub fn figure8_canonical() -> Expr {
    let s_small = Expr::named("S1")
        .set_apply(Expr::input().project(["sdept", "sadv"]))
        .dup_elim();
    let e_small = Expr::named("E1")
        .set_apply(Expr::input().project(["ename"]))
        .dup_elim();
    s_small
        .rel_join(
            e_small,
            Pred::cmp(
                Expr::input().extract("sadv"),
                CmpOp::Eq,
                Expr::input().extract("ename"),
            ),
        )
        .set_apply(pi())
        .dup_elim()
        .group_by(by_dept())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_figures_agree() {
        let mut db = example1_db(60, 12, 6);
        let f6 = db.run_plan(&figure6()).unwrap();
        let f7 = db.run_plan(&figure7()).unwrap();
        let f8 = db.run_plan(&figure8()).unwrap();
        assert_eq!(f6, f7);
        assert_eq!(f7, f8);
        assert!(!f6.as_set().unwrap().is_empty());
    }

    #[test]
    fn figure8_shrinks_de_input() {
        // |S| + |E| occurrences into the input-side DEs, versus |S|·|E|-ish
        // on the join output in Figure 7.
        let mut db = example1_db(100, 100, 10);
        db.run_plan(&figure7()).unwrap();
        let de_late = db.last_counters().de_input_occurrences;
        db.run_plan(&figure8()).unwrap();
        let de_early = db.last_counters().de_input_occurrences;
        assert!(
            de_early < de_late,
            "early DE saw {de_early} occurrences, late saw {de_late}"
        );
    }

    #[test]
    fn duplication_factor_grows_the_gap() {
        // With d=1 the DE input sizes are close; with d=20 figure7's DE
        // input is ~20× smaller than figure6's per-group DEs see in total.
        let mut db_dup = example1_db(200, 10, 20);
        db_dup.run_plan(&figure6()).unwrap();
        let c6 = db_dup.last_counters().de_input_occurrences;
        db_dup.run_plan(&figure7()).unwrap();
        let c7 = db_dup.last_counters().de_input_occurrences;
        // Same total join output flows into DE either way; the win in
        // figure7/8 is downstream group sizes — measured via scans:
        db_dup.run_plan(&figure6()).unwrap();
        let s6 = db_dup.last_counters().occurrences_scanned;
        db_dup.run_plan(&figure7()).unwrap();
        let s7 = db_dup.last_counters().occurrences_scanned;
        assert!(s7 < s6, "figure7 scanned {s7}, figure6 scanned {s6}");
        let _ = (c6, c7);
    }
}
