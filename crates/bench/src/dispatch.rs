//! Section 4 / Figure 5: the two overridden-method strategies.
//!
//! Builders for the switch-table plan, the ⊎-based plan, and the
//! extent-indexed ⊎ plan, over a heterogeneous `P : { Person }` whose
//! employee members carry a tunable-size `sub_ords` set — the paper's
//! "component set … much larger than the containing set" lever.

use excess_core::expr::{CmpOp, Expr, Func, Pred};
use excess_db::Database;
use excess_optimizer::{apply_extent_indexes, build_switch, build_union, MethodImpl};
use excess_types::{SchemaType, Value};

/// Build a dispatch database: `n` members of `P` split evenly among exact
/// Person / Employee / Student, employees carrying `sub_ords` of the given
/// size (a nested set of salary ints, standing in for the ref-set — the
/// scan cost is what matters).
pub fn dispatch_db(n: usize, sub_ords: usize) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.execute(
        r#"define type Person: (name: char[])
           define type Employee: (salary: int4, sub_ords: { int4 }) inherits Person
           define type Student: (gpa: float4, friends: { int4 }) inherits Person"#,
    )
    .unwrap();
    let mut elems = Vec::with_capacity(n);
    for i in 0..n {
        let v = match i % 3 {
            0 => Value::tuple([("name", Value::str(format!("p{i}")))]),
            1 => Value::tuple([
                ("name", Value::str(format!("e{i}"))),
                ("salary", Value::int(1000 + i as i32)),
                (
                    "sub_ords",
                    Value::set((0..sub_ords).map(|k| Value::int(k as i32))),
                ),
            ]),
            _ => Value::tuple([
                ("name", Value::str(format!("s{i}"))),
                ("gpa", Value::float(3.0)),
                (
                    "friends",
                    Value::set((0..sub_ords / 2).map(|k| Value::int(k as i32))),
                ),
            ]),
        };
        elems.push(v);
    }
    db.put_object(
        "P",
        SchemaType::set(SchemaType::named("Person")),
        Value::set(elems),
    );
    db.collect_stats();
    db
}

/// The trivial `boss`-style bodies ("at most a DEREF and a TUP_EXTRACT").
pub fn trivial_impls() -> Vec<MethodImpl> {
    vec![
        MethodImpl {
            owner: "Person".into(),
            body: Expr::input().extract("name"),
        },
        MethodImpl {
            owner: "Employee".into(),
            body: Expr::input().extract("salary"),
        },
        MethodImpl {
            owner: "Student".into(),
            body: Expr::input().extract("gpa"),
        },
    ]
}

/// The expensive bodies: employee/student arms scan their nested sets
/// (the `sub_ords` scenario).
pub fn expensive_impls() -> Vec<MethodImpl> {
    let scan = |field: &str| {
        Expr::call(
            Func::Count,
            vec![Expr::input().extract(field).select(Pred::cmp(
                Expr::input(),
                CmpOp::Ge,
                Expr::int(0),
            ))],
        )
    };
    vec![
        MethodImpl {
            owner: "Person".into(),
            body: Expr::int(0),
        },
        MethodImpl {
            owner: "Employee".into(),
            body: scan("sub_ords"),
        },
        MethodImpl {
            owner: "Student".into(),
            body: scan("friends"),
        },
    ]
}

/// Strategy 1: the run-time switch table over one scan of P.
pub fn switch_plan(impls: &[MethodImpl]) -> Expr {
    build_switch(Expr::named("P"), impls)
}

/// Strategy 2 (Figure 5): ⊎ of exact-type-filtered SET_APPLYs.
pub fn union_plan(db: &Database, impls: &[MethodImpl]) -> Expr {
    build_union(db.registry(), Expr::named("P"), impls)
}

/// Strategy 2 with extent indexes: "the need to scan P three times …
/// disappears".  Call after [`index_extents`].
pub fn indexed_union_plan(db: &Database, impls: &[MethodImpl]) -> Expr {
    apply_extent_indexes(&union_plan(db, impls), db.statistics())
}

/// Declare extent indexes on P for all three types.
pub fn index_extents(db: &mut Database) {
    for t in ["Person", "Employee", "Student"] {
        db.create_extent_index("P", t).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_plans_agree() {
        let mut db = dispatch_db(30, 8);
        index_extents(&mut db);
        for impls in [trivial_impls(), expensive_impls()] {
            let sw = switch_plan(&impls);
            let un = union_plan(&db, &impls);
            let ix = indexed_union_plan(&db, &impls);
            let a = db.run_plan(&sw).unwrap();
            let b = db.run_plan(&un).unwrap();
            let c = db.run_plan(&ix).unwrap();
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn union_plan_scans_p_three_times_switch_once() {
        let mut db = dispatch_db(60, 4);
        let impls = trivial_impls();
        let sw = switch_plan(&impls);
        db.run_plan(&sw).unwrap();
        let s = db.last_counters().named_object_scans;
        let up = union_plan(&db, &impls);
        db.run_plan(&up).unwrap();
        let u = db.last_counters().named_object_scans;
        assert_eq!(s, 1);
        assert_eq!(u, 3);
    }

    #[test]
    fn indexed_union_avoids_rescans_and_type_tests() {
        let mut db = dispatch_db(60, 4);
        index_extents(&mut db);
        let impls = trivial_impls();
        let up = union_plan(&db, &impls);
        db.run_plan(&up).unwrap();
        let unindexed = db.last_counters().occurrences_scanned;
        let ip = indexed_union_plan(&db, &impls);
        db.run_plan(&ip).unwrap();
        let indexed = db.last_counters().occurrences_scanned;
        // Unindexed: 3 × |P| scans; indexed: |P| total (each extent once).
        assert_eq!(unindexed, 180);
        assert_eq!(indexed, 60);
    }
}
