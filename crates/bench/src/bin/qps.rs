//! High-QPS latency benchmark for the query server.
//!
//! Starts an in-process `excess-server` over the server-mix database,
//! then replays the Figure 6–11 surface-query mix from N concurrent
//! client threads over real sockets for a fixed duration.  Each client
//! records per-request wire latency into its own telemetry histogram;
//! the merged histogram yields the p50/p95/p99 the report asserts on.
//!
//! Before the timed run, one client replays every mix query once and
//! checks the wire result is byte-identical to the canonical JSON an
//! in-process session produces — the fidelity gate.  During the run a
//! low-rate writer thread commits appends, so the measured latencies
//! include snapshot publication racing the readers.
//!
//! Usage: `cargo run --release -p excess-bench --bin qps -- \
//!     [--clients N] [--duration-ms D] [--scale S]`
//!
//! Results are merged into `BENCH_report.json` as a `j_server` section
//! (replacing any previous one), preserving whatever the `report`
//! binary wrote.

#![forbid(unsafe_code)]

use excess_bench::server_mix::{server_mix_db, MIX};
use excess_db::{Histogram, Registry, VersionedDb};
use excess_server::{serve, Client};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    duration_ms: u64,
    scale: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        clients: 8,
        duration_ms: 2000,
        scale: 120,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |flag: &str, current: &mut usize| {
            if a == flag {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    *current = v;
                }
                true
            } else if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
                if let Ok(v) = v.parse() {
                    *current = v;
                }
                true
            } else {
                false
            }
        };
        let mut duration = out.duration_ms as usize;
        if take("--clients", &mut out.clients) || take("--scale", &mut out.scale) {
            continue;
        }
        if take("--duration-ms", &mut duration) {
            out.duration_ms = duration as u64;
        }
    }
    out.clients = out.clients.max(1);
    out.duration_ms = out.duration_ms.max(100);
    out
}

/// Extract the `"value":…` payload of a response line (it is always the
/// last field).
fn value_field(response: &str) -> Option<&str> {
    let idx = response.find("\"value\":")?;
    Some(&response[idx + "\"value\":".len()..response.len() - 1])
}

/// The pre-run fidelity gate: every mix query over the socket must be
/// canon-identical to an in-process session's result.
fn canon_check(addr: std::net::SocketAddr, vdb: &VersionedDb) -> usize {
    let mut client = Client::connect(addr).expect("connect for canon check");
    let mut session = vdb.begin_session();
    let mut checked = 0;
    for (label, src) in MIX {
        let response = client.request(src).expect("canon-check request");
        assert!(
            response.starts_with("{\"ok\":true"),
            "{label}: server rejected the query: {response}"
        );
        let wire = value_field(&response).expect("response carries a value");
        let out = session.query(src).expect("in-process query");
        let local = excess_db::value_json(&session.canon(&out.value));
        assert_eq!(wire, local, "{label}: wire and in-process results differ");
        checked += 1;
    }
    let _ = client.request(".close");
    checked
}

fn main() {
    let args = parse_args();
    let vdb = VersionedDb::new(server_mix_db(args.scale));
    let handle = serve(vdb.clone(), "127.0.0.1:0").expect("bind server");
    let addr = handle.addr();
    eprintln!(
        "qps: serving mix db (scale {}) on {addr}, {} clients, {} ms",
        args.scale, args.clients, args.duration_ms
    );

    let canon_checked = canon_check(addr, &vdb);

    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let deadline = started + Duration::from_millis(args.duration_ms);

    // A low-rate writer commits while clients read: measured latencies
    // include generation publication.
    let writer = {
        let vdb = vdb.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut commits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                vdb.commit(&format!(
                    "append to E1 ((ename: \"w{commits}\", esal: {}))",
                    5000 + commits as i64
                ))
                .expect("writer commit");
                commits += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            commits
        })
    };

    let clients: Vec<_> = (0..args.clients)
        .map(|c| {
            let stop = stop.clone();
            let errors = errors.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                let mut registry = Registry::new();
                let mut requests = 0u64;
                // Stagger starting points so clients don't run in
                // lockstep over the mix.
                let mut i = c;
                while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                    let (_, src) = MIX[i % MIX.len()];
                    i += 1;
                    let t0 = Instant::now();
                    let response = client.request(src).expect("request");
                    registry.observe("wire_us", t0.elapsed().as_micros() as u64);
                    requests += 1;
                    if !response.starts_with("{\"ok\":true") {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = client.request(".close");
                (registry, requests)
            })
        })
        .collect();

    let mut merged = Registry::new();
    let mut requests = 0u64;
    for client in clients {
        let (registry, n) = client.join().expect("client thread");
        merged.merge(&registry);
        requests += n;
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let commits = writer.join().expect("writer thread");

    let vdb = handle.shutdown();
    let stats = vdb.stats();
    let global = vdb.global_registry();
    vdb.shutdown().expect("committer shutdown");

    let errors = errors.load(Ordering::Relaxed);
    assert_eq!(errors, 0, "{errors} requests failed");
    let empty = Histogram::default();
    let wire = merged.histogram("wire_us").unwrap_or(&empty);
    let throughput = requests as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        wire.quantile(0.50),
        wire.quantile(0.95),
        wire.quantile(0.99),
    );

    eprintln!(
        "qps: {requests} requests in {:.2}s → {throughput:.0} q/s; \
         p50 {p50}us p95 {p95}us p99 {p99}us; {commits} commits, \
         server generation {}",
        elapsed.as_secs_f64(),
        stats.generation
    );

    // Server-side accounting must have seen every wire query: the
    // global registry holds the merged per-session registries.
    let server_queries = global.counter("queries");
    assert!(
        server_queries >= requests,
        "server counted {server_queries} queries for {requests} wire requests"
    );

    let j_server = format!(
        "{{\"clients\":{},\"duration_ms\":{},\"scale\":{},\"requests\":{requests},\
         \"errors\":{errors},\"throughput_qps\":{throughput:.1},\
         \"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{}}},\
         \"canon_checked\":{canon_checked},\"commits\":{commits},\
         \"generation\":{},\"sessions_opened\":{},\"commit_batches\":{}}}",
        args.clients,
        args.duration_ms,
        args.scale,
        wire.count(),
        wire.mean(),
        wire.max().unwrap_or(0),
        stats.generation,
        stats.sessions_opened,
        stats.commit_batches
    );

    let path = "BENCH_report.json";
    let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{}".to_string());
    // Replace any previous j_server section (it is always appended last).
    let base = match base.find(",\"j_server\":") {
        Some(idx) => format!("{}}}", &base[..idx]),
        None => base,
    };
    let trimmed = base.trim_end().strip_suffix('}').unwrap_or("{").trim_end();
    let separator = if trimmed.ends_with('{') { "" } else { "," };
    std::fs::write(
        path,
        format!("{trimmed}{separator}\"j_server\":{j_server}}}"),
    )
    .expect("write BENCH_report.json");
    println!("j_server merged into `{path}`.");
}
