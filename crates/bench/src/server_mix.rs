//! The server workload: one database carrying both Section 5 example
//! datasets, and the figure query mix expressed in EXCESS surface text
//! (what the wire protocol speaks, unlike the algebra `Expr` builders in
//! [`example1`](crate::example1) / [`example2`](crate::example2)).
//!
//! Used by the `qps` driver (N client threads replaying [`MIX`] against
//! a live server) and the server smoke tests (wire results must be
//! canon-identical to in-process session results).

use crate::example1::populate_example1;
use crate::example2::populate_example2;
use excess_db::Database;

/// One database with both example datasets:
///
/// * `S1` / `E1` — Example 1's value-typed students and employees
///   (Figures 6–8 family: join, group, unique),
/// * `Dept2` objects and `S2` — Example 2's referenced departments
///   (Figures 9–11 family: deref, group, select).
///
/// `scale` is the approximate student count per dataset; statistics are
/// collected once everything is loaded, and the optimizer stays on —
/// this is a serving workload, not a fixed-plan figure measurement.
pub fn server_mix_db(scale: usize) -> Database {
    let scale = scale.max(12);
    let mut db = Database::new();
    populate_example1(&mut db, scale, (scale / 2).max(6), 6);
    populate_example2(&mut db, scale, (scale / 10).max(4), 6);
    db.collect_stats();
    db
}

/// The figure query mix in surface text: `(label, program)` pairs, each
/// a single wire line.  Labels name the figure family each query
/// exercises.
pub const MIX: &[(&str, &str)] = &[
    (
        "f6_join_group_unique",
        "range of S is S1 range of E is E1 \
         retrieve unique (S.sdept, E.ename) by S.sdept where S.sadv = E.ename",
    ),
    ("f7_unique_by_dept", "retrieve unique (S1.sadv) by S1.sdept"),
    (
        "f8_selective_probe",
        "retrieve (S1.sname) where S1.sdept = 3",
    ),
    (
        "f9_deref_group",
        "range of T is S2 retrieve (T.sname) by T.dept.division where T.dept.floor = 5",
    ),
    (
        "f10_deref_select",
        "retrieve (S2.sname) where S2.dept.floor = 2",
    ),
    (
        "f11_deref_pair",
        "retrieve unique (S2.dept.division, S2.dept.floor)",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use excess_db::{value_json, VersionedDb};

    /// Every mix query must run both through `Database::execute` and a
    /// snapshot session, with canon-identical results — the in-process
    /// half of the wire-fidelity story.
    #[test]
    fn mix_queries_agree_between_database_and_session() {
        let mut db = server_mix_db(60);
        let vdb = VersionedDb::new(server_mix_db(60));
        let mut session = vdb.begin_session();
        for (label, src) in MIX {
            let direct = db.execute(src).unwrap_or_else(|e| panic!("{label}: {e}"));
            let direct = value_json(&excess_core::canon::canonical_form(&direct, db.store()));
            let out = session
                .query(src)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let via_session = value_json(&session.canon(&out.value));
            assert_eq!(via_session, direct, "{label}");
            assert!(out.rows > 0, "{label} returned no rows");
        }
        vdb.shutdown();
    }
}
