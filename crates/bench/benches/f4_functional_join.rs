//! Experiment F4 — Figure 4: the functional join
//! `retrieve (Employees.dept.name) where Employees.city = "Madison"`.
//!
//! Claim reproduced: the optimizer's output is semantics-preserving and no
//! slower than the translator's initial 4-level SET_APPLY pipeline;
//! selectivity (fraction of Madison residents) scales the work after the
//! filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_workload::{generate, queries, UniversityParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_functional_join");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for (emps, frac) in [(500usize, 0.05), (500, 0.5), (2000, 0.2)] {
        let p = UniversityParams {
            employees: emps,
            students: 10,
            madison_fraction: frac,
            ..Default::default()
        };
        let mut db = generate(&p).unwrap().db;
        // Strip the leading `range of`-free text: FIGURE4 is standalone.
        let initial = db.plan_for(queries::FIGURE4).unwrap();
        let optimized = db.optimize_plan(&initial);
        let id = format!("e{emps}_sel{}", (frac * 100.0) as u32);
        g.bench_with_input(BenchmarkId::new("initial", &id), &(), |b, _| {
            b.iter(|| db.run_plan(&initial).unwrap())
        });
        let mut db2 = generate(&p).unwrap().db;
        g.bench_with_input(BenchmarkId::new("optimized", &id), &(), |b, _| {
            b.iter(|| db2.run_plan(&optimized).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
