//! Experiment A1 — ablations of DESIGN.md's called-out design choices.
//!
//! 1. Multiset representation: the sorted-count-map kernels versus the
//!    deliberately naive `Vec` kernels kept in
//!    `excess_types::multiset::naive`.
//! 2. Optimizer benefit: Example 2's initial plan evaluated raw versus
//!    after the greedy rewrite pass (rule families 10/15/26 firing).
//! 3. Optimizer overhead: how long the greedy pass itself takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_bench::example2::{example2_db, figure9};
use excess_types::{multiset::naive, MultiSet, Value};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_multiset_kernels");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for n in [100usize, 1000, 4000] {
        let a: Vec<Value> = (0..n)
            .map(|i| Value::int((i % (n / 4).max(1)) as i32))
            .collect();
        let b: Vec<Value> = (0..n / 2).map(|i| Value::int(i as i32)).collect();
        let ms_a: MultiSet = a.iter().cloned().collect();
        let ms_b: MultiSet = b.iter().cloned().collect();
        g.bench_with_input(BenchmarkId::new("countmap_de", n), &(), |bch, _| {
            bch.iter(|| ms_a.dup_elim())
        });
        g.bench_with_input(BenchmarkId::new("naive_de", n), &(), |bch, _| {
            bch.iter(|| naive::dup_elim(&a))
        });
        g.bench_with_input(BenchmarkId::new("countmap_diff", n), &(), |bch, _| {
            bch.iter(|| ms_a.clone().difference(&ms_b))
        });
        g.bench_with_input(BenchmarkId::new("naive_diff", n), &(), |bch, _| {
            bch.iter(|| naive::difference(&a, &b))
        });
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_optimizer");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    let db = example2_db(2000, 40, 10);
    let initial = figure9();
    let optimized = db.optimize_plan(&initial);
    let mut db1 = example2_db(2000, 40, 10);
    g.bench_function("eval_initial", |b| {
        b.iter(|| db1.run_plan(&initial).unwrap())
    });
    let mut db2 = example2_db(2000, 40, 10);
    g.bench_function("eval_optimized", |b| {
        b.iter(|| db2.run_plan(&optimized).unwrap())
    });
    let db3 = example2_db(50, 40, 10);
    g.bench_function("greedy_rewrite_pass", |b| {
        b.iter(|| db3.optimize_plan(&initial))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_optimizer);
criterion_main!(benches);
