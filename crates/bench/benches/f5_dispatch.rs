//! Experiment F5 — Figure 5 / Section 4: overridden-method dispatch
//! strategies.
//!
//! Claims reproduced:
//! (a) for the trivial `boss`-style method the switch table beats the
//!     ⊎-of-type-filtered-scans plan ("the first technique … would
//!     certainly be preferable to scanning P three times");
//! (b) when bodies scan a large component set (`sub_ords`), the scans
//!     become negligible and the ⊎ plan is competitive/better;
//! (c) with per-exact-type extent indexes "the need to scan P three times
//!     … disappears" — the indexed ⊎ plan wins outright.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_bench::dispatch::{
    dispatch_db, expensive_impls, index_extents, indexed_union_plan, switch_plan, trivial_impls,
    union_plan,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f5_dispatch");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for (label, impls, n, sub) in [
        ("trivial", trivial_impls(), 3000usize, 0usize),
        ("expensive_sub64", expensive_impls(), 600, 64),
        ("expensive_sub512", expensive_impls(), 150, 512),
    ] {
        let mut db = dispatch_db(n, sub);
        index_extents(&mut db);
        let sw = switch_plan(&impls);
        let un = union_plan(&db, &impls);
        let ix = indexed_union_plan(&db, &impls);
        g.bench_with_input(BenchmarkId::new("switch", label), &(), |b, _| {
            b.iter(|| db.run_plan(&sw).unwrap())
        });
        let mut db2 = dispatch_db(n, sub);
        g.bench_with_input(BenchmarkId::new("union", label), &(), |b, _| {
            b.iter(|| db2.run_plan(&un).unwrap())
        });
        let mut db3 = dispatch_db(n, sub);
        index_extents(&mut db3);
        g.bench_with_input(BenchmarkId::new("union_indexed", label), &(), |b, _| {
            b.iter(|| db3.run_plan(&ix).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
