//! Experiment F6–F8 — Section 5 Example 1 (Figures 6, 7, 8).
//!
//! Claims reproduced:
//! * Figure 7 (DE + π ahead of GRP) "is especially advantageous when the
//!   duplication factor is large" — sweep d;
//! * Figure 8 (DE + π past the join) makes DE operate "on |S| + |E|
//!   occurrences rather than |S| · |E| occurrences" — the join inputs are
//!   deduplicated before pairing, so the pair count collapses too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_bench::example1::{example1_db, figure6, figure7, figure8};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_f8_example1");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for dup in [1usize, 8, 32] {
        let n_s = 512;
        let n_e = 256;
        let plans = [
            ("fig6", figure6()),
            ("fig7", figure7()),
            ("fig8", figure8()),
        ];
        for (name, plan) in plans {
            let mut db = example1_db(n_s, n_e, dup);
            g.bench_with_input(BenchmarkId::new(name, format!("dup{dup}")), &(), |b, _| {
                b.iter(|| db.run_plan(&plan).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
