//! Experiment F1 — Figure 1: bulk-loading the university database.
//!
//! No performance claim attaches to Figure 1 itself; this bench records
//! how load time scales with population so EXPERIMENTS.md can report the
//! substrate's baseline costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_workload::{generate, UniversityParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_load");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for scale in [1usize, 4, 16] {
        let p = UniversityParams::default().scaled(scale);
        g.bench_with_input(BenchmarkId::new("generate", scale), &p, |b, p| {
            b.iter(|| generate(p).unwrap().db.store().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
