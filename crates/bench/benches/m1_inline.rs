//! Experiment M1 — Section 4: "black box" versus inlined-and-optimized
//! methods.
//!
//! "The entire query, including the algebraic representation of the
//! method, may now be optimized as a single query.  This is clearly better
//! than using a 'black box' version of the method."
//!
//! The method body filters each employee's `kids`; the invoking query
//! filters the method's output again.  The black-box execution runs the
//! plugged-in tree verbatim (two passes over every kids set); joint
//! optimization fuses the filters (rules 15/27/rel1) into one pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_workload::{generate, UniversityParams};
use std::time::Duration;

const DEFINE_ADULT_KIDS: &str = r#"
define Employee function adult_kids () returns { Person }
{ retrieve (k) from k in this.kids where k.age >= 18 }
"#;

const INVOKE: &str = r#"
retrieve (c.name) from E in Employees, c in E.adult_kids()
where c.ssnum > 500000000
"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("m1_inline");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for kids in [4usize, 32] {
        let p = UniversityParams {
            employees: 300,
            students: 10,
            kids_per_employee: kids,
            ..Default::default()
        };
        let mut db = generate(&p).unwrap().db;
        db.execute(DEFINE_ADULT_KIDS).unwrap();
        let raw = db.plan_for(INVOKE).unwrap();
        let optimized = db.optimize_plan(&raw);
        g.bench_with_input(BenchmarkId::new("black_box", kids), &(), |b, _| {
            b.iter(|| db.run_plan(&raw).unwrap())
        });
        let mut db2 = generate(&p).unwrap().db;
        db2.execute(DEFINE_ADULT_KIDS).unwrap();
        g.bench_with_input(BenchmarkId::new("inlined_optimized", kids), &(), |b, _| {
            b.iter(|| db2.run_plan(&optimized).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
