//! Experiment F9–F11 — Section 5 Example 2 (Figures 9, 10, 11).
//!
//! Claims reproduced:
//! * Figure 10 (rule 15, twice): one scan instead of three per group;
//! * Figure 11 (rules 10 + 26): σ ahead of GRP wins at low selectivity,
//!   and `dept` is DEREF'd once per student instead of twice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_bench::example2::{example2_db, figure10, figure11, figure9};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f9_f11_example2");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    // floors controls selectivity of `floor = 5`: 1/floors of departments
    // qualify (0 when floors < 5).
    for (n, floors) in [(2000usize, 5usize), (2000, 20), (8000, 10)] {
        let plans = [
            ("fig9", figure9()),
            ("fig10", figure10()),
            ("fig11", figure11()),
        ];
        for (name, plan) in plans {
            let mut db = example2_db(n, 40, floors);
            g.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_fl{floors}")),
                &(),
                |b, _| b.iter(|| db.run_plan(&plan).unwrap()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
