//! Experiment F3 — Figure 3: `retrieve (TopTen[5].name, TopTen[5].salary)`.
//!
//! Claim reproduced: `ARR_EXTRACT` returns "simply the element itself" —
//! the Figure 3 plan touches one element and one object, so its cost is
//! flat in the array length, whereas the strawman that materialises the
//! whole array first (`ARR_APPLY DEREF`, then extract) scales linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use excess_bench::array_db;
use excess_core::expr::Expr;
use std::time::Duration;

/// The Figure 3 plan: π(DEREF(ARR_EXTRACT_5(A))).
fn figure3_plan() -> Expr {
    Expr::named("BigArr")
        .arr_extract(5)
        .deref()
        .project(["name", "salary"])
}

/// Strawman: dereference every element, then take the 5th.
fn materialise_first_plan() -> Expr {
    Expr::named("BigArr")
        .arr_apply(Expr::input().deref())
        .arr_extract(5)
        .project(["name", "salary"])
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_arr_extract");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(3));
    for len in [10usize, 1000, 100_000] {
        let mut db = array_db(len);
        let fig3 = figure3_plan();
        let straw = materialise_first_plan();
        g.bench_with_input(BenchmarkId::new("figure3", len), &len, |b, _| {
            b.iter(|| db.run_plan(&fig3).unwrap())
        });
        let mut db2 = array_db(len);
        g.bench_with_input(BenchmarkId::new("materialise_first", len), &len, |b, _| {
            b.iter(|| db2.run_plan(&straw).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
