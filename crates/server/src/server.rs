//! The TCP accept loop: one thread per connection, one snapshot
//! [`Session`](excess_db::Session) per connection, graceful shutdown.

use crate::protocol::respond;
use excess_db::VersionedDb;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running server: the bound address plus everything needed to stop
/// it cleanly.
pub struct ServerHandle {
    addr: SocketAddr,
    db: VersionedDb,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying versioned database (e.g. for in-process
    /// verification next to socket traffic).
    pub fn db(&self) -> &VersionedDb {
        &self.db
    }

    /// Stop accepting, close every open connection, and join all server
    /// threads.  Returns the [`VersionedDb`] so the caller can keep
    /// using it — or shut its committer down too.
    ///
    /// Sessions close as their connection threads exit, so every
    /// connection's metrics are merged into the database-wide registry
    /// by the time this returns.
    pub fn shutdown(mut self) -> VersionedDb {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` by connecting to ourselves; the accept loop
        // re-checks the stop flag before handling the connection.
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in workers {
            let _ = h.join();
        }
        self.db.clone()
    }
}

/// Bind `addr` (use port 0 for an ephemeral port) and serve `db` until
/// [`ServerHandle::shutdown`].
pub fn serve<A: ToSocketAddrs>(db: VersionedDb, addr: A) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let db = db.clone();
        let stop = stop.clone();
        let conns = conns.clone();
        let workers = workers.clone();
        std::thread::Builder::new()
            .name("excess-accept".into())
            .spawn(move || accept_loop(listener, db, stop, conns, workers))?
    };
    Ok(ServerHandle {
        addr,
        db,
        stop,
        accept_thread: Some(accept_thread),
        conns,
        workers,
    })
}

fn accept_loop(
    listener: TcpListener,
    db: VersionedDb,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(tracked) = stream.try_clone() {
            conns.lock().expect("conns lock").push(tracked);
        }
        let db = db.clone();
        let stop_conn = stop.clone();
        let spawned = std::thread::Builder::new()
            .name("excess-conn".into())
            .spawn(move || {
                let _ = handle_conn(stream, db, stop_conn);
            });
        if let Ok(handle) = spawned {
            workers.lock().expect("workers lock").push(handle);
        }
    }
}

fn handle_conn(stream: TcpStream, db: VersionedDb, stop: Arc<AtomicBool>) -> io::Result<()> {
    // The protocol is strict request/response; Nagle only adds latency.
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // One connection = one snapshot session; dropping it at the end of
    // this function merges its metrics into the database-wide registry.
    let mut session = db.begin_session();
    for line in reader.lines() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = respond(&db, &mut session, &line);
        writer.write_all(response.line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if response.close {
            break;
        }
    }
    Ok(())
}
