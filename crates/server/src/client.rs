//! A minimal blocking client for the line protocol — what the smoke
//! tests and the `qps` benchmark driver speak.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an EXCESS server: send a request line, read the
/// response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (see
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream })
    }

    /// Send one request line and block for its one-line JSON response
    /// (returned without the trailing newline).  Embedded newlines in
    /// `line` must already be escaped as `\n` — see
    /// [`unescape`](crate::unescape).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}
