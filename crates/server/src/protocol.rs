//! Request parsing and response building — the testable, socket-free
//! half of the server.
//!
//! One request line maps to one JSON response line:
//!
//! | request              | handled by                               |
//! |----------------------|------------------------------------------|
//! | bare program text    | [`Session::query`] on the pinned snapshot |
//! | `.commit <program>`  | [`Session::commit`] via the committer     |
//! | `.metrics`           | this session's metrics as JSON            |
//! | `.telemetry`         | this session's telemetry snapshot         |
//! | `.generation`        | the pinned generation number              |
//! | `.refresh`           | re-pin to the newest generation           |
//! | `.server`            | database-wide [`ServerStats`]             |
//! | `.memo`              | memo picture of the last optimization     |
//! | `.reoptimize`        | feedback-driven re-plan of the last query |
//! | `.close`             | acknowledge and close the connection      |
//!
//! Every response is one JSON object with an `"ok"` field; errors are
//! `{"ok":false,"error":"…"}` and never tear down the connection.

use excess_db::session::ServerStats;
use excess_db::{metrics_json, value_json, QueryOutcome, Session, VersionedDb};

use excess_core::json::quote_json;

/// A built response line plus whether the connection should close after
/// sending it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The JSON line to send (no trailing newline).
    pub line: String,
    /// True only for `.close`.
    pub close: bool,
}

impl Response {
    fn keep(line: String) -> Self {
        Response { line, close: false }
    }
}

/// Expand the protocol's escape sequences: `\n` → newline, `\t` → tab,
/// `\\` → backslash.  Anything else after a backslash passes through
/// unchanged, so ordinary query text — which never needs escapes — is
/// unaffected.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn error_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", quote_json(msg))
}

fn phases_json(phases: &[(&'static str, u64)]) -> String {
    let fields: Vec<String> = phases
        .iter()
        .map(|(name, us)| format!("{}:{us}", quote_json(name)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn outcome_line(session: &Session, out: &QueryOutcome) -> String {
    // Canonicalize before serializing: process-local OIDs must not
    // cross the wire.
    let canon = session.canon(&out.value);
    format!(
        "{{\"ok\":true,\"generation\":{},\"rows\":{},\"plan_hash\":{},\
         \"us\":{},\"phases\":{},\"value\":{}}}",
        out.generation,
        out.rows,
        quote_json(&format!("{:016x}", out.plan_hash)),
        out.total_us,
        phases_json(&out.phase_us),
        value_json(&canon)
    )
}

/// Serialize database-wide [`ServerStats`].
pub fn server_stats_json(s: &ServerStats) -> String {
    format!(
        "{{\"generation\":{},\"sessions_opened\":{},\"sessions_closed\":{},\
         \"commit_requests\":{},\"commit_batches\":{},\
         \"stats_full\":{},\"stats_incremental\":{},\"stats_skipped\":{}}}",
        s.generation,
        s.sessions_opened,
        s.sessions_closed,
        s.commit_requests,
        s.commit_batches,
        s.stats_full,
        s.stats_incremental,
        s.stats_skipped
    )
}

/// Handle one request line for one connection's session.  Never panics
/// on malformed input — every failure becomes an `"ok":false` response.
pub fn respond(db: &VersionedDb, session: &mut Session, line: &str) -> Response {
    let line = line.trim();
    if let Some(src) = line.strip_prefix(".commit") {
        let src = unescape(src.trim());
        if src.is_empty() {
            return Response::keep(error_line("usage: .commit <program>"));
        }
        return Response::keep(match session.commit(&src) {
            // Commit values come from the master database, whose store
            // is not visible here; writes return `true`/scalars in
            // practice, and any refs serialize opaquely.
            Ok((value, generation)) => format!(
                "{{\"ok\":true,\"generation\":{generation},\"value\":{}}}",
                value_json(&value)
            ),
            Err(e) => error_line(&e.to_string()),
        });
    }
    match line {
        ".metrics" => Response::keep(format!(
            "{{\"ok\":true,\"metrics\":{}}}",
            metrics_json(session.metrics())
        )),
        ".telemetry" => Response::keep(format!(
            "{{\"ok\":true,\"telemetry\":{}}}",
            session.telemetry().snapshot_json()
        )),
        ".generation" => Response::keep(format!(
            "{{\"ok\":true,\"generation\":{}}}",
            session.generation()
        )),
        ".refresh" => {
            session.refresh();
            Response::keep(format!(
                "{{\"ok\":true,\"generation\":{}}}",
                session.generation()
            ))
        }
        ".server" => Response::keep(format!(
            "{{\"ok\":true,\"server\":{}}}",
            server_stats_json(&db.stats())
        )),
        ".memo" => Response::keep(match session.last_memo() {
            Some(snapshot) => format!(
                "{{\"ok\":true,\"memo\":{}}}",
                quote_json(&snapshot.render())
            ),
            None => error_line("no memoized optimization yet (run a query in memo mode)"),
        }),
        ".reoptimize" => Response::keep(match session.reoptimize_last() {
            Some(report) => format!("{{\"ok\":true,\"reoptimize\":{}}}", quote_json(&report)),
            None => error_line(
                "nothing to re-optimize: no query yet, or no misestimation recorded for its plan",
            ),
        }),
        ".close" => Response {
            line: "{\"ok\":true,\"closing\":true}".to_string(),
            close: true,
        },
        unknown if unknown.starts_with('.') => {
            Response::keep(error_line(&format!("unknown command `{unknown}`")))
        }
        query => Response::keep(match session.query(&unescape(query)) {
            Ok(out) => outcome_line(session, &out),
            Err(e) => error_line(&e.to_string()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::json::parse_json;
    use excess_db::Database;

    fn vdb() -> VersionedDb {
        let mut db = Database::new();
        db.execute(
            "define type Dept : (dname: char, budget: int4) \
             create DS : {Dept} \
             append to DS ((dname: \"cs\", budget: 100)) \
             append to DS ((dname: \"ee\", budget: 200))",
        )
        .expect("seed");
        VersionedDb::new(db)
    }

    #[test]
    fn unescape_expands_newlines_only_when_escaped() {
        assert_eq!(unescape("a\\nb"), "a\nb");
        assert_eq!(unescape("a\\\\nb"), "a\\nb");
        assert_eq!(
            unescape("plain retrieve (DS.dname)"),
            "plain retrieve (DS.dname)"
        );
        assert_eq!(unescape("trailing\\"), "trailing\\");
    }

    #[test]
    fn query_responses_carry_value_generation_and_phases() {
        let db = vdb();
        let mut s = db.begin_session();
        let r = respond(&db, &mut s, "retrieve (DS.dname) where DS.budget > 150");
        assert!(!r.close);
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("generation").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("rows").unwrap().as_f64(), Some(1.0));
        assert!(v.get("phases").unwrap().get("execute").is_some());
        assert!(r.line.contains("\"ee\""), "{}", r.line);
        db.shutdown();
    }

    #[test]
    fn errors_are_json_not_disconnects() {
        let db = vdb();
        let mut s = db.begin_session();
        for bad in [
            "retrieve (Nope.x)",
            "append to DS ((dname: \"x\", budget: 1))",
            ".unknown",
            ".commit",
        ] {
            let r = respond(&db, &mut s, bad);
            assert!(!r.close, "{bad}");
            let v = parse_json(&r.line).expect("valid JSON");
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{bad}");
        }
        db.shutdown();
    }

    #[test]
    fn commit_bumps_generation_and_is_read_your_writes() {
        let db = vdb();
        let mut s = db.begin_session();
        let r = respond(
            &db,
            &mut s,
            ".commit append to DS ((dname: \"me\", budget: 300))",
        );
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("generation").unwrap().as_f64(), Some(1.0));
        let r = respond(&db, &mut s, "retrieve (DS.dname)");
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("rows").unwrap().as_f64(), Some(3.0));
        db.shutdown();
    }

    #[test]
    fn control_commands_answer_and_close_closes() {
        let db = vdb();
        let mut s = db.begin_session();
        respond(&db, &mut s, "retrieve (DS.dname)");
        let m = respond(&db, &mut s, ".metrics");
        let v = parse_json(&m.line).expect("valid JSON");
        assert_eq!(
            v.get("metrics").unwrap().get("queries").unwrap().as_f64(),
            Some(1.0)
        );
        let t = respond(&db, &mut s, ".telemetry");
        assert!(parse_json(&t.line)
            .unwrap()
            .get("telemetry")
            .unwrap()
            .get("registry")
            .is_some());
        let srv = respond(&db, &mut s, ".server");
        let v = parse_json(&srv.line).expect("valid JSON");
        assert!(v.get("server").unwrap().get("sessions_opened").is_some());
        let c = respond(&db, &mut s, ".close");
        assert!(c.close);
        db.shutdown();
    }

    #[test]
    fn memo_command_renders_the_group_picture() {
        let db = vdb();
        let mut s = db.begin_session();
        // Pin the mode: the suite may run under `EXCESS_OPTIMIZER=greedy`.
        s.optimizer_mode = excess_db::OptimizerMode::Memo;
        // Before any query there is nothing to show.
        let r = respond(&db, &mut s, ".memo");
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        respond(&db, &mut s, "retrieve unique (DS.dname)");
        let r = respond(&db, &mut s, ".memo");
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{}", r.line);
        let memo = v.get("memo").unwrap().as_str().unwrap().to_string();
        assert!(memo.contains("memo:") && memo.contains("winner:"), "{memo}");
        db.shutdown();
    }

    #[test]
    fn reoptimize_command_answers_in_json_either_way() {
        let db = vdb();
        let mut s = db.begin_session();
        // Nothing has run: a JSON error, not a disconnect.
        let r = respond(&db, &mut s, ".reoptimize");
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        respond(&db, &mut s, "retrieve (DS.dname)");
        let r = respond(&db, &mut s, ".reoptimize");
        assert!(!r.close);
        let v = parse_json(&r.line).expect("valid JSON");
        // With accurate estimates there may be nothing to correct; with a
        // misestimate the response carries the report. Either is valid JSON.
        assert!(v.get("ok").is_some(), "{}", r.line);
        db.shutdown();
    }

    #[test]
    fn multi_statement_lines_with_escapes_parse() {
        let db = vdb();
        let mut s = db.begin_session();
        let r = respond(
            &db,
            &mut s,
            "range of D is DS\\nretrieve unique (D.dname) by D.dname",
        );
        let v = parse_json(&r.line).expect("valid JSON");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{}", r.line);
        assert_eq!(v.get("rows").unwrap().as_f64(), Some(2.0));
        db.shutdown();
    }
}
