//! # excess-server — a line-delimited query server over snapshot sessions
//!
//! A deliberately thin wire layer on top of `excess-db`'s session
//! machinery ([`excess_db::VersionedDb`] / [`excess_db::Session`]): one
//! TCP connection is one snapshot-isolated session, one request is one
//! line of EXCESS surface text, one response is one line of JSON.
//!
//! * Bare lines are read-only programs (`range of` declarations and
//!   `retrieve` statements) executed against the session's pinned
//!   generation.  Results are canonicalized (references rewritten to
//!   `(@obj, @val)` trees) before serialization, so responses carry no
//!   process-local OIDs.
//! * `.commit <program>` routes a write through the database's single
//!   committer thread and re-pins the session to the generation it
//!   published (read-your-writes).
//! * Dot-commands expose the observability surface: `.metrics`,
//!   `.telemetry`, `.generation`, `.refresh`, `.server`, `.close`.
//!
//! The protocol is line-delimited both ways; embedded `\n` escapes in a
//! request are expanded before parsing, so multi-line programs fit on
//! one wire line.  All JSON is hand-rolled via `excess_core::json` —
//! the workspace has no serialization dependency.
//!
//! ```no_run
//! use excess_db::{Database, VersionedDb};
//!
//! let mut db = Database::new();
//! db.execute("define type Dept: (dname: char, budget: int4)").unwrap();
//! db.execute("create DS : {Dept}").unwrap();
//! let handle = excess_server::serve(VersionedDb::new(db), "127.0.0.1:0").unwrap();
//! let mut client = excess_server::Client::connect(handle.addr()).unwrap();
//! let reply = client.request("retrieve (DS.dname)").unwrap();
//! assert!(reply.starts_with("{\"ok\":true"));
//! let vdb = handle.shutdown();
//! vdb.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{respond, unescape, Response};
pub use server::{serve, ServerHandle};
