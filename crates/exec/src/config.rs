//! Execution configuration: how many workers, how many partitions.

/// Configuration for the partition-parallel engine.
///
/// `workers` is the number of worker threads the engine keeps for the
/// duration of one plan execution; `partitions` is how many partitions
/// each parallel operator splits its input into (normally equal to
/// `workers`, but tests exercise mismatched counts — more partitions
/// than workers just means some workers process several partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads per plan execution (1 = serial).
    pub workers: usize,
    /// Partitions per parallel operator (≥ 1; usually `workers`).
    pub partitions: usize,
}

/// The environment variable consulted by [`ExecConfig::from_env`] (and by
/// anything that wants a session-wide default worker count).
pub const THREADS_ENV: &str = "EXCESS_THREADS";

impl ExecConfig {
    /// Serial execution: one worker, one partition.
    pub fn serial() -> Self {
        ExecConfig {
            workers: 1,
            partitions: 1,
        }
    }

    /// `n` workers, `n` partitions (clamped to ≥ 1).
    pub fn with_workers(n: usize) -> Self {
        let n = n.max(1);
        ExecConfig {
            workers: n,
            partitions: n,
        }
    }

    /// Read the worker count from `EXCESS_THREADS`; absent or unparsable
    /// values mean serial execution (the conservative default — parallel
    /// evaluation is opt-in).
    pub fn from_env() -> Self {
        Self::from_env_checked().0
    }

    /// Like [`ExecConfig::from_env`], but also reports *why* the value was
    /// rejected, so callers can surface the fallback instead of silently
    /// running serial when the user thought they asked for parallelism.
    pub fn from_env_checked() -> (Self, Option<String>) {
        Self::from_setting(std::env::var(THREADS_ENV).ok().as_deref())
    }

    /// Resolve an optional worker-count setting (the `EXCESS_THREADS`
    /// value, or any other user-supplied string) into a configuration plus
    /// an optional warning.  Pure, so the fallback paths are testable
    /// without racy environment mutation:
    ///
    /// * `None` → serial, no warning (the variable simply wasn't set);
    /// * a parsable count ≥ 1 → that many workers, no warning;
    /// * `"0"` or garbage → serial, with a warning naming the bad value.
    pub fn from_setting(setting: Option<&str>) -> (Self, Option<String>) {
        match setting {
            None => (Self::serial(), None),
            Some(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => (Self::with_workers(n), None),
                Ok(_) => (
                    Self::serial(),
                    Some(format!(
                        "{THREADS_ENV}={s:?} requests zero workers; falling back to serial"
                    )),
                ),
                Err(_) => (
                    Self::serial(),
                    Some(format!(
                        "{THREADS_ENV}={s:?} is not a worker count; falling back to serial"
                    )),
                ),
            },
        }
    }

    /// Is this configuration actually parallel?
    pub fn is_parallel(&self) -> bool {
        self.workers > 1
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_clamps_to_one() {
        assert_eq!(ExecConfig::with_workers(0), ExecConfig::serial());
        assert_eq!(ExecConfig::with_workers(4).workers, 4);
        assert_eq!(ExecConfig::with_workers(4).partitions, 4);
    }

    #[test]
    fn serial_is_not_parallel() {
        assert!(!ExecConfig::serial().is_parallel());
        assert!(ExecConfig::with_workers(2).is_parallel());
    }

    #[test]
    fn from_setting_accepts_counts_silently() {
        assert_eq!(ExecConfig::from_setting(None), (ExecConfig::serial(), None));
        assert_eq!(
            ExecConfig::from_setting(Some(" 4 ")),
            (ExecConfig::with_workers(4), None)
        );
    }

    #[test]
    fn from_setting_warns_on_garbage_and_zero() {
        let (cfg, warn) = ExecConfig::from_setting(Some("lots"));
        assert_eq!(cfg, ExecConfig::serial());
        let warn = warn.expect("garbage must produce a warning");
        assert!(warn.contains("EXCESS_THREADS"), "{warn}");
        assert!(warn.contains("lots"), "{warn}");

        let (cfg, warn) = ExecConfig::from_setting(Some("0"));
        assert_eq!(cfg, ExecConfig::serial());
        assert!(
            warn.expect("zero must produce a warning").contains("zero"),
            "zero workers should be called out"
        );
    }
}
