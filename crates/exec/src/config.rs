//! Execution configuration: how many workers, how many partitions.

/// Configuration for the partition-parallel engine.
///
/// `workers` is the number of worker threads the engine keeps for the
/// duration of one plan execution; `partitions` is how many partitions
/// each parallel operator splits its input into (normally equal to
/// `workers`, but tests exercise mismatched counts — more partitions
/// than workers just means some workers process several partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads per plan execution (1 = serial).
    pub workers: usize,
    /// Partitions per parallel operator (≥ 1; usually `workers`).
    pub partitions: usize,
}

/// The environment variable consulted by [`ExecConfig::from_env`] (and by
/// anything that wants a session-wide default worker count).
pub const THREADS_ENV: &str = "EXCESS_THREADS";

impl ExecConfig {
    /// Serial execution: one worker, one partition.
    pub fn serial() -> Self {
        ExecConfig {
            workers: 1,
            partitions: 1,
        }
    }

    /// `n` workers, `n` partitions (clamped to ≥ 1).
    pub fn with_workers(n: usize) -> Self {
        let n = n.max(1);
        ExecConfig {
            workers: n,
            partitions: n,
        }
    }

    /// Read the worker count from `EXCESS_THREADS`; absent or unparsable
    /// values mean serial execution (the conservative default — parallel
    /// evaluation is opt-in).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Self::with_workers(n),
                _ => Self::serial(),
            },
            Err(_) => Self::serial(),
        }
    }

    /// Is this configuration actually parallel?
    pub fn is_parallel(&self) -> bool {
        self.workers > 1
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_clamps_to_one() {
        assert_eq!(ExecConfig::with_workers(0), ExecConfig::serial());
        assert_eq!(ExecConfig::with_workers(4).workers, 4);
        assert_eq!(ExecConfig::with_workers(4).partitions, 4);
    }

    #[test]
    fn serial_is_not_parallel() {
        assert!(!ExecConfig::serial().is_parallel());
        assert!(ExecConfig::with_workers(2).is_parallel());
    }
}
