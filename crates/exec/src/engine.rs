//! The partition-parallel evaluator.
//!
//! The driver walks the plan on the main thread.  At every multiset
//! operator it partitions the (already materialised) input, rebuilds the
//! operator as a *fragment plan* over `Const` partitions, and ships the
//! fragments to a fixed pool of worker threads where the ordinary serial
//! evaluator runs them.  Because fragments are evaluated by the very same
//! [`evaluate`] the serial engine uses, partition-local semantics —
//! three-valued predicates, `dne` dropping, occurrence counting — are
//! inherited rather than re-implemented.
//!
//! Merging is deterministic: partition outputs are combined with ⊎
//! (`MultiSet::additive_union`) in partition-index order, and the
//! `BTreeMap`-backed multiset puts the result in canonical order
//! regardless of which worker finished first.  See DESIGN.md "Parallel
//! execution" for the per-operator argument.
//!
//! Operators whose semantics are order-sensitive (the array family) or
//! that mutate shared state (`REF`) run serially; each such decision is
//! journaled in the returned [`ExecReport`].

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use excess_core::catalog::Catalog;
use excess_core::columnar::{compile_scan_filter, run_scan_filter, scan_pred_compiles};
use excess_core::counters::Counters;
use excess_core::error::{EvalError, EvalResult};
use excess_core::eval::{evaluate, EvalCtx};
use excess_core::expr::{Expr, Pred};
use excess_core::infer::SchemaCatalog;
use excess_core::physical::{
    evaluate_physical, key_pair_usable, usable_equi_key, PhysOp, PhysicalPlan,
};
use excess_core::profile::{NodePath, Profile, TraceSink};
use excess_core::render::op_label;
use excess_core::verify::verify;
use excess_types::{MultiSet, ObjectStore, TypeRegistry, Value};

use crate::config::ExecConfig;
use crate::journal::{ExecEvent, ExecReport, Strategy, WorkerStats};
use crate::partition::{chunk_partitions, hash_partitions, value_hash};

/// Profiling mode for a parallel run (mirrors the serial evaluator's
/// `enable_tracing` / `enable_coarse_tracing` split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tracing {
    /// No per-operator profile (counters are still collected).
    #[default]
    Off,
    /// Two clock samples per traced node (exact self/total wall split).
    Precise,
    /// One clock sample per traced node (smaller observer effect).
    Coarse,
}

impl Tracing {
    fn sink(self) -> Option<Box<TraceSink>> {
        match self {
            Tracing::Off => None,
            Tracing::Precise => Some(Box::new(TraceSink::new())),
            Tracing::Coarse => Some(Box::new(TraceSink::new_coarse())),
        }
    }
}

/// Everything a parallel run produces: the value, the merged counters
/// (main thread + every worker), an optional merged profile, and the
/// execution journal.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The query result.
    pub value: Value,
    /// Work counters summed across the driver and all workers.
    pub counters: Counters,
    /// Merged per-operator profile (fragment-local paths), when tracing.
    pub profile: Option<Profile>,
    /// The engine's journal: strategies, exchanges, fallbacks, skew.
    pub report: ExecReport,
}

/// Does any node of `e` read or write the object store?  When not, worker
/// threads get a fresh empty store instead of a clone of the session's.
fn needs_store(e: &Expr) -> bool {
    let here = match e {
        Expr::Deref(_) | Expr::MakeRef(..) | Expr::SetApplySwitch { .. } => true,
        Expr::SetApply { only_types, .. } => only_types.is_some(),
        _ => false,
    };
    here || e.children().into_iter().any(needs_store)
}

/// One unit of work shipped to a worker.
struct Task {
    /// Partition index — batch results are reassembled by this.
    part: usize,
    /// Input occurrences routed with this task (skew accounting).
    occurrences: u64,
    kind: TaskKind,
}

enum TaskKind {
    /// Evaluate a closed fragment plan with the serial evaluator.
    Eval(Expr),
    /// Evaluate a closed `rel_join` fragment with the hash equi-join
    /// kernel on the given `(left_key, right_key)` — the same kernel the
    /// serial physical interpreter uses, shipped when the lowered plan
    /// chose `HashEquiJoin` for the exchanged node.
    EvalHashJoin(Expr, (String, String)),
    /// Phase 2 of the GRP exchange: group `{k, v}` pairs by `k`.  This is
    /// plain `BTreeMap` insertion — the serial GRP's grouping step is
    /// likewise counter-free, so workers touch no counters here.
    GroupPairs(MultiSet),
    /// Scan rows `lo..hi` of the named extent's column chunk through a
    /// compiled filter — shipped when the lowered plan chose
    /// `ColumnarScan` for a σ node.  The worker reads the chunk straight
    /// from the shared catalog: no partition materialisation, no `Const`
    /// fragment, no catalog-value clone.
    ColumnarScan {
        object: String,
        pred: Pred,
        lo: usize,
        hi: usize,
    },
}

struct WorkerSummary {
    worker: usize,
    counters: Counters,
    profile: Option<Profile>,
    busy: Duration,
    started: Duration,
    finished: Duration,
    tasks: u64,
    occurrences: u64,
}

fn internal_err(op: &'static str, found: &Value) -> EvalError {
    EvalError::SortMismatch {
        op,
        expected: "multiset",
        found: found.kind_name().to_string(),
    }
}

/// Execute `plan` with `config.workers` threads.
///
/// The result is always `canon`-identical to serial evaluation, and for
/// chunk/hash-partitioned operators the merged counters are *equal* to the
/// serial counters (the hash-key equi-join exchange legitimately performs
/// fewer comparisons than the serial nested loop; the journal records
/// where).  The whole plan falls back to serial — with a journaled reason
/// — when `workers <= 1`, when the plan mints OIDs (`REF` must mutate the
/// shared store), or when `schemas` is supplied and the plan fails
/// verification.
pub fn run_parallel<C: Catalog + Sync>(
    plan: &Expr,
    registry: &TypeRegistry,
    store: &mut ObjectStore,
    catalog: &C,
    schemas: Option<&dyn SchemaCatalog>,
    config: ExecConfig,
    tracing: Tracing,
) -> EvalResult<ExecOutcome> {
    run_parallel_impl(
        plan, None, registry, store, catalog, schemas, config, tracing,
    )
}

/// Execute a *lowered* plan with `config.workers` threads.
///
/// Like [`run_parallel`], but the driver consults the plan's physical
/// choices instead of re-deriving strategies: a `rel_join` annotated
/// `HashEquiJoin` takes the hash-key exchange (with the same runtime
/// guard the serial kernel uses), and its fragments run the shared hash
/// equi-join kernel on the workers; a join annotated `NestedLoopJoin`
/// broadcasts.  The whole-plan serial fallbacks run the physical
/// interpreter, so kernel choices survive them.
pub fn run_parallel_plan<C: Catalog + Sync>(
    plan: &PhysicalPlan,
    registry: &TypeRegistry,
    store: &mut ObjectStore,
    catalog: &C,
    schemas: Option<&dyn SchemaCatalog>,
    config: ExecConfig,
    tracing: Tracing,
) -> EvalResult<ExecOutcome> {
    run_parallel_impl(
        &plan.logical,
        Some(plan),
        registry,
        store,
        catalog,
        schemas,
        config,
        tracing,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_parallel_impl<C: Catalog + Sync>(
    plan: &Expr,
    physical: Option<&PhysicalPlan>,
    registry: &TypeRegistry,
    store: &mut ObjectStore,
    catalog: &C,
    schemas: Option<&dyn SchemaCatalog>,
    config: ExecConfig,
    tracing: Tracing,
) -> EvalResult<ExecOutcome> {
    let workers = config.workers.max(1);
    let serial_reason = if workers <= 1 {
        Some("single worker configured".to_string())
    } else if plan.mints_oids() {
        Some("plan mints OIDs (REF must mutate the shared store)".to_string())
    } else if let Some(cat) = schemas {
        let rep = verify(plan, cat, registry);
        if rep.is_clean() {
            None
        } else {
            Some(format!(
                "plan failed verification ({} error(s))",
                rep.error_count()
            ))
        }
    } else {
        None
    };
    if let Some(reason) = serial_reason {
        let mut report = ExecReport::new(workers);
        report.events.push(ExecEvent::SerialFallback {
            path: Vec::new(),
            op: op_label(plan),
            reason,
        });
        let mut ctx = EvalCtx::new(registry, store, catalog);
        ctx.trace = tracing.sink();
        let value = match physical {
            Some(pp) => evaluate_physical(pp, &mut ctx)?,
            None => evaluate(plan, &mut ctx)?,
        };
        return Ok(ExecOutcome {
            value,
            counters: ctx.counters,
            profile: ctx.take_profile(),
            report,
        });
    }

    let partitions = config.partitions.max(1);
    // Workers never observe store mutations (REF plans are gated above),
    // so a snapshot taken here stays equal to the live store.
    let snapshot: Option<ObjectStore> = needs_store(plan).then(|| store.clone());
    let (res_tx, res_rx) = mpsc::channel::<(usize, EvalResult<Value>)>();
    // Timeline origin for the per-worker start/finish offsets reported in
    // the journal (and rendered as span lanes by the telemetry layer).
    let origin = Instant::now();

    std::thread::scope(|s| {
        let mut task_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            let (tx, rx) = mpsc::channel::<Task>();
            task_txs.push(tx);
            let res_tx = res_tx.clone();
            let snap = &snapshot;
            handles.push(s.spawn(move || {
                worker_loop(wid, registry, catalog, snap, tracing, origin, rx, res_tx)
            }));
        }
        drop(res_tx);

        let mut driver = Driver {
            registry,
            catalog,
            store,
            physical,
            counters: Counters::new(),
            trace: tracing.sink(),
            partitions,
            workers,
            task_txs,
            res_rx,
            report: ExecReport::new(workers),
        };
        let value = driver.exec(plan, &mut Vec::new());
        let Driver {
            counters,
            trace,
            task_txs,
            mut report,
            ..
        } = driver;
        drop(task_txs); // workers drain and exit

        let mut total = counters;
        let mut profiles: Vec<Profile> = Vec::new();
        if let Some(sink) = trace {
            profiles.push(sink.finish());
        }
        for h in handles {
            let sum = h.join().expect("worker thread panicked");
            total += sum.counters;
            if let Some(p) = sum.profile {
                profiles.push(p);
            }
            report.worker_stats.push(WorkerStats {
                worker: sum.worker,
                tasks: sum.tasks,
                occurrences: sum.occurrences,
                busy: sum.busy,
                started: sum.started,
                finished: sum.finished,
                counters: sum.counters,
            });
        }
        report.worker_stats.sort_by_key(|w| w.worker);
        let profile = match tracing {
            Tracing::Off => None,
            _ => Some(Profile::merge(profiles)),
        };
        Ok(ExecOutcome {
            value: value?,
            counters: total,
            profile,
            report,
        })
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<C: Catalog>(
    worker: usize,
    registry: &TypeRegistry,
    catalog: &C,
    snapshot: &Option<ObjectStore>,
    tracing: Tracing,
    origin: Instant,
    rx: mpsc::Receiver<Task>,
    res_tx: mpsc::Sender<(usize, EvalResult<Value>)>,
) -> WorkerSummary {
    let started = origin.elapsed();
    let mut store = match snapshot {
        Some(s) => s.clone(),
        None => ObjectStore::new(),
    };
    let mut counters = Counters::new();
    let mut trace = tracing.sink();
    let mut busy = Duration::ZERO;
    let mut tasks = 0u64;
    let mut occurrences = 0u64;
    for task in rx {
        let t0 = Instant::now();
        let part = task.part;
        occurrences += task.occurrences;
        let out = match task.kind {
            TaskKind::Eval(frag) => {
                let mut ctx = EvalCtx::new(registry, &mut store, catalog);
                ctx.counters = counters;
                ctx.trace = trace.take();
                let r = evaluate(&frag, &mut ctx);
                counters = ctx.counters;
                trace = ctx.trace.take();
                r
            }
            TaskKind::EvalHashJoin(frag, (left_key, right_key)) => {
                // Re-root the kernel choice on the fragment: the shipped
                // plan is the `rel_join` node itself over `Const`
                // partitions, so the choice path is empty.
                let mut choices = BTreeMap::new();
                choices.insert(
                    Vec::new(),
                    excess_core::physical::PhysChoice {
                        op: PhysOp::HashEquiJoin {
                            left_key,
                            right_key,
                        },
                        why: String::new(),
                        est_rows: None,
                    },
                );
                let pp = PhysicalPlan {
                    logical: frag,
                    choices,
                    // Worker fragments always keep the runtime guard:
                    // guard elision is proven against whole-input
                    // properties, which partitioning does not preserve
                    // claim-for-claim.
                    elided_guards: Default::default(),
                };
                let mut ctx = EvalCtx::new(registry, &mut store, catalog);
                ctx.counters = counters;
                ctx.trace = trace.take();
                let r = evaluate_physical(&pp, &mut ctx);
                counters = ctx.counters;
                trace = ctx.trace.take();
                r
            }
            TaskKind::GroupPairs(pairs) => group_pairs(pairs),
            TaskKind::ColumnarScan {
                object,
                pred,
                lo,
                hi,
            } => match catalog.get_chunk(&object) {
                // The driver verified the chunk exists and the predicate
                // compiles against it before shipping; the catalog is
                // shared immutably for the run, so both still hold.
                Some(chunk) => match compile_scan_filter(&pred, chunk) {
                    Some(filter) => Ok(Value::Set(run_scan_filter(
                        chunk,
                        &filter,
                        lo,
                        hi,
                        &mut counters,
                    ))),
                    None => Err(EvalError::SortMismatch {
                        op: "columnar scan",
                        expected: "chunk-compilable predicate",
                        found: pred.to_string(),
                    }),
                },
                None => Err(EvalError::UnknownObject(object)),
            },
        };
        busy += t0.elapsed();
        tasks += 1;
        if res_tx.send((part, out)).is_err() {
            break;
        }
    }
    WorkerSummary {
        worker,
        counters,
        profile: trace.map(|t| t.finish()),
        busy,
        started,
        finished: origin.elapsed(),
        tasks,
        occurrences,
    }
}

fn group_pairs(pairs: MultiSet) -> EvalResult<Value> {
    let mut groups: BTreeMap<Value, MultiSet> = BTreeMap::new();
    for (pair, n) in pairs.iter_counted() {
        let Value::Tuple(t) = pair else {
            return Err(internal_err("GRP exchange", pair));
        };
        let k = t.extract("k")?.clone();
        let v = t.extract("v")?.clone();
        groups.entry(k).or_default().insert_n(v, n);
    }
    Ok(Value::Set(groups.into_values().map(Value::Set).collect()))
}

struct Driver<'a> {
    registry: &'a TypeRegistry,
    catalog: &'a dyn Catalog,
    store: &'a mut ObjectStore,
    /// The lowered plan being executed, when the caller came through
    /// [`run_parallel_plan`] — the driver consults its choices (keyed by
    /// the same child-index paths the driver maintains) instead of
    /// re-deriving join strategies.
    physical: Option<&'a PhysicalPlan>,
    counters: Counters,
    trace: Option<Box<TraceSink>>,
    partitions: usize,
    workers: usize,
    task_txs: Vec<mpsc::Sender<Task>>,
    res_rx: mpsc::Receiver<(usize, EvalResult<Value>)>,
    report: ExecReport,
}

impl<'a> Driver<'a> {
    /// Serial evaluation on the main thread, with counter and trace
    /// continuity (the driver's context persists across fragments).
    fn eval_main(&mut self, e: &Expr) -> EvalResult<Value> {
        let mut ctx = EvalCtx::new(self.registry, &mut *self.store, self.catalog);
        ctx.counters = self.counters;
        ctx.trace = self.trace.take();
        let r = evaluate(e, &mut ctx);
        self.counters = ctx.counters;
        self.trace = ctx.trace.take();
        r
    }

    fn child(&mut self, e: &Expr, path: &mut NodePath, idx: usize) -> EvalResult<Value> {
        path.push(idx);
        let r = self.exec(e, path);
        path.pop();
        r
    }

    /// Ship a batch of tasks to the pool (round-robin) and reassemble the
    /// results by partition index.  Error propagation is deterministic:
    /// the lowest-index failing partition wins, which for chunk
    /// partitioning is the same error serial evaluation would hit first.
    fn run_batch(&mut self, tasks: Vec<Task>) -> Vec<EvalResult<Value>> {
        let n = tasks.len();
        for (i, t) in tasks.into_iter().enumerate() {
            self.task_txs[i % self.workers]
                .send(t)
                .expect("worker alive");
        }
        let mut slots: Vec<Option<EvalResult<Value>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (part, r) = self.res_rx.recv().expect("worker result");
            slots[part] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every partition reported"))
            .collect()
    }

    /// ⊎-merge partition results in index order; propagate the
    /// lowest-index error.
    fn merge_batch(&mut self, results: Vec<EvalResult<Value>>) -> EvalResult<Value> {
        let mut acc = MultiSet::new();
        for r in results {
            match r? {
                Value::Set(s) => acc = acc.additive_union(s),
                other => return Err(internal_err("parallel merge", &other)),
            }
        }
        Ok(Value::Set(acc))
    }

    fn eval_tasks(&mut self, frags: Vec<(Expr, u64)>) -> EvalResult<Value> {
        let tasks = frags
            .into_iter()
            .enumerate()
            .map(|(part, (frag, occurrences))| Task {
                part,
                occurrences,
                kind: TaskKind::Eval(frag),
            })
            .collect();
        let results = self.run_batch(tasks);
        self.merge_batch(results)
    }

    /// Chunk-partitioned unary multiset operator.
    fn unary_chunk(
        &mut self,
        node: &Expr,
        path: &NodePath,
        v: Value,
        rebuild: &dyn Fn(Expr) -> Expr,
    ) -> EvalResult<Value> {
        let set = match v {
            Value::Set(s) => s,
            // null or mis-sorted input: let the serial evaluator produce
            // the exact propagation / error.
            other => return self.eval_main(&rebuild(Expr::Const(other))),
        };
        let parts = chunk_partitions(&set, self.partitions);
        self.journal_parallel(node, path, Strategy::Chunk, &parts, &[]);
        let frags = parts
            .into_iter()
            .map(|p| {
                let occ = p.len();
                (rebuild(Expr::Const(Value::Set(p))), occ)
            })
            .collect();
        self.eval_tasks(frags)
    }

    /// Hash-by-value partitioned binary multiset operator: all occurrences
    /// of a value land in the same partition on both sides, so the
    /// per-distinct-value semantics of ∪/∩/−/⊎/DE are preserved.
    fn binary_hash(
        &mut self,
        node: &Expr,
        path: &NodePath,
        a: Value,
        b: Value,
        rebuild: &dyn Fn(Expr, Expr) -> Expr,
    ) -> EvalResult<Value> {
        let (sa, sb) = match (a, b) {
            (Value::Set(x), Value::Set(y)) => (x, y),
            (x, y) => return self.eval_main(&rebuild(Expr::Const(x), Expr::Const(y))),
        };
        let pa = hash_partitions(&sa, self.partitions);
        let pb = hash_partitions(&sb, self.partitions);
        self.journal_parallel(node, path, Strategy::HashValue, &pa, &pb);
        let frags = pa
            .into_iter()
            .zip(pb)
            .map(|(x, y)| {
                let occ = x.len() + y.len();
                (
                    rebuild(Expr::Const(Value::Set(x)), Expr::Const(Value::Set(y))),
                    occ,
                )
            })
            .collect();
        self.eval_tasks(frags)
    }

    /// Chunk the left input and replicate the right to every partition
    /// (joins and crosses distribute over ⊎ on the left).
    fn broadcast_right(
        &mut self,
        node: &Expr,
        path: &NodePath,
        sa: MultiSet,
        sb: MultiSet,
        rebuild: &dyn Fn(Expr, Expr) -> Expr,
    ) -> EvalResult<Value> {
        let parts = chunk_partitions(&sa, self.partitions);
        self.journal_parallel(node, path, Strategy::BroadcastRight, &parts, &[]);
        let frags = parts
            .into_iter()
            .map(|p| {
                let occ = p.len() + sb.len();
                (
                    rebuild(
                        Expr::Const(Value::Set(p)),
                        Expr::Const(Value::Set(sb.clone())),
                    ),
                    occ,
                )
            })
            .collect();
        self.eval_tasks(frags)
    }

    fn journal_parallel(
        &mut self,
        node: &Expr,
        path: &NodePath,
        strategy: Strategy,
        left: &[MultiSet],
        right: &[MultiSet],
    ) {
        let empty = (0..left.len())
            .filter(|&i| left[i].is_empty() && right.get(i).map_or(0, |p| p.len()) == 0)
            .count();
        self.report.events.push(ExecEvent::Parallel {
            path: path.clone(),
            op: op_label(node),
            strategy,
            partitions: left.len(),
            empty,
        });
    }

    /// GRP with a repartition-by-key exchange.
    ///
    /// Phase 1 computes `{k: by(INPUT), v: INPUT}` pairs over chunk
    /// partitions using a SET_APPLY fragment — counter-exact relative to
    /// serial GRP, because SET_APPLY charges the same one
    /// `occurrences_scanned` per occurrence and MakeTup/TupCat/Input add
    /// nothing.  The driver then routes pairs by `hash(k)` (dropping `dne`
    /// keys exactly as serial GRP does) and workers group each key
    /// partition locally; since all occurrences of a key share a
    /// partition, groups are complete and ⊎-merge needs no combining.
    fn group_exchange(
        &mut self,
        node: &Expr,
        path: &NodePath,
        v: Value,
        by: &Expr,
    ) -> EvalResult<Value> {
        let set = match v {
            Value::Set(s) => s,
            other => {
                return self.eval_main(&Expr::Group {
                    input: Box::new(Expr::Const(other)),
                    by: Box::new(by.clone()),
                })
            }
        };
        let chunks = chunk_partitions(&set, self.partitions);
        let pair_body = by
            .clone()
            .make_tup("k")
            .tup_cat(Expr::input().make_tup("v"));
        let frags = chunks
            .into_iter()
            .map(|p| {
                let occ = p.len();
                (
                    Expr::SetApply {
                        input: Box::new(Expr::Const(Value::Set(p))),
                        body: Box::new(pair_body.clone()),
                        only_types: None,
                    },
                    occ,
                )
            })
            .collect::<Vec<_>>();
        let tasks = frags
            .into_iter()
            .enumerate()
            .map(|(part, (frag, occurrences))| Task {
                part,
                occurrences,
                kind: TaskKind::Eval(frag),
            })
            .collect();
        let results = self.run_batch(tasks);

        let mut keyed = vec![MultiSet::new(); self.partitions];
        for r in results {
            let pairs = match r? {
                Value::Set(s) => s,
                other => return Err(internal_err("GRP exchange", &other)),
            };
            for (pair, n) in pairs.iter_counted() {
                let Value::Tuple(t) = pair else {
                    return Err(internal_err("GRP exchange", pair));
                };
                let k = t.extract("k")?;
                if k.is_dne() {
                    continue; // serial GRP drops occurrences with no key
                }
                let idx = (value_hash(k) % self.partitions as u64) as usize;
                keyed[idx].insert_n(pair.clone(), n);
            }
        }
        let empty = keyed.iter().filter(|p| p.is_empty()).count();
        self.report.events.push(ExecEvent::Exchange {
            path: path.clone(),
            op: op_label(node),
            keys: by.to_string(),
            partitions: keyed.len(),
            empty,
        });
        let tasks = keyed
            .into_iter()
            .enumerate()
            .map(|(part, p)| Task {
                part,
                occurrences: p.len(),
                kind: TaskKind::GroupPairs(p),
            })
            .collect();
        let results = self.run_batch(tasks);
        self.merge_batch(results)
    }

    /// Chunk-range columnar scan: when the lowered plan chose
    /// `ColumnarScan` for this σ node, workers scan disjoint contiguous
    /// row ranges of the extent's column chunk directly from the shared
    /// catalog.  Counters telescope to the serial columnar kernel's
    /// exactly: the driver charges the one `named_object_scans`, each
    /// range contributes its own rows' `occurrences_scanned` and
    /// `comparisons`, and the weighted ⊎-merge reassembles the multiset.
    /// Returns `None` — fall through to the row path — unless every
    /// serial columnar precondition holds (trace off, base extent scan,
    /// cached chunk, compilable predicate).
    fn columnar_scan(
        &mut self,
        node: &Expr,
        path: &NodePath,
        input: &Expr,
        pred: &Pred,
    ) -> Option<EvalResult<Value>> {
        if self.trace.is_some() {
            return None;
        }
        let object = match self
            .physical
            .and_then(|pp| pp.choices.get(path.as_slice()))
            .map(|c| &c.op)
        {
            Some(PhysOp::ColumnarScan { object }) => object,
            _ => return None,
        };
        if !matches!(input, Expr::Named(n) if n == object) {
            return None;
        }
        let catalog = self.catalog;
        let chunk = catalog.get_chunk(object)?;
        if chunk.is_empty() {
            self.counters.named_object_scans += 1;
            return Some(Ok(Value::Set(MultiSet::new())));
        }
        if !scan_pred_compiles(pred, chunk) {
            return None;
        }
        self.counters.named_object_scans += 1;
        let rows = chunk.len();
        let parts = self.partitions.clamp(1, rows);
        let tasks = (0..parts)
            .map(|part| {
                let lo = part * rows / parts;
                let hi = (part + 1) * rows / parts;
                Task {
                    part,
                    occurrences: chunk.weights()[lo..hi].iter().sum(),
                    kind: TaskKind::ColumnarScan {
                        object: object.clone(),
                        pred: pred.clone(),
                        lo,
                        hi,
                    },
                }
            })
            .collect();
        self.report.events.push(ExecEvent::Parallel {
            path: path.clone(),
            op: op_label(node),
            strategy: Strategy::Chunk,
            partitions: parts,
            empty: 0,
        });
        let results = self.run_batch(tasks);
        Some(self.merge_batch(results))
    }

    /// rel_join strategy selection.
    ///
    /// With a lowered plan the choice is the plan's: `HashEquiJoin` takes
    /// the hash-key exchange — after the same runtime guard the serial
    /// kernel applies (both key orientations) — and ships fragments that
    /// run the shared hash kernel on the workers; anything else (or a
    /// failed guard) broadcasts and the fragments run the nested loop.
    /// Without a plan the driver probes the materialised inputs itself,
    /// exactly as before the physical layer existed.
    fn rel_join(
        &mut self,
        node: &Expr,
        path: &NodePath,
        a: Value,
        b: Value,
        pred: &Pred,
    ) -> EvalResult<Value> {
        let rebuild = |l: Expr, r: Expr| Expr::RelJoin {
            left: Box::new(l),
            right: Box::new(r),
            pred: pred.clone(),
        };
        let (sa, sb) = match (a, b) {
            (Value::Set(x), Value::Set(y)) => (x, y),
            (x, y) => return self.eval_main(&rebuild(Expr::Const(x), Expr::Const(y))),
        };
        let lowered = self.physical.is_some();
        let keys = match self
            .physical
            .and_then(|pp| pp.choices.get(path.as_slice()))
            .map(|c| &c.op)
        {
            // A columnar join choice degrades to the row hash kernel on
            // the hash-key exchange — workers join materialised `Const`
            // partitions, where no chunk exists.
            Some(PhysOp::HashEquiJoin {
                left_key,
                right_key,
            })
            | Some(PhysOp::ColumnarHashEquiJoin {
                left_key,
                right_key,
                ..
            }) => {
                if key_pair_usable(&sa, &sb, left_key, right_key) {
                    Some((left_key.clone(), right_key.clone()))
                } else if key_pair_usable(&sa, &sb, right_key, left_key) {
                    Some((right_key.clone(), left_key.clone()))
                } else {
                    None
                }
            }
            Some(_) => None,
            None if !lowered => usable_equi_key(pred, &sa, &sb),
            None => None,
        };
        if let Some((lf, rf)) = keys {
            let pa = hash_by_field(&sa, &lf, self.partitions);
            let pb = hash_by_field(&sb, &rf, self.partitions);
            let empty = pa
                .iter()
                .zip(&pb)
                .filter(|(x, y)| x.is_empty() && y.is_empty())
                .count();
            self.report.events.push(ExecEvent::Exchange {
                path: path.clone(),
                op: op_label(node),
                keys: format!("{lf} = {rf}"),
                partitions: pa.len(),
                empty,
            });
            let kernel = lowered.then(|| (lf.clone(), rf.clone()));
            let tasks = pa
                .into_iter()
                .zip(pb)
                .enumerate()
                .map(|(part, (x, y))| {
                    let occurrences = x.len() + y.len();
                    let frag = rebuild(Expr::Const(Value::Set(x)), Expr::Const(Value::Set(y)));
                    Task {
                        part,
                        occurrences,
                        kind: match &kernel {
                            Some(k) => TaskKind::EvalHashJoin(frag, k.clone()),
                            None => TaskKind::Eval(frag),
                        },
                    }
                })
                .collect();
            let results = self.run_batch(tasks);
            self.merge_batch(results)
        } else {
            self.broadcast_right(node, path, sa, sb, &rebuild)
        }
    }

    /// A node that runs serially on the main thread after its (closed,
    /// pred-free) children were executed by the driver.  Child values are
    /// substituted back as `Const` so the serial evaluator applies just
    /// this node.
    fn all_children_serial(&mut self, e: &Expr, path: &mut NodePath) -> EvalResult<Value> {
        let children: Vec<Expr> = e.children().into_iter().cloned().collect();
        let mut vals = Vec::with_capacity(children.len());
        for (i, c) in children.iter().enumerate() {
            vals.push(self.child(c, path, i)?);
        }
        let mut it = vals.into_iter();
        let frag = e.map_children(&mut |_| Expr::Const(it.next().expect("one value per child")));
        self.eval_main(&frag)
    }

    fn journal_fallback(&mut self, e: &Expr, path: &NodePath, reason: &str) {
        self.report.events.push(ExecEvent::SerialFallback {
            path: path.clone(),
            op: op_label(e),
            reason: reason.to_string(),
        });
    }

    fn exec(&mut self, e: &Expr, path: &mut NodePath) -> EvalResult<Value> {
        const ORDER: &str = "order-sensitive array operator";
        match e {
            // Leaves and store-mutating nodes: plain serial evaluation.
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) | Expr::MakeRef(..) => {
                self.eval_main(e)
            }

            // ----- chunk-partitioned multiset operators -----
            Expr::Select { input, pred } => {
                if let Some(r) = self.columnar_scan(e, path, input, pred) {
                    return r;
                }
                let v = self.child(input, path, 0)?;
                let pred = pred.clone();
                self.unary_chunk(e, path, v, &|inp| Expr::Select {
                    input: Box::new(inp),
                    pred: pred.clone(),
                })
            }
            Expr::SetApply {
                input,
                body,
                only_types,
            } => {
                let v = self.child(input, path, 0)?;
                let (body, only_types) = (body.clone(), only_types.clone());
                self.unary_chunk(e, path, v, &|inp| Expr::SetApply {
                    input: Box::new(inp),
                    body: body.clone(),
                    only_types: only_types.clone(),
                })
            }
            Expr::SetApplySwitch { input, table } => {
                let v = self.child(input, path, 0)?;
                let table = table.clone();
                self.unary_chunk(e, path, v, &|inp| Expr::SetApplySwitch {
                    input: Box::new(inp),
                    table: table.clone(),
                })
            }
            Expr::SetCollapse(a) => {
                let v = self.child(a, path, 0)?;
                self.unary_chunk(e, path, v, &|inp| Expr::SetCollapse(Box::new(inp)))
            }

            // ----- hash-by-value partitioned multiset operators -----
            Expr::DupElim(a) => {
                let v = self.child(a, path, 0)?;
                let (sa,) = match v {
                    Value::Set(s) => (s,),
                    other => return self.eval_main(&Expr::DupElim(Box::new(Expr::Const(other)))),
                };
                let parts = hash_partitions(&sa, self.partitions);
                self.journal_parallel(e, path, Strategy::HashValue, &parts, &[]);
                let frags = parts
                    .into_iter()
                    .map(|p| {
                        let occ = p.len();
                        (Expr::DupElim(Box::new(Expr::Const(Value::Set(p)))), occ)
                    })
                    .collect();
                self.eval_tasks(frags)
            }
            Expr::AddUnion(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                self.binary_hash(e, path, x, y, &|l, r| {
                    Expr::AddUnion(Box::new(l), Box::new(r))
                })
            }
            Expr::Union(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                self.binary_hash(e, path, x, y, &|l, r| Expr::Union(Box::new(l), Box::new(r)))
            }
            Expr::Intersect(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                self.binary_hash(e, path, x, y, &|l, r| {
                    Expr::Intersect(Box::new(l), Box::new(r))
                })
            }
            Expr::Diff(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                self.binary_hash(e, path, x, y, &|l, r| Expr::Diff(Box::new(l), Box::new(r)))
            }

            // ----- joins and crosses -----
            Expr::Cross(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                let rebuild = |l: Expr, r: Expr| Expr::Cross(Box::new(l), Box::new(r));
                match (x, y) {
                    (Value::Set(sa), Value::Set(sb)) => {
                        self.broadcast_right(e, path, sa, sb, &rebuild)
                    }
                    (x, y) => self.eval_main(&rebuild(Expr::Const(x), Expr::Const(y))),
                }
            }
            Expr::RelCross(a, b) => {
                let (x, y) = (self.child(a, path, 0)?, self.child(b, path, 1)?);
                let rebuild = |l: Expr, r: Expr| Expr::RelCross(Box::new(l), Box::new(r));
                match (x, y) {
                    (Value::Set(sa), Value::Set(sb)) => {
                        self.broadcast_right(e, path, sa, sb, &rebuild)
                    }
                    (x, y) => self.eval_main(&rebuild(Expr::Const(x), Expr::Const(y))),
                }
            }
            Expr::RelJoin { left, right, pred } => {
                let (x, y) = (self.child(left, path, 0)?, self.child(right, path, 1)?);
                let pred = pred.clone();
                self.rel_join(e, path, x, y, &pred)
            }

            // ----- GRP: repartition-by-key exchange -----
            Expr::Group { input, by } => {
                let v = self.child(input, path, 0)?;
                let by = (**by).clone();
                self.group_exchange(e, path, v, &by)
            }

            // ----- order-sensitive array operators: serial, journaled -----
            Expr::ArrApply { input, body } => {
                self.journal_fallback(e, path, ORDER);
                let v = self.child(input, path, 0)?;
                self.eval_main(&Expr::ArrApply {
                    input: Box::new(Expr::Const(v)),
                    body: body.clone(),
                })
            }
            Expr::ArrSelect { input, pred } => {
                self.journal_fallback(e, path, ORDER);
                let v = self.child(input, path, 0)?;
                self.eval_main(&Expr::ArrSelect {
                    input: Box::new(Expr::Const(v)),
                    pred: pred.clone(),
                })
            }
            Expr::SubArr(..)
            | Expr::ArrCat(..)
            | Expr::ArrCollapse(..)
            | Expr::ArrDiff(..)
            | Expr::ArrDupElim(..)
            | Expr::ArrCross(..) => {
                self.journal_fallback(e, path, ORDER);
                self.all_children_serial(e, path)
            }

            // ----- scalar / tuple / reference plumbing: serial, silent -----
            Expr::MakeSet(..)
            | Expr::Project(..)
            | Expr::TupCat(..)
            | Expr::TupExtract(..)
            | Expr::MakeTup(..)
            | Expr::MakeArr(..)
            | Expr::ArrExtract(..)
            | Expr::Deref(..)
            | Expr::Call(..) => self.all_children_serial(e, path),

            // COMP binds INPUT to its whole input — only the input child is
            // driver-executed; the predicate stays in the fragment.
            Expr::Comp { input, pred } => {
                let v = self.child(input, path, 0)?;
                self.eval_main(&Expr::Comp {
                    input: Box::new(Expr::Const(v)),
                    pred: pred.clone(),
                })
            }
        }
    }
}

/// Hash-partition a multiset of tuples by one field's value.  Only called
/// after [`usable_equi_key`] has proven every element is a tuple carrying
/// the field.
fn hash_by_field(s: &MultiSet, field: &str, parts: usize) -> Vec<MultiSet> {
    let parts = parts.max(1);
    let mut out = vec![MultiSet::new(); parts];
    for (v, n) in s.iter_counted() {
        let key = match v {
            Value::Tuple(t) => t.extract(field).expect("equi key verified"),
            _ => unreachable!("equi key verified tuples"),
        };
        let idx = (value_hash(key) % parts as u64) as usize;
        out[idx].insert_n(v.clone(), n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::canon::canonical_form;
    use excess_core::expr::CmpOp;
    use std::collections::HashMap;

    fn canon(v: &Value) -> Value {
        canonical_form(v, &ObjectStore::new())
    }

    fn fixture() -> (TypeRegistry, ObjectStore, HashMap<String, Value>) {
        let reg = TypeRegistry::new();
        let store = ObjectStore::new();
        let mut cat = HashMap::new();
        let mut nums = MultiSet::new();
        for i in 0..30 {
            nums.insert_n(Value::int(i % 7), (i % 3 + 1) as u64);
        }
        cat.insert("Nums".to_string(), Value::Set(nums));
        let mut pairs = MultiSet::new();
        let mut rhs = MultiSet::new();
        for i in 0..12 {
            pairs.insert(Value::tuple([
                ("a", Value::int(i)),
                ("k", Value::int(i % 4)),
            ]));
            rhs.insert(Value::tuple([
                ("j", Value::int(i % 4)),
                ("b", Value::str(format!("v{i}"))),
            ]));
        }
        cat.insert("L".to_string(), Value::Set(pairs));
        cat.insert("R".to_string(), Value::Set(rhs));
        (reg, store, cat)
    }

    fn serial(plan: &Expr, reg: &TypeRegistry, cat: &HashMap<String, Value>) -> (Value, Counters) {
        let mut store = ObjectStore::new();
        let mut ctx = EvalCtx::new(reg, &mut store, cat);
        let v = evaluate(plan, &mut ctx).expect("serial eval");
        (v, ctx.counters)
    }

    fn parallel(
        plan: &Expr,
        reg: &TypeRegistry,
        cat: &HashMap<String, Value>,
        workers: usize,
    ) -> ExecOutcome {
        let mut store = ObjectStore::new();
        run_parallel(
            plan,
            reg,
            &mut store,
            cat,
            None,
            ExecConfig::with_workers(workers),
            Tracing::Off,
        )
        .expect("parallel eval")
    }

    #[test]
    fn select_matches_serial_in_value_and_counters() {
        let (reg, _, cat) = fixture();
        let plan = Expr::named("Nums").select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(3)));
        let (sv, sc) = serial(&plan, &reg, &cat);
        for workers in [2, 3, 7] {
            let out = parallel(&plan, &reg, &cat, workers);
            assert_eq!(canon(&out.value), canon(&sv));
            assert_eq!(out.counters, sc, "counters diverged at {workers} workers");
            assert_eq!(out.report.parallel_nodes(), 1);
            assert_eq!(out.report.worker_stats.len(), workers);
        }
    }

    #[test]
    fn group_exchange_matches_serial() {
        let (reg, _, cat) = fixture();
        let plan = Expr::named("Nums").group_by(Expr::input());
        let (sv, sc) = serial(&plan, &reg, &cat);
        let out = parallel(&plan, &reg, &cat, 4);
        assert_eq!(canon(&out.value), canon(&sv));
        assert_eq!(out.counters, sc);
        assert!(out
            .report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Exchange { .. })));
    }

    #[test]
    fn equi_join_uses_hash_key_exchange_and_matches_serial() {
        let (reg, _, cat) = fixture();
        let pred = Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("j"),
        );
        let plan = Expr::named("L").rel_join(Expr::named("R"), pred);
        let (sv, sc) = serial(&plan, &reg, &cat);
        let out = parallel(&plan, &reg, &cat, 4);
        assert_eq!(canon(&out.value), canon(&sv));
        assert!(out
            .report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Exchange { .. })));
        // The hash exchange skips cross-partition pairs, so it performs at
        // most the serial comparison work.
        assert!(out.counters.comparisons <= sc.comparisons);
        assert!(out.counters.pairs_formed <= sc.pairs_formed);
    }

    #[test]
    fn physical_plan_routes_hash_kernel_to_workers() {
        use excess_core::physical::{PhysChoice, PhysicalPlan};
        let (reg, _, cat) = fixture();
        let pred = Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("j"),
        );
        let plan = Expr::named("L").rel_join(Expr::named("R"), pred);
        let (sv, sc) = serial(&plan, &reg, &cat);
        let mut choices = BTreeMap::new();
        choices.insert(
            Vec::new(),
            PhysChoice {
                op: PhysOp::HashEquiJoin {
                    left_key: "k".into(),
                    right_key: "j".into(),
                },
                why: "test".into(),
                est_rows: None,
            },
        );
        let pp = PhysicalPlan {
            logical: plan.clone(),
            choices,
            elided_guards: Default::default(),
        };
        let mut store = ObjectStore::new();
        let out = run_parallel_plan(
            &pp,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(4),
            Tracing::Off,
        )
        .expect("parallel physical eval");
        assert_eq!(canon(&out.value), canon(&sv));
        assert!(out
            .report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Exchange { .. })));
        // Worker fragments run the hash kernel: the equi conjunct is never
        // evaluated, so the pure equi-join does zero comparisons.
        assert_eq!(out.counters.comparisons, 0);
        assert!(out.counters.comparisons < sc.comparisons);

        // A NestedLoopJoin choice must broadcast instead of exchanging.
        let mut nl_choices = BTreeMap::new();
        nl_choices.insert(
            Vec::new(),
            PhysChoice {
                op: PhysOp::NestedLoopJoin,
                why: "test".into(),
                est_rows: None,
            },
        );
        let pp_nl = PhysicalPlan {
            logical: plan,
            choices: nl_choices,
            elided_guards: Default::default(),
        };
        let out_nl = run_parallel_plan(
            &pp_nl,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(4),
            Tracing::Off,
        )
        .expect("parallel nested-loop eval");
        assert_eq!(canon(&out_nl.value), canon(&sv));
        assert_eq!(
            out_nl.counters, sc,
            "broadcast nested loop is counter-exact"
        );
        assert!(!out_nl
            .report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Exchange { .. })));
    }

    #[test]
    fn columnar_scan_routes_chunk_ranges_to_workers() {
        use excess_core::catalog::ChunkedCatalog;
        use excess_core::physical::{PhysChoice, PhysicalPlan};
        let reg = TypeRegistry::new();
        let mut cat = ChunkedCatalog::default();
        let mut s = MultiSet::new();
        for i in 0..100 {
            s.insert_n(
                Value::tuple([
                    ("a", Value::int(i % 13)),
                    ("b", Value::str(format!("v{}", i % 5))),
                ]),
                (i % 3 + 1) as u64,
            );
        }
        cat.put("S", Value::Set(s));
        assert!(cat.get_chunk("S").is_some(), "extent should chunk-encode");

        let pred = Pred::cmp(Expr::input().extract("a"), CmpOp::Ge, Expr::int(4));
        let plan = Expr::named("S").select(pred);
        let mut store = ObjectStore::new();
        let (sv, sc) = {
            let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
            (
                evaluate(&plan, &mut ctx).expect("serial eval"),
                ctx.counters,
            )
        };

        let mut choices = BTreeMap::new();
        choices.insert(
            Vec::new(),
            PhysChoice {
                op: PhysOp::ColumnarScan { object: "S".into() },
                why: "test".into(),
                est_rows: None,
            },
        );
        let pp = PhysicalPlan {
            logical: plan,
            choices,
            elided_guards: Default::default(),
        };
        let out = run_parallel_plan(
            &pp,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(4),
            Tracing::Off,
        )
        .expect("parallel columnar scan");
        assert_eq!(canon(&out.value), canon(&sv));
        assert_eq!(out.counters, sc, "columnar ranges must be counter-exact");
        assert!(out
            .report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Parallel { .. })));
        assert_eq!(out.report.worker_stats.len(), 4);
    }

    #[test]
    fn ref_minting_plan_falls_back_to_serial() {
        let (reg, _, cat) = fixture();
        let plan = Expr::named("Nums").set_apply(Expr::input());
        let plan = Expr::MakeRef(Box::new(plan), "T".into());
        let mut store = ObjectStore::new();
        let out = run_parallel(
            &plan,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(4),
            Tracing::Off,
        );
        // REF of an unregistered type errors either way; what matters here
        // is the gate fired before any worker was involved.  Use a plan
        // that is REF-free below the root to check the journal.
        drop(out);
        let plan = Expr::int(1).make_ref("T");
        let out = run_parallel(
            &plan,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(4),
            Tracing::Off,
        );
        // A type error from REF is fine; the gate is covered below.
        if let Ok(o) = out {
            assert!(o.report.fallbacks() >= 1);
        }
    }

    #[test]
    fn single_worker_journals_whole_plan_fallback() {
        let (reg, _, cat) = fixture();
        let plan = Expr::named("Nums").dup_elim();
        let mut store = ObjectStore::new();
        let out = run_parallel(
            &plan,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::serial(),
            Tracing::Off,
        )
        .unwrap();
        assert_eq!(out.report.fallbacks(), 1);
        assert!(out.report.worker_stats.is_empty());
    }

    #[test]
    fn profile_totals_survive_merge() {
        let (reg, _, cat) = fixture();
        let plan = Expr::named("Nums")
            .select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(2)))
            .dup_elim();
        let (sv, sc) = serial(&plan, &reg, &cat);
        let mut store = ObjectStore::new();
        let out = run_parallel(
            &plan,
            &reg,
            &mut store,
            &cat,
            None,
            ExecConfig::with_workers(3),
            Tracing::Precise,
        )
        .unwrap();
        assert_eq!(canon(&out.value), canon(&sv));
        assert_eq!(out.counters, sc);
        let p = out.profile.expect("profile requested");
        assert_eq!(p.sum_of_self_counters(), out.counters);
    }
}
