//! # excess-exec — partition-parallel execution for the EXCESS algebra
//!
//! A morsel/partition-driven parallel evaluator on top of the serial
//! engine in `excess-core`.  The driver materialises operator inputs,
//! splits them into partitions (contiguous chunks or hash classes,
//! depending on the operator's algebraic requirements), and ships
//! fragment plans to a fixed pool of `std::thread` workers where the
//! ordinary serial evaluator runs them.  Partition outputs ⊎-merge in
//! partition-index order into the canonical (`BTreeMap`) multiset
//! ordering, so the parallel result is `canon`-identical to serial
//! evaluation no matter how the threads interleave.
//!
//! Operators whose semantics depend on element order (the array family)
//! or that mutate shared state (`REF`) fall back to serial evaluation
//! with a journaled reason; grouping and equi-joins insert
//! repartition-by-key *exchange* steps.  See DESIGN.md "Parallel
//! execution" for the soundness argument operator by operator.
//!
//! ```
//! use excess_core::{CmpOp, Expr, Pred};
//! use excess_exec::{run_parallel, ExecConfig, Tracing};
//! use excess_types::{ObjectStore, TypeRegistry, Value};
//! use std::collections::HashMap;
//!
//! let reg = TypeRegistry::new();
//! let mut store = ObjectStore::new();
//! let mut cat: HashMap<String, Value> = HashMap::new();
//! cat.insert("S".into(), Value::set((0..100).map(Value::int)));
//! let plan = Expr::named("S").select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(50)));
//! let out = run_parallel(
//!     &plan, &reg, &mut store, &cat, None,
//!     ExecConfig::with_workers(4), Tracing::Off,
//! ).unwrap();
//! assert_eq!(out.value, Value::set((50..100).map(Value::int)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod journal;
pub mod partition;

pub use config::{ExecConfig, THREADS_ENV};
pub use engine::{run_parallel, run_parallel_plan, ExecOutcome, Tracing};
pub use journal::{ExecEvent, ExecReport, Strategy, WorkerStats};
pub use partition::{chunk_partitions, hash_partitions, merge_partitions, value_hash};
