//! Deterministic partitioning of multisets.
//!
//! Two schemes, matching the algebraic requirements of the operators (see
//! DESIGN.md "Parallel execution"):
//!
//! * **chunk** — contiguous runs of the occurrence sequence, for operators
//!   that distribute over ⊎ element-wise (σ, SET_APPLY, SET_COLLAPSE,
//!   join/cross left inputs).  The multiset's canonical (`BTreeMap`)
//!   ordering makes the split deterministic.
//! * **hash by value / key** — all occurrences of equal values land in the
//!   same partition, for operators whose semantics are per-distinct-value
//!   (DE, ∪, ∩, −, ⊎) or per-key (GRP, equi-joins).  The hash is
//!   `DefaultHasher` over the value's canonical rendering — `SipHash` with
//!   fixed zero keys, so partition assignment is deterministic across
//!   runs and processes.

use std::hash::{Hash, Hasher};

use excess_types::{MultiSet, Value};

/// Deterministic 64-bit hash of a value: equal values hash equal (the
/// rendering is a function of the value), and the hasher is keyed with
/// constants, never `RandomState`.
pub fn value_hash(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.to_string().hash(&mut h);
    h.finish()
}

/// Split `s` into `parts` contiguous occurrence runs of near-equal size.
/// Occurrence counts are preserved exactly: ⊎ of the partitions equals
/// `s`.  Trailing partitions may be empty when `s.len() < parts`.
pub fn chunk_partitions(s: &MultiSet, parts: usize) -> Vec<MultiSet> {
    let parts = parts.max(1);
    let total = s.len();
    let per = total.div_ceil(parts as u64).max(1);
    let mut out = vec![MultiSet::new(); parts];
    let mut idx = 0usize;
    let mut filled = 0u64;
    for (v, mut n) in s.iter_counted() {
        while n > 0 {
            let room = per - filled;
            let take = n.min(room);
            out[idx].insert_n(v.clone(), take);
            n -= take;
            filled += take;
            if filled == per && idx + 1 < parts {
                idx += 1;
                filled = 0;
            }
        }
    }
    out
}

/// Split `s` into `parts` partitions by value hash: every occurrence of a
/// given value lands in partition `hash(value) % parts`.
pub fn hash_partitions(s: &MultiSet, parts: usize) -> Vec<MultiSet> {
    let parts = parts.max(1);
    let mut out = vec![MultiSet::new(); parts];
    for (v, n) in s.iter_counted() {
        let idx = (value_hash(v) % parts as u64) as usize;
        out[idx].insert_n(v.clone(), n);
    }
    out
}

/// ⊎ of a partition list — the inverse of both partitioners, used by the
/// engine's merge step and by the round-trip tests below.
pub fn merge_partitions(parts: Vec<MultiSet>) -> MultiSet {
    let mut acc = MultiSet::new();
    for p in parts {
        acc = acc.additive_union(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiSet {
        let mut s = MultiSet::new();
        for i in 0..10 {
            s.insert_n(Value::int(i % 4), (i % 3 + 1) as u64);
        }
        s
    }

    #[test]
    fn chunk_round_trips_and_balances() {
        let s = sample();
        for parts in [1usize, 2, 3, 7] {
            let split = chunk_partitions(&s, parts);
            assert_eq!(split.len(), parts);
            let max = split.iter().map(|p| p.len()).max().unwrap();
            let min_nonempty = split
                .iter()
                .map(|p| p.len())
                .filter(|&n| n > 0)
                .min()
                .unwrap();
            assert!(max - min_nonempty <= s.len().div_ceil(parts as u64));
            assert_eq!(merge_partitions(split), s);
        }
    }

    #[test]
    fn hash_round_trips_and_colocates() {
        let s = sample();
        for parts in [1usize, 2, 3, 7] {
            let split = hash_partitions(&s, parts);
            // Each distinct value appears in exactly one partition.
            for (v, n) in s.iter_counted() {
                let holders: Vec<u64> = split
                    .iter()
                    .filter_map(|p| {
                        let c = p.iter_counted().find(|(w, _)| *w == v).map(|(_, c)| c)?;
                        Some(c)
                    })
                    .collect();
                assert_eq!(holders, vec![n], "value {v} split across partitions");
            }
            assert_eq!(merge_partitions(split), s);
        }
    }

    #[test]
    fn small_input_leaves_partitions_empty() {
        let mut s = MultiSet::new();
        s.insert_n(Value::int(1), 1);
        s.insert_n(Value::int(2), 1);
        s.insert_n(Value::int(3), 1);
        let split = chunk_partitions(&s, 7);
        assert!(split.iter().filter(|p| p.is_empty()).count() >= 4);
        assert_eq!(merge_partitions(split), s);
    }

    #[test]
    fn value_hash_is_stable_for_equal_values() {
        let a = Value::tuple([("x", Value::int(3)), ("y", Value::str("hi"))]);
        let b = Value::tuple([("x", Value::int(3)), ("y", Value::str("hi"))]);
        assert_eq!(value_hash(&a), value_hash(&b));
    }
}
