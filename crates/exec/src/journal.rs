//! The execution journal: what the engine parallelized, where it inserted
//! exchanges, and where (and why) it fell back to serial evaluation.

use std::time::Duration;

use excess_core::counters::Counters;
use excess_core::profile::{path_string, NodePath};

/// How a parallel operator distributed its input across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Contiguous occurrence runs (σ, SET_APPLY, SET_COLLAPSE, …).
    Chunk,
    /// Hash-partitioned by whole value (DE, ∪, ∩, −, ⊎).
    HashValue,
    /// Left input chunk-partitioned, right input replicated to every
    /// partition (joins and crosses without a usable equi-key).
    BroadcastRight,
    /// Both inputs hash-partitioned on the equi-join key (exchange).
    HashKey,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::Chunk => "chunk",
            Strategy::HashValue => "hash-value",
            Strategy::BroadcastRight => "broadcast-right",
            Strategy::HashKey => "hash-key",
        })
    }
}

/// One journaled engine decision, keyed by the node's path in the plan.
#[derive(Debug, Clone)]
pub enum ExecEvent {
    /// The node ran partition-parallel.
    Parallel {
        /// Node path (child indices from the plan root).
        path: NodePath,
        /// Operator label (`σ[…]`, `GRP[…]`, …).
        op: String,
        /// Partitioning scheme used.
        strategy: Strategy,
        /// Number of partitions the input was split into.
        partitions: usize,
        /// How many of those partitions were empty (skew indicator).
        empty: usize,
    },
    /// A repartition-by-key exchange was inserted (GRP, equi-joins).
    Exchange {
        /// Node path.
        path: NodePath,
        /// Operator label.
        op: String,
        /// Human-readable description of the key(s) hashed on.
        keys: String,
        /// Number of key partitions.
        partitions: usize,
        /// Empty key partitions after the exchange.
        empty: usize,
    },
    /// The node (and, for the plan root, the whole plan) ran serially.
    SerialFallback {
        /// Node path.
        path: NodePath,
        /// Operator label.
        op: String,
        /// Why the engine declined to partition it.
        reason: String,
    },
}

impl ExecEvent {
    /// The node path this event is about.
    pub fn path(&self) -> &NodePath {
        match self {
            ExecEvent::Parallel { path, .. }
            | ExecEvent::Exchange { path, .. }
            | ExecEvent::SerialFallback { path, .. } => path,
        }
    }
}

impl std::fmt::Display for ExecEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecEvent::Parallel {
                path,
                op,
                strategy,
                partitions,
                empty,
            } => write!(
                f,
                "{} {op}: parallel ({strategy}, {partitions} partitions, {empty} empty)",
                path_string(path)
            ),
            ExecEvent::Exchange {
                path,
                op,
                keys,
                partitions,
                empty,
            } => write!(
                f,
                "{} {op}: exchange on {keys} ({partitions} partitions, {empty} empty)",
                path_string(path)
            ),
            ExecEvent::SerialFallback { path, op, reason } => {
                write!(f, "{} {op}: serial — {reason}", path_string(path))
            }
        }
    }
}

/// Per-worker accounting for one plan execution.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Partition tasks this worker executed.
    pub tasks: u64,
    /// Input occurrences routed to this worker (the skew measure).
    pub occurrences: u64,
    /// Wall time spent inside tasks.
    pub busy: Duration,
    /// When the worker thread started, as an offset from the run start
    /// (for the telemetry layer's per-worker span lanes).
    pub started: Duration,
    /// When the worker thread finished, as an offset from the run start.
    pub finished: Duration,
    /// Work counters accumulated by this worker.
    pub counters: Counters,
}

/// Everything the engine observed while executing one plan.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Configured worker count.
    pub workers: usize,
    /// Journal of per-node decisions, in execution order.
    pub events: Vec<ExecEvent>,
    /// Per-worker accounting (empty when the whole plan ran serially).
    pub worker_stats: Vec<WorkerStats>,
}

impl ExecReport {
    /// An empty report for a run with `workers` workers.
    pub fn new(workers: usize) -> Self {
        ExecReport {
            workers,
            events: Vec::new(),
            worker_stats: Vec::new(),
        }
    }

    /// Number of nodes that ran partition-parallel (exchanges included).
    pub fn parallel_nodes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e, ExecEvent::SerialFallback { .. }))
            .count()
    }

    /// Number of journaled serial fallbacks.
    pub fn fallbacks(&self) -> usize {
        self.events.len() - self.parallel_nodes()
    }

    /// Occurrence skew across workers: max / mean routed occurrences
    /// (1.0 = perfectly balanced; `None` when nothing was routed).
    pub fn skew(&self) -> Option<f64> {
        if self.worker_stats.is_empty() {
            return None;
        }
        let total: u64 = self.worker_stats.iter().map(|w| w.occurrences).sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / self.worker_stats.len() as f64;
        let max = self
            .worker_stats
            .iter()
            .map(|w| w.occurrences)
            .max()
            .unwrap_or(0) as f64;
        Some(max / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_is_max_over_mean() {
        let mut r = ExecReport::new(2);
        r.worker_stats = vec![
            WorkerStats {
                worker: 0,
                occurrences: 30,
                ..Default::default()
            },
            WorkerStats {
                worker: 1,
                occurrences: 10,
                ..Default::default()
            },
        ];
        assert!((r.skew().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats_fallback_with_path() {
        let e = ExecEvent::SerialFallback {
            path: vec![0, 1],
            op: "ARR_CAT".into(),
            reason: "order-sensitive".into(),
        };
        assert_eq!(e.to_string(), "[0.1] ARR_CAT: serial — order-sensitive");
    }
}
