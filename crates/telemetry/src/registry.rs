//! A registry of named counters, gauges, and latency histograms.
//!
//! The always-on half of the telemetry layer: incrementing a counter is a
//! `BTreeMap` lookup plus an add, cheap enough to leave enabled on every
//! query.  Names are dotted paths by convention (`queries.parallel`,
//! `phase.execute_us`); iteration order is the map's, so snapshots are
//! deterministic and diff cleanly.

use crate::histogram::Histogram;
use excess_core::json::quote_json;
use std::collections::BTreeMap;

/// Named counters (monotone `u64`), gauges (last-write `f64`), and
/// log-bucketed [`Histogram`]s.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one observation into the named histogram (created empty on
    /// first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// The named histogram, if any observation was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge bucket-wise ([`Histogram::merge`]), gauges take the other
    /// side's value (last-write semantics, matching
    /// [`Registry::set_gauge`]).  This is how per-session registries
    /// collapse into the server-wide registry when a session closes.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// `{"counters":{…},"gauges":{…},"histograms":{…}}` — deterministic
    /// name order.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", quote_json(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", quote_json(k), excess_core::json::number(*v)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", quote_json(k), h.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("queries"), 0);
        r.inc("queries");
        r.add("queries", 2);
        assert_eq!(r.counter("queries"), 3);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("threads"), None);
        r.set_gauge("threads", 4.0);
        r.set_gauge("threads", 2.0);
        assert_eq!(r.gauge("threads"), Some(2.0));
    }

    #[test]
    fn histograms_are_created_on_first_observation() {
        let mut r = Registry::new();
        assert!(r.histogram("query_us").is_none());
        r.observe("query_us", 10);
        r.observe("query_us", 20);
        assert_eq!(r.histogram("query_us").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_parses_with_all_three_sections() {
        let mut r = Registry::new();
        r.inc("queries");
        r.set_gauge("threads", 1.0);
        r.observe("query_us", 100);
        let v = excess_core::json::parse_json(&r.to_json()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("queries").unwrap().as_f64(),
            Some(1.0)
        );
        assert!(v.get("gauges").unwrap().get("threads").is_some());
        let h = v.get("histograms").unwrap().get("query_us").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_overwrites_gauges() {
        let mut a = Registry::new();
        a.inc("queries");
        a.set_gauge("threads", 1.0);
        a.observe("query_us", 10);
        let mut b = Registry::new();
        b.add("queries", 2);
        b.inc("commits");
        b.set_gauge("threads", 4.0);
        b.observe("query_us", 20);
        b.observe("commit_us", 5);
        a.merge(&b);
        assert_eq!(a.counter("queries"), 3);
        assert_eq!(a.counter("commits"), 1);
        assert_eq!(a.gauge("threads"), Some(4.0));
        assert_eq!(a.histogram("query_us").unwrap().count(), 2);
        assert_eq!(a.histogram("commit_us").unwrap().count(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut r = Registry::new();
        r.inc("a");
        r.observe("h", 1);
        r.reset();
        assert_eq!(r.counter("a"), 0);
        assert!(r.histogram("h").is_none());
    }
}
