//! Misestimation feedback log.
//!
//! Every `explain analyze` (and every span-traced query) compares the
//! optimizer's estimated output cardinality at each plan node with the
//! rows the executor actually produced there.  The per-path errors are
//! accumulated here keyed by `(plan hash, node path)`, quantified as the
//! **q-error** `max((est+1)/(act+1), (act+1)/(est+1))` — symmetric,
//! ≥ 1, and robust to zero rows.  A q-error of 1 is a perfect estimate;
//! the worst offenders are the natural input for the feedback-driven
//! re-optimization item on the roadmap.

use excess_core::json::{number, quote_json};
use std::collections::BTreeMap;

/// Accumulated est-vs-actual history for one plan node.
#[derive(Debug, Clone)]
pub struct FeedbackEntry {
    /// FNV-1a hash of the physical plan this node belongs to.
    pub plan_hash: u64,
    /// Node path rendered as `root` / `[0.2.1]`.
    pub path: String,
    /// Operator label at that node.
    pub op: String,
    /// Number of observations folded in.
    pub observations: u64,
    /// Sum of estimated rows over all observations.
    pub est_rows_sum: f64,
    /// Sum of actual rows over all observations.
    pub actual_rows_sum: f64,
    /// Worst q-error seen.
    pub max_q_error: f64,
}

impl FeedbackEntry {
    /// Mean estimated rows per observation.
    pub fn mean_est(&self) -> f64 {
        self.est_rows_sum / self.observations as f64
    }

    /// Mean actual rows per observation.
    pub fn mean_actual(&self) -> f64 {
        self.actual_rows_sum / self.observations as f64
    }
}

/// Symmetric multiplicative estimation error, always ≥ 1.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(0.0) + 1.0;
    let a = actual.max(0.0) + 1.0;
    (e / a).max(a / e)
}

/// Log of cardinality misestimations keyed by `(plan hash, path)`.
#[derive(Debug, Clone, Default)]
pub struct FeedbackLog {
    entries: BTreeMap<(u64, String), FeedbackEntry>,
}

impl FeedbackLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one est-vs-actual observation for a plan node.
    pub fn observe(&mut self, plan_hash: u64, path: &str, op: &str, est: f64, actual: f64) {
        let q = q_error(est, actual);
        let entry = self
            .entries
            .entry((plan_hash, path.to_string()))
            .or_insert_with(|| FeedbackEntry {
                plan_hash,
                path: path.to_string(),
                op: op.to_string(),
                observations: 0,
                est_rows_sum: 0.0,
                actual_rows_sum: 0.0,
                max_q_error: 1.0,
            });
        entry.observations += 1;
        entry.est_rows_sum += est.max(0.0);
        entry.actual_rows_sum += actual.max(0.0);
        if q > entry.max_q_error {
            entry.max_q_error = q;
        }
    }

    /// All entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = &FeedbackEntry> {
        self.entries.values()
    }

    /// Entry for a specific plan node, if observed.
    pub fn entry(&self, plan_hash: u64, path: &str) -> Option<&FeedbackEntry> {
        self.entries.get(&(plan_hash, path.to_string()))
    }

    /// Number of distinct `(plan, path)` keys tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `n` entries with the largest `max_q_error`, worst first (ties
    /// broken by key order for determinism).
    pub fn worst(&self, n: usize) -> Vec<&FeedbackEntry> {
        let mut all: Vec<&FeedbackEntry> = self.entries.values().collect();
        all.sort_by(|a, b| {
            b.max_q_error
                .partial_cmp(&a.max_q_error)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.plan_hash, &a.path).cmp(&(b.plan_hash, &b.path)))
        });
        all.truncate(n);
        all
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// `{"entries":[{"plan_hash":…,"path":…,"op":…,"observations":…,
    /// "mean_est":…,"mean_actual":…,"max_q_error":…},…]}` in key order.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .values()
            .map(|e| {
                format!(
                    "{{\"plan_hash\":{},\"path\":{},\"op\":{},\"observations\":{},\
                     \"mean_est\":{},\"mean_actual\":{},\"max_q_error\":{}}}",
                    e.plan_hash,
                    quote_json(&e.path),
                    quote_json(&e.op),
                    e.observations,
                    number(e.mean_est()),
                    number(e.mean_actual()),
                    number(e.max_q_error)
                )
            })
            .collect();
        format!("{{\"entries\":[{}]}}", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(9.0, 4.0), 2.0);
        assert_eq!(q_error(4.0, 9.0), 2.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(0.0, 99.0) == 100.0);
    }

    #[test]
    fn observations_accumulate_per_key() {
        let mut log = FeedbackLog::new();
        log.observe(7, "[0]", "DE", 10.0, 20.0);
        log.observe(7, "[0]", "DE", 30.0, 20.0);
        log.observe(7, "root", "SET_APPLY", 5.0, 5.0);
        assert_eq!(log.len(), 2);
        let e = log.entry(7, "[0]").unwrap();
        assert_eq!(e.observations, 2);
        assert_eq!(e.mean_est(), 20.0);
        assert_eq!(e.mean_actual(), 20.0);
        assert!(e.max_q_error > 1.0);
    }

    #[test]
    fn worst_sorts_by_max_q_error_descending() {
        let mut log = FeedbackLog::new();
        log.observe(1, "root", "A", 100.0, 1.0); // q ≈ 50.5
        log.observe(1, "[0]", "B", 10.0, 10.0); // q = 1
        log.observe(2, "root", "C", 1.0, 9.0); // q = 5
        let worst = log.worst(2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].op, "A");
        assert_eq!(worst[1].op, "C");
    }

    #[test]
    fn json_parses_with_required_keys() {
        let mut log = FeedbackLog::new();
        log.observe(3, "root", "DE", 8.0, 2.0);
        let v = excess_core::json::parse_json(&log.to_json()).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("op").unwrap().as_str(), Some("DE"));
        assert_eq!(entries[0].get("max_q_error").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn reset_clears_the_log() {
        let mut log = FeedbackLog::new();
        log.observe(1, "root", "A", 1.0, 1.0);
        log.reset();
        assert!(log.is_empty());
    }
}
