//! Misestimation feedback log.
//!
//! Every `explain analyze` (and every span-traced query) compares the
//! optimizer's estimated output cardinality at each plan node with the
//! rows the executor actually produced there.  The per-path errors are
//! accumulated here keyed by `(plan hash, node path)`, quantified as the
//! **q-error** `max((est+1)/(act+1), (act+1)/(est+1))` — symmetric,
//! ≥ 1, and robust to zero rows.  A q-error of 1 is a perfect estimate;
//! the worst offenders are the natural input for the feedback-driven
//! re-optimization item on the roadmap.

use excess_core::json::{number, quote_json};
use std::collections::BTreeMap;

/// Accumulated est-vs-actual history for one plan node.
#[derive(Debug, Clone)]
pub struct FeedbackEntry {
    /// FNV-1a hash of the physical plan this node belongs to.
    pub plan_hash: u64,
    /// Node path rendered as `root` / `[0.2.1]`.
    pub path: String,
    /// Operator label at that node.
    pub op: String,
    /// Name of the extent this node reads (the leftmost named object
    /// under the node in the logical plan), when the caller could map the
    /// path back to one — what lets re-optimization attribute a q-error
    /// to a concrete `Statistics` object without guessing.
    pub extent: Option<String>,
    /// Number of observations folded in.
    pub observations: u64,
    /// Sum of estimated rows over all observations.
    pub est_rows_sum: f64,
    /// Sum of actual rows over all observations.
    pub actual_rows_sum: f64,
    /// Worst q-error seen.
    pub max_q_error: f64,
}

impl FeedbackEntry {
    /// Mean estimated rows per observation.
    pub fn mean_est(&self) -> f64 {
        self.est_rows_sum / self.observations as f64
    }

    /// Mean actual rows per observation.
    pub fn mean_actual(&self) -> f64 {
        self.actual_rows_sum / self.observations as f64
    }
}

/// Cap on any single row figure entering a q-error (and on the sums the
/// log accumulates).  The `+1` floors in [`q_error`] already make zero
/// rows safe; the remaining hazard is a *non-finite or absurd* estimate —
/// a `NaN` or `inf` leaking out of a cost-model division — which would
/// otherwise poison `max_q_error` and every aggregate derived from the
/// per-path sums.  `1e12` is far beyond any real cardinality here while
/// keeping `(CAP + 1)²` comfortably inside `f64` exact-integer range.
pub const Q_ERROR_CAP: f64 = 1e12;

/// Clamp one row figure to `[0, Q_ERROR_CAP]`, mapping `NaN` to 0 (via
/// `f64::max`'s NaN-ignoring semantics) and `+inf` to the cap.
/// `f64::clamp` would propagate the NaN instead, so the manual chain is
/// load-bearing here.
#[allow(clippy::manual_clamp)]
fn sanitize_rows(rows: f64) -> f64 {
    rows.max(0.0).min(Q_ERROR_CAP)
}

/// Symmetric multiplicative estimation error, always ≥ 1 and always
/// finite: both figures are floored at 0 (a `NaN` counts as 0) and capped
/// at [`Q_ERROR_CAP`] before the ratio, then offset by 1 so zero rows on
/// either side cannot divide by zero.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = sanitize_rows(est) + 1.0;
    let a = sanitize_rows(actual) + 1.0;
    (e / a).max(a / e)
}

/// Log of cardinality misestimations keyed by `(plan hash, path)`.
#[derive(Debug, Clone, Default)]
pub struct FeedbackLog {
    entries: BTreeMap<(u64, String), FeedbackEntry>,
}

impl FeedbackLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one est-vs-actual observation for a plan node.  `extent`
    /// names the extent the node reads, when known; a later observation
    /// that knows the extent fills in an entry that started without one.
    pub fn observe(
        &mut self,
        plan_hash: u64,
        path: &str,
        op: &str,
        extent: Option<&str>,
        est: f64,
        actual: f64,
    ) {
        let q = q_error(est, actual);
        let entry = self
            .entries
            .entry((plan_hash, path.to_string()))
            .or_insert_with(|| FeedbackEntry {
                plan_hash,
                path: path.to_string(),
                op: op.to_string(),
                extent: None,
                observations: 0,
                est_rows_sum: 0.0,
                actual_rows_sum: 0.0,
                max_q_error: 1.0,
            });
        if entry.extent.is_none() {
            entry.extent = extent.map(str::to_string);
        }
        entry.observations += 1;
        entry.est_rows_sum += sanitize_rows(est);
        entry.actual_rows_sum += sanitize_rows(actual);
        if q > entry.max_q_error {
            entry.max_q_error = q;
        }
    }

    /// All entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = &FeedbackEntry> {
        self.entries.values()
    }

    /// Entry for a specific plan node, if observed.
    pub fn entry(&self, plan_hash: u64, path: &str) -> Option<&FeedbackEntry> {
        self.entries.get(&(plan_hash, path.to_string()))
    }

    /// Number of distinct `(plan, path)` keys tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `n` entries with the largest `max_q_error`, worst first (ties
    /// broken by key order for determinism).
    pub fn worst(&self, n: usize) -> Vec<&FeedbackEntry> {
        let mut all: Vec<&FeedbackEntry> = self.entries.values().collect();
        all.sort_by(|a, b| {
            b.max_q_error
                .partial_cmp(&a.max_q_error)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.plan_hash, &a.path).cmp(&(b.plan_hash, &b.path)))
        });
        all.truncate(n);
        all
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// `{"entries":[{"plan_hash":…,"path":…,"op":…,"extent":…,
    /// "observations":…,"mean_est":…,"mean_actual":…,"max_q_error":…},…]}`
    /// in key order (`extent` is `null` when unknown).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .values()
            .map(|e| {
                format!(
                    "{{\"plan_hash\":{},\"path\":{},\"op\":{},\"extent\":{},\
                     \"observations\":{},\
                     \"mean_est\":{},\"mean_actual\":{},\"max_q_error\":{}}}",
                    e.plan_hash,
                    quote_json(&e.path),
                    quote_json(&e.op),
                    e.extent
                        .as_deref()
                        .map(quote_json)
                        .unwrap_or_else(|| "null".to_string()),
                    e.observations,
                    number(e.mean_est()),
                    number(e.mean_actual()),
                    number(e.max_q_error)
                )
            })
            .collect();
        format!("{{\"entries\":[{}]}}", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(9.0, 4.0), 2.0);
        assert_eq!(q_error(4.0, 9.0), 2.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(0.0, 99.0) == 100.0);
    }

    #[test]
    fn q_error_survives_zero_actual_and_non_finite_estimates() {
        // Zero actual rows: the +1 floor keeps the ratio finite.
        assert_eq!(q_error(99.0, 0.0), 100.0);
        // A NaN estimate counts as zero rows, not as poison.
        assert_eq!(q_error(f64::NAN, 0.0), 1.0);
        assert_eq!(q_error(f64::NAN, 99.0), 100.0);
        // An infinite estimate caps instead of producing an inf q-error.
        let q = q_error(f64::INFINITY, 10.0);
        assert!(q.is_finite() && q >= 1.0);
        assert_eq!(q, (Q_ERROR_CAP + 1.0) / 11.0);
        // Symmetric in the other direction too.
        assert!(q_error(10.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn non_finite_observations_do_not_poison_the_aggregates() {
        let mut log = FeedbackLog::new();
        log.observe(9, "root", "A", None, f64::INFINITY, 5.0);
        log.observe(9, "root", "A", None, f64::NAN, 5.0);
        log.observe(9, "root", "A", None, 5.0, 5.0);
        let e = log.entry(9, "root").unwrap();
        assert_eq!(e.observations, 3);
        assert!(e.mean_est().is_finite());
        assert!(e.mean_actual().is_finite());
        assert!(e.max_q_error.is_finite());
        // The JSON snapshot stays parseable with finite numbers.
        let v = excess_core::json::parse_json(&log.to_json()).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert!(entries[0]
            .get("max_q_error")
            .unwrap()
            .as_f64()
            .unwrap()
            .is_finite());
    }

    #[test]
    fn observations_accumulate_per_key() {
        let mut log = FeedbackLog::new();
        log.observe(7, "[0]", "DE", None, 10.0, 20.0);
        log.observe(7, "[0]", "DE", None, 30.0, 20.0);
        log.observe(7, "root", "SET_APPLY", None, 5.0, 5.0);
        assert_eq!(log.len(), 2);
        let e = log.entry(7, "[0]").unwrap();
        assert_eq!(e.observations, 2);
        assert_eq!(e.mean_est(), 20.0);
        assert_eq!(e.mean_actual(), 20.0);
        assert!(e.max_q_error > 1.0);
    }

    #[test]
    fn worst_sorts_by_max_q_error_descending() {
        let mut log = FeedbackLog::new();
        log.observe(1, "root", "A", None, 100.0, 1.0); // q ≈ 50.5
        log.observe(1, "[0]", "B", None, 10.0, 10.0); // q = 1
        log.observe(2, "root", "C", None, 1.0, 9.0); // q = 5
        let worst = log.worst(2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].op, "A");
        assert_eq!(worst[1].op, "C");
    }

    #[test]
    fn json_parses_with_required_keys() {
        let mut log = FeedbackLog::new();
        log.observe(3, "root", "DE", None, 8.0, 2.0);
        let v = excess_core::json::parse_json(&log.to_json()).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("op").unwrap().as_str(), Some("DE"));
        assert_eq!(entries[0].get("max_q_error").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn extent_names_attach_and_serialize() {
        let mut log = FeedbackLog::new();
        log.observe(4, "root", "Scan", None, 8.0, 2.0);
        log.observe(4, "root", "Scan", Some("S1"), 8.0, 2.0);
        let e = log.entry(4, "root").unwrap();
        assert_eq!(e.extent.as_deref(), Some("S1"));
        let v = excess_core::json::parse_json(&log.to_json()).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get("extent").unwrap().as_str(), Some("S1"));
    }

    #[test]
    fn reset_clears_the_log() {
        let mut log = FeedbackLog::new();
        log.observe(1, "root", "A", None, 1.0, 1.0);
        log.reset();
        assert!(log.is_empty());
    }
}
