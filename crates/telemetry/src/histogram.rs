//! Log-bucketed latency histograms with exact counts.
//!
//! Observations are non-negative integers (the engine feeds microseconds)
//! bucketed by magnitude: bucket 0 holds the value 0, bucket *i* (for
//! `i ≥ 1`) holds values in `(2^(i-2), 2^(i-1)]` — i.e. each bucket's
//! inclusive upper bound is the next power of two.  Sixty-five buckets
//! cover the whole `u64` range, so **every observation lands in exactly
//! one bucket and the bucket counts always sum to the observation
//! count** — the invariant the report binary and the golden tests assert.
//!
//! Quantiles are answered from the bucket array: `quantile(q)` returns
//! the upper bound of the bucket containing the `⌈q·count⌉`-th smallest
//! observation.  Because ranks are monotone in `q` and bucket bounds are
//! monotone in the index, `p50 ≤ p95 ≤ p99` holds by construction; the
//! answer is exact to within one power-of-two bucket (and `min`/`max`/
//! `sum` are tracked exactly alongside).

/// Number of buckets: the zero bucket plus one per `u64` bit.
pub const BUCKETS: usize = 65;

/// A log-bucketed histogram of non-negative integer observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for one observation: 0 for 0, else `1 + ⌈log2(v)⌉`
/// adjusted so the bucket's upper bound is inclusive.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        // Smallest i with v <= 2^(i-1), i.e. position of the highest set
        // bit, +1 when v is not already a power of two.
        let bits = 64 - v.leading_zeros() as usize;
        if v.is_power_of_two() {
            bits
        } else {
            // The last bucket is open-ended: values above 2^63 that are
            // not a power of two would index 65, so they share bucket 64
            // (bound u64::MAX).
            (bits + 1).min(BUCKETS - 1)
        }
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket counts (index ↔ [`bucket_bound`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Sum of the bucket counts — always equal to [`Histogram::count`];
    /// exposed so tests and the report binary can assert the invariant
    /// from outside.
    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper bound of the bucket holding the `⌈q·count⌉`-th smallest
    /// observation (clamped to the exact `max` so `quantile(1.0)` is
    /// exact).  Returns 0 for an empty histogram; `q` outside `[0, 1]` is
    /// clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one: bucket-wise count addition,
    /// exact sum/min/max combination.  Because both sides bucket by the
    /// same bounds, the merged quantiles are exactly what a single
    /// histogram fed both observation streams would answer — the property
    /// the per-session telemetry relies on when sessions merge into the
    /// server-wide registry on close.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `{"count":…,"sum":…,"mean":…,"min":…,"max":…,"p50":…,"p95":…,
    /// "p99":…,"buckets":[{"le":…,"count":…},…]}` — non-empty buckets
    /// only, in bound order.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| format!("{{\"le\":{},\"count\":{c}}}", bucket_bound(i)))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            excess_core::json::number(self.mean()),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_magnitude() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn every_value_lands_in_its_bound() {
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1023, 1024, 1025, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "{v} > bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn bucket_counts_sum_to_observation_count() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.observe(v * 37 % 4096);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.bucket_sum(), 1000);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The 50th of 1..=100 is 50, inside (32, 64].
        assert_eq!(p50, 64);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let mut h = Histogram::new();
        h.observe(42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn merge_is_equivalent_to_one_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut one = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 5000] {
            a.observe(v);
            one.observe(v);
        }
        for v in [3u64, 900, 65_536] {
            b.observe(v);
            one.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), one.count());
        assert_eq!(a.sum(), one.sum());
        assert_eq!(a.min(), one.min());
        assert_eq!(a.max(), one.max());
        assert_eq!(a.buckets(), one.buckets());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), one.quantile(q));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.observe(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.min(), Some(42));
    }

    #[test]
    fn json_shape_has_required_keys() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(900);
        let j = h.to_json();
        let v = excess_core::json::parse_json(&j).unwrap();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("buckets").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("p50").is_some() && v.get("p99").is_some());
    }
}
