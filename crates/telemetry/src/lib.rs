//! Unified telemetry for the EXCESS engine.
//!
//! Four pieces, layered from always-on to opt-in:
//!
//! * [`Registry`] — named counters, gauges, and log-bucketed latency
//!   [`Histogram`]s with exact counts and p50/p95/p99 quantiles.  Cheap
//!   enough to run on every query.
//! * [`FlightRecorder`] — a fixed ring of the last N [`QueryRecord`]s
//!   (query text, plan hash, engine, per-phase timings, kernel choices,
//!   est-vs-actual rows) with a configurable slow-query threshold.
//! * [`FeedbackLog`] — per-plan-node est-vs-actual cardinality error
//!   accumulated from `explain analyze`, quantified as q-error; the
//!   input for future feedback-driven re-optimization.
//! * [`Span`] / [`QueryTrace`] — opt-in structured span trees covering
//!   every layer of a query's life (parse → infer → verify → optimize →
//!   lower → execute, with per-rewrite, per-choice, per-operator and
//!   per-worker children), exportable as nested JSON or Chrome
//!   trace-event format.
//!
//! The crate depends only on `excess-core` (for the JSON helpers and
//!   counter field names), so every other crate can use it without
//!   cycles.  The [`Telemetry`] struct bundles all four for embedding in
//!   the database.
//!
//! # Example
//!
//! ```
//! use excess_telemetry::Registry;
//!
//! let mut reg = Registry::new();
//! reg.inc("queries");
//! reg.add("rows_out", 42);
//! reg.observe("latency_us", 90);
//! reg.observe("latency_us", 1800);
//!
//! assert_eq!(reg.counter("queries"), 1);
//! let lat = reg.histogram("latency_us").unwrap();
//! assert_eq!(lat.count(), 2);
//! assert!(lat.quantile(0.99) >= lat.quantile(0.50));
//! ```

#![forbid(unsafe_code)]

pub mod feedback;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod span;

pub use feedback::{q_error, FeedbackEntry, FeedbackLog};
pub use histogram::{bucket_bound, Histogram, BUCKETS};
pub use recorder::{
    FlightRecorder, QueryRecord, RecorderSettings, DEFAULT_CAPACITY, DEFAULT_SLOW_THRESHOLD_US,
    RECORDER_CAP_ENV, SLOW_MS_ENV,
};
pub use registry::Registry;
pub use span::{QueryTrace, Span};

/// FNV-1a 64-bit hash — used to fingerprint plans cheaply and
/// deterministically (no `DefaultHasher`, whose output is unspecified
/// across releases).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything the database embeds: the always-on registry, recorder,
/// and feedback log, plus the opt-in span switch and the last trace it
/// produced.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Always-on counters/gauges/histograms.
    pub registry: Registry,
    /// Always-on ring of recent query records.
    pub recorder: FlightRecorder,
    /// Misestimation history from `explain analyze` and traced runs.
    pub feedback: FeedbackLog,
    /// When true, queries assemble full [`QueryTrace`] span trees.
    pub spans_enabled: bool,
    /// The most recent trace (only populated while spans are enabled).
    pub last_trace: Option<QueryTrace>,
}

impl Telemetry {
    /// Fresh telemetry with default recorder capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// One JSON document with every always-on section:
    /// `{"registry":…,"recorder":…,"feedback":…}`.
    pub fn snapshot_json(&self) -> String {
        format!(
            "{{\"registry\":{},\"recorder\":{},\"feedback\":{}}}",
            self.registry.to_json(),
            self.recorder.to_json(),
            self.feedback.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a64_is_deterministic_and_input_sensitive() {
        assert_eq!(fnv1a64(b"plan"), fnv1a64(b"plan"));
        assert_ne!(fnv1a64(b"plan"), fnv1a64(b"plan2"));
    }

    #[test]
    fn snapshot_parses_with_all_sections() {
        let mut t = Telemetry::new();
        t.registry.inc("queries");
        t.feedback.observe(1, "root", "DE", None, 2.0, 4.0);
        let v = excess_core::json::parse_json(&t.snapshot_json()).unwrap();
        assert!(v.get("registry").is_some());
        assert!(v.get("recorder").is_some());
        assert_eq!(
            v.get("feedback")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            1
        );
    }
}
