//! Flight recorder: a fixed-size ring of the last N query records.
//!
//! Always on and cheap — each record is a small struct of timings and
//! labels, pushed after the query finishes.  When the ring is full the
//! oldest record is evicted (FIFO).  Records whose total latency meets
//! the configurable slow-query threshold are flagged so `.slowlog` can
//! filter to just the outliers.

use excess_core::json::quote_json;
use std::collections::VecDeque;

/// Everything worth keeping about one finished query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The query text or plan label.
    pub query: String,
    /// FNV-1a hash of the physical plan (0 for non-plan statements).
    pub plan_hash: u64,
    /// `"serial"` or `"parallel(N)"`.
    pub engine: String,
    /// Rows (occurrences) returned.
    pub rows: u64,
    /// Per-phase timings in microseconds: `(phase name, µs)`.
    pub phase_us: Vec<(&'static str, u64)>,
    /// Physical kernel choices: `(path, kernel)` in path order.
    pub kernels: Vec<(String, String)>,
    /// Estimated vs actual output rows at the plan root, when known.
    pub est_rows: Option<f64>,
    /// Actual output rows at the plan root (same as `rows` for plans).
    pub actual_rows: Option<u64>,
}

impl QueryRecord {
    /// Total latency: the sum of the phase timings.
    pub fn total_us(&self) -> u64 {
        self.phase_us.iter().map(|(_, us)| us).sum()
    }

    /// Serialize one record.
    pub fn to_json(&self, slow_threshold_us: u64) -> String {
        let phases: Vec<String> = self
            .phase_us
            .iter()
            .map(|(name, us)| format!("\"{name}\":{us}"))
            .collect();
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|(path, k)| format!("{}:{}", quote_json(path), quote_json(k)))
            .collect();
        format!(
            "{{\"query\":{},\"plan_hash\":{},\"engine\":{},\"rows\":{},\
             \"total_us\":{},\"slow\":{},\"phases\":{{{}}},\"kernels\":{{{}}},\
             \"est_rows\":{},\"actual_rows\":{}}}",
            quote_json(&self.query),
            self.plan_hash,
            quote_json(&self.engine),
            self.rows,
            self.total_us(),
            self.total_us() >= slow_threshold_us,
            phases.join(","),
            kernels.join(","),
            self.est_rows
                .map_or("null".to_string(), excess_core::json::number),
            self.actual_rows
                .map_or("null".to_string(), |r| r.to_string())
        )
    }
}

/// Ring buffer of the last `capacity` [`QueryRecord`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<QueryRecord>,
    capacity: usize,
    slow_threshold_us: u64,
    recorded: u64,
}

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 128;

/// Default slow-query threshold: 10 ms.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Environment variable holding the slow-query threshold in
/// *milliseconds* (`EXCESS_SLOW_MS=250` flags queries at or above
/// 250 ms).  Consulted by `Database::new` so server operators can tune
/// the flight recorder without code changes.
pub const SLOW_MS_ENV: &str = "EXCESS_SLOW_MS";

/// Environment variable holding the flight-recorder ring capacity
/// (`EXCESS_RECORDER_CAP=1024` keeps the last 1024 query records).
pub const RECORDER_CAP_ENV: &str = "EXCESS_RECORDER_CAP";

/// Resolved flight-recorder configuration plus any warnings the raw
/// settings produced — the same shape as `ExecConfig::from_setting`, so
/// bad values surface through the session-warning path instead of being
/// silently ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderSettings {
    /// Slow-query threshold in microseconds.
    pub slow_threshold_us: u64,
    /// Ring capacity (≥ 1).
    pub capacity: usize,
    /// One warning per rejected setting, naming the variable and value.
    pub warnings: Vec<String>,
}

impl RecorderSettings {
    /// Resolve the two optional setting strings (the `EXCESS_SLOW_MS` /
    /// `EXCESS_RECORDER_CAP` values, or any user-supplied strings) into a
    /// configuration.  Pure, so the fallback paths are testable without
    /// racy environment mutation:
    ///
    /// * `None` → the default, no warning (the variable wasn't set);
    /// * a parsable number ≥ 1 → that value, no warning;
    /// * `"0"` or garbage → the default, with a warning naming the bad
    ///   value (zero is rejected: a 0 ms threshold flags *every* query
    ///   and a 0-record ring can hold nothing).
    pub fn from_settings(slow_ms: Option<&str>, capacity: Option<&str>) -> Self {
        let mut warnings = Vec::new();
        let slow_threshold_us = match slow_ms {
            None => DEFAULT_SLOW_THRESHOLD_US,
            Some(s) => match s.trim().parse::<u64>() {
                Ok(ms) if ms >= 1 => ms.saturating_mul(1000),
                Ok(_) => {
                    warnings.push(format!(
                        "{SLOW_MS_ENV}={s:?} requests a zero slow-query threshold; \
                         keeping the default ({} ms)",
                        DEFAULT_SLOW_THRESHOLD_US / 1000
                    ));
                    DEFAULT_SLOW_THRESHOLD_US
                }
                Err(_) => {
                    warnings.push(format!(
                        "{SLOW_MS_ENV}={s:?} is not a millisecond count; \
                         keeping the default ({} ms)",
                        DEFAULT_SLOW_THRESHOLD_US / 1000
                    ));
                    DEFAULT_SLOW_THRESHOLD_US
                }
            },
        };
        let capacity = match capacity {
            None => DEFAULT_CAPACITY,
            Some(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                Ok(_) => {
                    warnings.push(format!(
                        "{RECORDER_CAP_ENV}={s:?} requests a zero-capacity ring; \
                         keeping the default ({DEFAULT_CAPACITY})"
                    ));
                    DEFAULT_CAPACITY
                }
                Err(_) => {
                    warnings.push(format!(
                        "{RECORDER_CAP_ENV}={s:?} is not a record count; \
                         keeping the default ({DEFAULT_CAPACITY})"
                    ));
                    DEFAULT_CAPACITY
                }
            },
        };
        RecorderSettings {
            slow_threshold_us,
            capacity,
            warnings,
        }
    }

    /// [`RecorderSettings::from_settings`] over the process environment.
    pub fn from_env() -> Self {
        Self::from_settings(
            std::env::var(SLOW_MS_ENV).ok().as_deref(),
            std::env::var(RECORDER_CAP_ENV).ok().as_deref(),
        )
    }

    /// A recorder configured per these settings.
    pub fn build(&self) -> FlightRecorder {
        let mut fr = FlightRecorder::new(self.capacity);
        fr.set_slow_threshold_us(self.slow_threshold_us);
        fr
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            slow_threshold_us: DEFAULT_SLOW_THRESHOLD_US,
            recorded: 0,
        }
    }

    /// Change the slow-query threshold (microseconds).
    pub fn set_slow_threshold_us(&mut self, us: u64) {
        self.slow_threshold_us = us;
    }

    /// Current slow-query threshold (microseconds).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push a record, evicting the oldest when full.
    pub fn record(&mut self, r: QueryRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(r);
        self.recorded += 1;
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.ring.iter()
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever pushed, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records at or above the slow threshold, oldest first.
    pub fn slow(&self) -> impl Iterator<Item = &QueryRecord> {
        self.ring
            .iter()
            .filter(move |r| r.total_us() >= self.slow_threshold_us)
    }

    /// `{"capacity":…,"recorded":…,"slow_threshold_us":…,"records":[…]}`.
    pub fn to_json(&self) -> String {
        let records: Vec<String> = self
            .ring
            .iter()
            .map(|r| r.to_json(self.slow_threshold_us))
            .collect();
        format!(
            "{{\"capacity\":{},\"recorded\":{},\"slow_threshold_us\":{},\"records\":[{}]}}",
            self.capacity,
            self.recorded,
            self.slow_threshold_us,
            records.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(query: &str, us: u64) -> QueryRecord {
        QueryRecord {
            query: query.into(),
            plan_hash: 1,
            engine: "serial".into(),
            rows: 3,
            phase_us: vec![("parse", us / 2), ("execute", us - us / 2)],
            kernels: vec![("root".into(), "scan".into())],
            est_rows: Some(4.0),
            actual_rows: Some(3),
        }
    }

    #[test]
    fn ring_evicts_fifo_at_capacity() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(rec(&format!("q{i}"), 10));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let names: Vec<&str> = fr.records().map(|r| r.query.as_str()).collect();
        assert_eq!(names, ["q2", "q3", "q4"], "oldest evicted first");
    }

    #[test]
    fn slow_filter_respects_threshold() {
        let mut fr = FlightRecorder::new(8);
        fr.set_slow_threshold_us(100);
        fr.record(rec("fast", 50));
        fr.record(rec("slow", 150));
        let slow: Vec<&str> = fr.slow().map(|r| r.query.as_str()).collect();
        assert_eq!(slow, ["slow"]);
    }

    #[test]
    fn total_is_sum_of_phases() {
        assert_eq!(rec("q", 101).total_us(), 101);
    }

    #[test]
    fn json_parses_and_marks_slow_records() {
        let mut fr = FlightRecorder::new(2);
        fr.set_slow_threshold_us(100);
        fr.record(rec("slow one", 200));
        let v = excess_core::json::parse_json(&fr.to_json()).unwrap();
        assert_eq!(v.get("capacity").unwrap().as_f64(), Some(2.0));
        let records = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("slow").unwrap().as_bool(), Some(true));
        assert_eq!(
            records[0]
                .get("phases")
                .unwrap()
                .get("parse")
                .unwrap()
                .as_f64(),
            Some(100.0)
        );
    }

    #[test]
    fn settings_default_when_unset() {
        let s = RecorderSettings::from_settings(None, None);
        assert_eq!(s.slow_threshold_us, DEFAULT_SLOW_THRESHOLD_US);
        assert_eq!(s.capacity, DEFAULT_CAPACITY);
        assert!(s.warnings.is_empty());
    }

    #[test]
    fn settings_accept_valid_values_silently() {
        let s = RecorderSettings::from_settings(Some(" 250 "), Some("1024"));
        assert_eq!(s.slow_threshold_us, 250_000);
        assert_eq!(s.capacity, 1024);
        assert!(s.warnings.is_empty());
        let fr = s.build();
        assert_eq!(fr.slow_threshold_us(), 250_000);
        assert_eq!(fr.capacity(), 1024);
    }

    #[test]
    fn settings_warn_on_zero_and_garbage() {
        let s = RecorderSettings::from_settings(Some("0"), Some("lots"));
        assert_eq!(s.slow_threshold_us, DEFAULT_SLOW_THRESHOLD_US);
        assert_eq!(s.capacity, DEFAULT_CAPACITY);
        assert_eq!(s.warnings.len(), 2);
        assert!(s.warnings[0].contains(SLOW_MS_ENV), "{:?}", s.warnings);
        assert!(s.warnings[1].contains(RECORDER_CAP_ENV), "{:?}", s.warnings);
        assert!(s.warnings[1].contains("lots"), "{:?}", s.warnings);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.record(rec("a", 1));
        fr.record(rec("b", 1));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.records().next().unwrap().query, "b");
    }
}
