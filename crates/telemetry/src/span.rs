//! Structured spans: one tree per query, exportable as JSON or as
//! Chrome trace-event format (load in `chrome://tracing` / Perfetto).
//!
//! A [`Span`] is a named interval with microsecond start/duration, a
//! thread lane (`tid`), string metadata, numeric attributes, and
//! children.  The database assembles one [`QueryTrace`] per query:
//!
//! ```text
//! query
//! ├── parse
//! ├── infer
//! ├── verify
//! ├── optimize
//! │   ├── rewrite:de-pushdown       (one child per accepted step)
//! │   └── refused:idempotent-σ      (one child per refused step)
//! ├── lower
//! │   └── choose:[0.1] hash-join    (one child per physical choice)
//! └── execute
//!     ├── worker:0                  (parallel runs only; tid = worker+1)
//!     ├── …
//!     └── op:DE [0]                 (profile nodes; carry self-counters
//!         └── op:SET_APPLY [0.0]     in `nums` so they telescope)
//! ```
//!
//! The numeric attributes are load-bearing: execute-subtree spans whose
//! `nums` carry per-node *self* counters sum exactly to the query's
//! total counters — the same telescoping invariant the PR 1 profiler
//! guarantees, re-exposed here so `tests/telemetry.rs` can assert it on
//! the span tree alone.

use excess_core::json::{escape_json, quote_json};

/// One named interval in a query's life.
#[derive(Debug, Clone)]
pub struct Span {
    /// Human-readable name (`parse`, `op:DE [0]`, `worker:2`, …).
    pub name: String,
    /// Category for trace viewers (`phase`, `rewrite`, `op`, `worker`).
    pub cat: String,
    /// Start offset in microseconds from the trace origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Thread lane: 0 for the coordinator, worker index + 1 for workers.
    pub tid: u32,
    /// String attributes (rule names, reasons, operator labels).
    pub meta: Vec<(String, String)>,
    /// Numeric attributes (self-counters, row counts).
    pub nums: Vec<(String, u64)>,
    /// Child spans, nested strictly inside this one.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span with the given name/category/interval on lane 0.
    pub fn new(
        name: impl Into<String>,
        cat: impl Into<String>,
        start_us: u64,
        dur_us: u64,
    ) -> Self {
        Span {
            name: name.into(),
            cat: cat.into(),
            start_us,
            dur_us,
            tid: 0,
            meta: Vec::new(),
            nums: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attach a string attribute (builder style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Attach a numeric attribute (builder style).
    pub fn with_num(mut self, key: impl Into<String>, value: u64) -> Self {
        self.nums.push((key.into(), value));
        self
    }

    /// Place this span on a worker lane (builder style).
    pub fn on_lane(mut self, tid: u32) -> Self {
        self.tid = tid;
        self
    }

    /// Number of spans in this subtree, including self.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// True when the subtree is just this span.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth-first preorder visit of the subtree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Span)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Sum of a named numeric attribute over the whole subtree.
    pub fn sum_num(&self, key: &str) -> u64 {
        let mut total = 0u64;
        self.walk(&mut |s| {
            for (k, v) in &s.nums {
                if k == key {
                    total += v;
                }
            }
        });
        total
    }

    /// Find the first span in preorder whose name matches.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn to_json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":{},\"start_us\":{},\"dur_us\":{},\"tid\":{}",
            quote_json(&self.name),
            quote_json(&self.cat),
            self.start_us,
            self.dur_us,
            self.tid
        ));
        if !self.meta.is_empty() || !self.nums.is_empty() {
            out.push_str(",\"args\":{");
            let mut parts = Vec::with_capacity(self.meta.len() + self.nums.len());
            for (k, v) in &self.meta {
                parts.push(format!("{}:{}", quote_json(k), quote_json(v)));
            }
            for (k, v) in &self.nums {
                parts.push(format!("{}:{v}", quote_json(k)));
            }
            out.push_str(&parts.join(","));
            out.push('}');
        }
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json_into(out);
        }
        out.push_str("]}");
    }

    /// Nested JSON for the subtree.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_json_into(&mut out);
        out
    }

    fn to_chrome_into(&self, pid: u32, out: &mut Vec<String>) {
        let mut args = Vec::with_capacity(self.meta.len() + self.nums.len());
        for (k, v) in &self.meta {
            args.push(format!("{}:{}", quote_json(k), quote_json(v)));
        }
        for (k, v) in &self.nums {
            args.push(format!("{}:{v}", quote_json(k)));
        }
        out.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":{},\"args\":{{{}}}}}",
            escape_json(&self.name),
            escape_json(&self.cat),
            self.start_us,
            self.dur_us,
            self.tid,
            args.join(",")
        ));
        for c in &self.children {
            c.to_chrome_into(pid, out);
        }
    }
}

/// The span tree for one query, plus identifying metadata.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The query text or plan label.
    pub query: String,
    /// `"serial"` or `"parallel(N)"`.
    pub engine: String,
    /// FNV-1a hash of the final physical plan's debug rendering.
    pub plan_hash: u64,
    /// The root `query` span.
    pub root: Span,
}

impl QueryTrace {
    /// Total spans in the trace.
    pub fn len(&self) -> usize {
        self.root.len()
    }

    /// True when the trace is a single span.
    pub fn is_empty(&self) -> bool {
        self.root.is_empty()
    }

    /// `{"query":…,"engine":…,"plan_hash":…,"root":{…}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\":{},\"engine\":{},\"plan_hash\":{},\"root\":{}}}",
            quote_json(&self.query),
            quote_json(&self.engine),
            self.plan_hash,
            self.root.to_json()
        )
    }

    /// Chrome trace-event format: a JSON array of complete (`"ph":"X"`)
    /// events, one per span, loadable in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = vec![format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            quote_json(&format!("excess: {}", self.query))
        )];
        self.root.to_chrome_into(1, &mut events);
        format!("[{}]", events.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::json::parse_json;

    fn sample() -> QueryTrace {
        let mut root = Span::new("query", "phase", 0, 100);
        root.children.push(Span::new("parse", "phase", 0, 10));
        let mut exec = Span::new("execute", "phase", 10, 90);
        exec.children
            .push(Span::new("op:DE [0]", "op", 12, 40).with_num("derefs", 7));
        exec.children
            .push(Span::new("op:SCAN [0.0]", "op", 12, 20).with_num("derefs", 3));
        root.children.push(exec);
        QueryTrace {
            query: "retrieve x".into(),
            engine: "serial".into(),
            plan_hash: 42,
            root,
        }
    }

    #[test]
    fn len_counts_the_subtree() {
        assert_eq!(sample().len(), 5);
    }

    #[test]
    fn sum_num_telescopes_over_the_subtree() {
        let t = sample();
        assert_eq!(t.root.sum_num("derefs"), 10);
        assert_eq!(t.root.find("execute").unwrap().sum_num("derefs"), 10);
        assert_eq!(t.root.find("parse").unwrap().sum_num("derefs"), 0);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let t = sample();
        let v = parse_json(&t.to_json()).unwrap();
        assert_eq!(v.get("engine").unwrap().as_str(), Some("serial"));
        assert_eq!(v.get("plan_hash").unwrap().as_f64(), Some(42.0));
        let root = v.get("root").unwrap();
        assert_eq!(root.get("name").unwrap().as_str(), Some("query"));
        assert_eq!(root.get("children").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn chrome_trace_is_one_event_per_span_plus_metadata() {
        let t = sample();
        let v = parse_json(&t.to_chrome_trace()).unwrap();
        let events = v.as_arr().unwrap();
        assert_eq!(events.len(), 1 + t.len());
        // All complete events carry the required trace-event keys.
        for e in &events[1..] {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
        }
        // Numeric attributes survive into args.
        let de = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("op:DE [0]"))
            .unwrap();
        assert_eq!(
            de.get("args").unwrap().get("derefs").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn worker_lanes_use_distinct_tids() {
        let s = Span::new("worker:1", "worker", 0, 5).on_lane(2);
        assert_eq!(s.tid, 2);
        let j = parse_json(&s.to_json()).unwrap();
        assert_eq!(j.get("tid").unwrap().as_f64(), Some(2.0));
    }
}
