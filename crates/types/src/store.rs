//! The object store: identity, sharing, and type migration.
//!
//! "Complex objects are complex structures in the database …, possibly
//! composed of other structures, that have their own unique identity.  Such
//! objects can be referenced by their identity from anywhere in the
//! database." (Section 2)
//!
//! The store maps OIDs to stored objects.  Each object records its
//! *current* most-specific (exact) type — the information the run-time
//! switch-table dispatch of Section 4 consults — while the OID itself
//! permanently carries its *minting* type, which determines the partition
//! cell `R(n)` and hence domain membership.
//!
//! Type migration (allowed by the domain semantics of Section 3.1) may move
//! an object's exact type to any **descendant-or-self of its minting
//! type**: this keeps every extant `ref A` slot valid, because `Odom(A)`
//! membership depends only on the minting type.

use crate::domain::check_dom;
use crate::error::{Result, TypeError};
use crate::oid::{Oid, OidAllocator, TypeId};
use crate::types::TypeRegistry;
use crate::value::Value;
use std::collections::HashMap;

/// A stored object: its current exact type and its value.
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// Current most-specific type (drives overridden-method dispatch).
    pub exact_type: TypeId,
    /// The object's value.
    pub value: Value,
}

/// An in-memory heap of objects keyed by OID.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    alloc: OidAllocator,
    objects: HashMap<Oid, StoredObject>,
}

impl ObjectStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an object of named type `ty`, validating `value ∈
    /// DOM(full_body(ty))`, and return its fresh OID.
    pub fn create(&mut self, reg: &TypeRegistry, ty: TypeId, value: Value) -> Result<Oid> {
        let named = crate::schema::SchemaType::named(reg.name_of(ty));
        check_dom(&value, &named, reg)?;
        Ok(self.create_unchecked(ty, value))
    }

    /// Create without domain validation (bulk-load fast path; the workload
    /// generator constructs values it already knows to be well-typed).
    pub fn create_unchecked(&mut self, ty: TypeId, value: Value) -> Oid {
        let oid = self.alloc.mint(ty);
        self.objects.insert(
            oid,
            StoredObject {
                exact_type: ty,
                value,
            },
        );
        oid
    }

    /// DEREF support: the value of the object `oid` names.
    pub fn deref(&self, oid: Oid) -> Result<&Value> {
        self.objects
            .get(&oid)
            .map(|o| &o.value)
            .ok_or_else(|| TypeError::DanglingOid(oid.to_string()))
    }

    /// Current exact type of an object.
    pub fn exact_type(&self, oid: Oid) -> Result<TypeId> {
        self.objects
            .get(&oid)
            .map(|o| o.exact_type)
            .ok_or_else(|| TypeError::DanglingOid(oid.to_string()))
    }

    /// Replace an object's value, revalidating against its exact type.
    pub fn update(&mut self, reg: &TypeRegistry, oid: Oid, value: Value) -> Result<()> {
        let exact = self.exact_type(oid)?;
        let named = crate::schema::SchemaType::named(reg.name_of(exact));
        check_dom(&value, &named, reg)?;
        self.objects.get_mut(&oid).unwrap().value = value;
        Ok(())
    }

    /// Migrate an object to a new exact type (with a new value of that
    /// type).  The new type must be a descendant-or-self of the OID's
    /// minting type, so no existing reference can dangle semantically.
    pub fn migrate(
        &mut self,
        reg: &TypeRegistry,
        oid: Oid,
        new_type: TypeId,
        new_value: Value,
    ) -> Result<()> {
        if !self.objects.contains_key(&oid) {
            return Err(TypeError::DanglingOid(oid.to_string()));
        }
        if !reg.is_subtype_or_self(new_type, oid.minted) {
            return Err(TypeError::IllegalMigration {
                from: reg.name_of(oid.minted).to_string(),
                to: reg.name_of(new_type).to_string(),
            });
        }
        let named = crate::schema::SchemaType::named(reg.name_of(new_type));
        check_dom(&new_value, &named, reg)?;
        self.objects.insert(
            oid,
            StoredObject {
                exact_type: new_type,
                value: new_value,
            },
        );
        Ok(())
    }

    /// Delete an object.  References elsewhere become dangling — EXTRA
    /// gives owned objects lifetime guarantees we do not model; detection
    /// is via [`ObjectStore::deref`] returning an error.
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        self.objects
            .remove(&oid)
            .map(|_| ())
            .ok_or_else(|| TypeError::DanglingOid(oid.to_string()))
    }

    /// Does the store hold an object with this identity?
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff no objects stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate `(oid, object)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &StoredObject)> {
        self.objects.iter().map(|(o, s)| (*o, s))
    }

    /// The set of OIDs reachable from `roots` by following references
    /// through stored values (cycle-safe).
    pub fn reachable_from<'a, I>(&self, roots: I) -> std::collections::HashSet<Oid>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Oid> = Vec::new();
        for v in roots {
            collect_refs(v, &mut stack);
        }
        while let Some(oid) = stack.pop() {
            if !seen.insert(oid) {
                continue;
            }
            if let Ok(v) = self.deref(oid) {
                collect_refs(v, &mut stack);
            }
        }
        seen
    }

    /// Remove every object not reachable from `roots` — the garbage sweep
    /// implied by EXTRA's ownership semantics ("objects … exist in the
    /// database independently of objects that reference them (except for
    /// their owners)"): once nothing owned by the database reaches an
    /// object, it is gone.  Returns the number of objects removed.
    pub fn sweep_unreachable<'a, I>(&mut self, roots: I) -> usize
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let live = self.reachable_from(roots);
        let before = self.objects.len();
        self.objects.retain(|oid, _| live.contains(oid));
        before - self.objects.len()
    }

    /// OIDs of all objects whose *exact* type is `ty` (used by the
    /// extent indexes backing the ⊎-based dispatch of Section 4).
    pub fn oids_with_exact_type(&self, ty: TypeId) -> Vec<Oid> {
        let mut v: Vec<Oid> = self
            .iter()
            .filter(|(_, s)| s.exact_type == ty)
            .map(|(o, _)| o)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Push every OID appearing anywhere inside `v` onto `out`.
fn collect_refs(v: &Value, out: &mut Vec<Oid>) {
    match v {
        Value::Ref(o) => out.push(*o),
        Value::Tuple(t) => t.iter().for_each(|(_, fv)| collect_refs(fv, out)),
        Value::Set(s) => s.iter_counted().for_each(|(e, _)| collect_refs(e, out)),
        Value::Array(a) => a.iter().for_each(|e| collect_refs(e, out)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaType;

    fn setup() -> (TypeRegistry, TypeId, TypeId) {
        let mut r = TypeRegistry::new();
        let person = r
            .define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
            .unwrap();
        let student = r
            .define_with_supertypes(
                "Student",
                SchemaType::tuple([("gpa", SchemaType::float4())]),
                &["Person"],
            )
            .unwrap();
        (r, person, student)
    }

    fn person(name: &str) -> Value {
        Value::tuple([("name", Value::str(name))])
    }

    fn student(name: &str, gpa: f64) -> Value {
        Value::tuple([("name", Value::str(name)), ("gpa", Value::float(gpa))])
    }

    #[test]
    fn create_and_deref() {
        let (r, p, _) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, p, person("Ann")).unwrap();
        assert_eq!(s.deref(oid).unwrap(), &person("Ann"));
        assert_eq!(s.exact_type(oid).unwrap(), p);
    }

    #[test]
    fn create_validates_domain() {
        let (r, p, _) = setup();
        let mut s = ObjectStore::new();
        assert!(s.create(&r, p, Value::int(3)).is_err());
    }

    #[test]
    fn substitutable_create() {
        // An object of exact type Person may hold a Student-shaped value
        // only if created as a Student; DOM(Person) does include Student
        // tuples, so this is allowed — identity semantics come from the
        // declared type, not the shape.
        let (r, p, _) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, p, student("Sue", 3.9)).unwrap();
        assert_eq!(s.exact_type(oid).unwrap(), p);
    }

    #[test]
    fn dangling_deref_detected() {
        let (r, p, _) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, p, person("Ann")).unwrap();
        s.delete(oid).unwrap();
        assert!(matches!(s.deref(oid), Err(TypeError::DanglingOid(_))));
    }

    #[test]
    fn update_revalidates() {
        let (r, p, _) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, p, person("Ann")).unwrap();
        s.update(&r, oid, person("Anne")).unwrap();
        assert!(s.update(&r, oid, Value::int(1)).is_err());
    }

    #[test]
    fn migration_to_descendant_of_minting_type() {
        // A Person object becomes a Student: allowed (Student is a
        // descendant of the minting type), identity preserved.
        let (r, p, st) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, p, person("Ann")).unwrap();
        s.migrate(&r, oid, st, student("Ann", 3.5)).unwrap();
        assert_eq!(s.exact_type(oid).unwrap(), st);
        assert!(s.contains(oid));
        // Migrating back up to the minting type itself is also fine.
        s.migrate(&r, oid, p, person("Ann")).unwrap();
        assert_eq!(s.exact_type(oid).unwrap(), p);
    }

    #[test]
    fn migration_outside_minting_partition_rejected() {
        // An OID minted in R(Student) may not migrate to plain Person-ness:
        // its partition cell would no longer witness Odom(Student) rules.
        let (r, p, st) = setup();
        let mut s = ObjectStore::new();
        let oid = s.create(&r, st, student("Sue", 3.9)).unwrap();
        let err = s.migrate(&r, oid, p, person("Sue")).unwrap_err();
        assert!(matches!(err, TypeError::IllegalMigration { .. }));
    }

    #[test]
    fn extent_by_exact_type() {
        let (r, p, st) = setup();
        let mut s = ObjectStore::new();
        let o1 = s.create(&r, p, person("A")).unwrap();
        let o2 = s.create(&r, st, student("B", 3.0)).unwrap();
        let o3 = s.create(&r, p, person("C")).unwrap();
        assert_eq!(s.oids_with_exact_type(p), vec![o1, o3]);
        assert_eq!(s.oids_with_exact_type(st), vec![o2]);
        assert_eq!(s.len(), 3);
    }
}
