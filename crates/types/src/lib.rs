//! # excess-types — the EXTRA type system substrate
//!
//! This crate implements the structural half of the EXCESS algebra paper
//! (Vandenberg & DeWitt, SIGMOD 1991): schemas as labelled digraphs over
//! the type constructors *tuple*, *multiset*, *array*, *ref*, and *val*;
//! instances (values) drawn from the complex domains `dom(S)`/`DOM(S)`;
//! named types with multiple inheritance; and object identity realised as a
//! per-type partition of the OID universe, stored in an in-memory object
//! store that supports sharing and type migration.
//!
//! The companion crate `excess-core` defines the algebra's operators over
//! these structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod date;
pub mod domain;
pub mod error;
pub mod multiset;
pub mod oid;
pub mod scalar;
pub mod schema;
pub mod store;
pub mod types;
pub mod value;

pub use column::{Bitmap, Chunk, Column, ColumnData, Validity};
pub use date::Date;
pub use error::{Result, TypeError};
pub use multiset::MultiSet;
pub use oid::{Oid, OidAllocator, TypeId};
pub use scalar::{Scalar, ScalarType};
pub use schema::{GraphEdge, GraphNode, NodeKind, SchemaGraph, SchemaType};
pub use store::{ObjectStore, StoredObject};
pub use types::{TypeDef, TypeRegistry};
pub use value::{Null, Tuple, Value};
