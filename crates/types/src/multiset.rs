//! Multisets (bags) with the cardinality semantics of Section 3.2.1.
//!
//! "A multiset consists of a number of distinct elements, each of which has
//! a certain number of occurrences (a cardinality) in the multiset.  Two
//! multisets are equal iff every element appearing in either multiset has
//! the same cardinality in both."
//!
//! The primary representation is a sorted count map (`BTreeMap<Value, u64>`)
//! keyed on the algebra's single value-based equality.  A deliberately naive
//! `Vec`-based kernel is kept in [`naive`] as an ablation baseline for the
//! `A1` benchmark (see DESIGN.md).
//!
//! Following Section 3.2.4, `dne` nulls are "discarded whenever possible
//! during query processing — for example, a relational selection is easily
//! simulated because dne nulls appearing in a multiset are ignored": this is
//! realised by *dropping `dne` at insertion*, so any operator that builds a
//! multiset inherits the behaviour.

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A multiset of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MultiSet {
    counts: BTreeMap<Value, u64>,
}

impl MultiSet {
    /// The empty multiset `{ }`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of occurrences; `dne` occurrences are dropped.
    pub fn from_occurrences<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Insert one occurrence of `v` (no-op for `dne`).
    pub fn insert(&mut self, v: Value) {
        self.insert_n(v, 1);
    }

    /// Insert `n` occurrences of `v` (no-op for `dne` or `n == 0`).
    pub fn insert_n(&mut self, v: Value, n: u64) {
        if n == 0 || v.is_dne() {
            return;
        }
        *self.counts.entry(v).or_insert(0) += n;
    }

    /// Cardinality of `v` in this multiset (0 if absent).
    pub fn count(&self, v: &Value) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// `true` iff `v` occurs at least once (value-based membership,
    /// "conceptually an equality test against every occurrence").
    pub fn contains(&self, v: &Value) -> bool {
        self.count(v) > 0
    }

    /// Total number of occurrences, `|A|` counting duplicates.
    pub fn len(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct elements.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// `true` iff the multiset has no occurrences.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(element, cardinality)` pairs in value order.
    pub fn iter_counted(&self) -> impl Iterator<Item = (&Value, u64)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    /// Iterate over every occurrence (elements repeated `cardinality` times).
    pub fn iter_occurrences(&self) -> impl Iterator<Item = &Value> {
        self.counts
            .iter()
            .flat_map(|(v, &c)| std::iter::repeat_n(v, c as usize))
    }

    /// Consume into `(element, cardinality)` pairs in value order.
    pub fn into_counted(self) -> impl Iterator<Item = (Value, u64)> {
        self.counts.into_iter()
    }

    /// Additive union `A ⊎ B`: cardinalities are *summed* (operator 1).
    pub fn additive_union(mut self, other: MultiSet) -> MultiSet {
        for (v, c) in other.counts {
            self.insert_n(v, c);
        }
        self
    }

    /// Difference `A − B`: "subtracts the cardinality of an element in B
    /// from that in A to obtain the result cardinality" (operator 6),
    /// saturating at zero.
    pub fn difference(mut self, other: &MultiSet) -> MultiSet {
        for (v, c) in &other.counts {
            if let Some(mine) = self.counts.get_mut(v) {
                if *mine > *c {
                    *mine -= *c;
                } else {
                    self.counts.remove(v);
                }
            }
        }
        self
    }

    /// Duplicate elimination `DE(A)`: "reduces the cardinality of each
    /// element of a multiset to 1" (operator 5).
    pub fn dup_elim(&self) -> MultiSet {
        MultiSet {
            counts: self.counts.keys().map(|v| (v.clone(), 1)).collect(),
        }
    }

    /// Multiset union `A ∪ B` (derived, Appendix §1): result cardinality is
    /// the **max** of the input cardinalities.  Defined here directly;
    /// the optimizer also knows the derivation `(A − B) ⊎ B`.
    pub fn union_max(mut self, other: &MultiSet) -> MultiSet {
        for (v, c) in &other.counts {
            let e = self.counts.entry(v.clone()).or_insert(0);
            *e = (*e).max(*c);
        }
        self
    }

    /// Multiset intersection `A ∩ B` (derived, Appendix §1): result
    /// cardinality is the **min** of the input cardinalities.  Derivation:
    /// `A − (A − B)`.
    pub fn intersect_min(&self, other: &MultiSet) -> MultiSet {
        let mut out = MultiSet::new();
        for (v, c) in &self.counts {
            let m = (*c).min(other.count(v));
            out.insert_n(v.clone(), m);
        }
        out
    }

    /// Cartesian product (operator 7): "identical to the set-theoretic ×
    /// except that it allows for (and produces) duplicates".  Each result
    /// occurrence is a 2-field tuple `(fst, snd)`; cardinalities multiply.
    pub fn cross(&self, other: &MultiSet) -> MultiSet {
        let mut out = MultiSet::new();
        for (a, ca) in &self.counts {
            for (b, cb) in &other.counts {
                out.insert_n(Value::pair(a.clone(), b.clone()), ca * cb);
            }
        }
        out
    }

    /// `SET_COLLAPSE` (operator 8): for a multiset of multisets, the
    /// additive union (⊎) of all member multisets, honouring outer
    /// cardinalities.  Non-multiset members are a structural error; the
    /// caller (evaluator) type-checks, so this returns `None` on misuse.
    pub fn collapse(&self) -> Option<MultiSet> {
        let mut out = MultiSet::new();
        for (v, c) in &self.counts {
            let inner = v.as_set()?;
            for (e, ec) in inner.iter_counted() {
                out.insert_n(e.clone(), ec * c);
            }
        }
        Some(out)
    }
}

impl FromIterator<Value> for MultiSet {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Self::from_occurrences(iter)
    }
}

impl fmt::Display for MultiSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{ ")?;
        let mut first = true;
        for v in self.iter_occurrences() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{v}")?;
        }
        f.write_str(" }")
    }
}

/// Naive `Vec`-based multiset kernels, kept as the ablation baseline for the
/// `A1` benchmark.  These are semantically equivalent to the count-map
/// operations above (asserted by property tests) but quadratic where the
/// count map is `O(n log n)`.
pub mod naive {
    use crate::value::Value;

    /// Additive union of occurrence lists: concatenation.
    pub fn additive_union(mut a: Vec<Value>, mut b: Vec<Value>) -> Vec<Value> {
        a.append(&mut b);
        a
    }

    /// Duplicate elimination by pairwise scan (quadratic on purpose).
    pub fn dup_elim(a: &[Value]) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        for v in a {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Difference with per-occurrence cancellation (quadratic on purpose).
    pub fn difference(a: &[Value], b: &[Value]) -> Vec<Value> {
        let mut remaining = b.to_vec();
        let mut out = Vec::new();
        for v in a {
            if let Some(pos) = remaining.iter().position(|r| r == v) {
                remaining.swap_remove(pos);
            } else {
                out.push(v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ints(xs: &[i32]) -> MultiSet {
        xs.iter().map(|&i| Value::int(i)).collect()
    }

    #[test]
    fn equality_is_cardinality_based() {
        assert_eq!(ints(&[1, 2, 1]), ints(&[1, 1, 2]));
        assert_ne!(ints(&[1, 2]), ints(&[1, 2, 2]));
    }

    #[test]
    fn additive_union_sums_cardinalities() {
        let u = ints(&[1, 1, 2]).additive_union(ints(&[1, 3]));
        assert_eq!(u.count(&Value::int(1)), 3);
        assert_eq!(u.count(&Value::int(2)), 1);
        assert_eq!(u.count(&Value::int(3)), 1);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn difference_subtracts_and_saturates() {
        let d = ints(&[1, 1, 1, 2]).difference(&ints(&[1, 2, 2, 3]));
        assert_eq!(d.count(&Value::int(1)), 2);
        assert_eq!(d.count(&Value::int(2)), 0);
        assert_eq!(d.count(&Value::int(3)), 0);
    }

    #[test]
    fn dup_elim_makes_a_set() {
        let s = ints(&[4, 4, 4, 9]).dup_elim();
        assert_eq!(s.count(&Value::int(4)), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_max_and_intersect_min() {
        let a = ints(&[1, 1, 2]);
        let b = ints(&[1, 2, 2, 3]);
        let u = a.clone().union_max(&b);
        assert_eq!(u.count(&Value::int(1)), 2);
        assert_eq!(u.count(&Value::int(2)), 2);
        assert_eq!(u.count(&Value::int(3)), 1);
        let i = a.intersect_min(&b);
        assert_eq!(i.count(&Value::int(1)), 1);
        assert_eq!(i.count(&Value::int(2)), 1);
        assert_eq!(i.count(&Value::int(3)), 0);
    }

    #[test]
    fn union_matches_its_derivation() {
        // A ∪ B = (A − B) ⊎ B  (Appendix §1)
        let a = ints(&[1, 1, 2, 5]);
        let b = ints(&[1, 2, 2, 3]);
        let derived = a.clone().difference(&b).additive_union(b.clone());
        assert_eq!(a.union_max(&b), derived);
    }

    #[test]
    fn intersection_matches_its_derivation() {
        // A ∩ B = A − (A − B)  (Appendix §1)
        let a = ints(&[1, 1, 2, 5]);
        let b = ints(&[1, 2, 2, 3]);
        let derived = a.clone().difference(&a.clone().difference(&b));
        assert_eq!(a.intersect_min(&b), derived);
    }

    #[test]
    fn cross_multiplies_cardinalities() {
        let c = ints(&[1, 1]).cross(&ints(&[7, 7, 8]));
        assert_eq!(c.count(&Value::pair(Value::int(1), Value::int(7))), 4);
        assert_eq!(c.count(&Value::pair(Value::int(1), Value::int(8))), 2);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn collapse_respects_outer_cardinality() {
        let inner = Value::Set(ints(&[1, 2]));
        let mut outer = MultiSet::new();
        outer.insert_n(inner, 2);
        let c = outer.collapse().unwrap();
        assert_eq!(c.count(&Value::int(1)), 2);
        assert_eq!(c.count(&Value::int(2)), 2);
    }

    #[test]
    fn collapse_rejects_non_set_members() {
        let outer = ints(&[1]);
        assert!(outer.collapse().is_none());
    }

    #[test]
    fn dne_is_discarded_on_insertion() {
        let s = MultiSet::from_occurrences(vec![Value::int(1), Value::dne(), Value::int(1)]);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&Value::dne()));
        // unk, by contrast, is a first-class occurrence
        let s2 = MultiSet::from_occurrences(vec![Value::unk()]);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn sample_from_paper_set_apply_example() {
        // A = {{1,1,2},{2,3,4},{1}}; subtracting {1} per occurrence gives
        // {{1,2},{2,3,4},{}} (Section 3.2.1 example 3).
        let a: MultiSet = vec![
            Value::Set(ints(&[1, 1, 2])),
            Value::Set(ints(&[2, 3, 4])),
            Value::Set(ints(&[1])),
        ]
        .into_iter()
        .collect();
        let one = ints(&[1]);
        let result: MultiSet = a
            .iter_occurrences()
            .map(|v| Value::Set(v.as_set().unwrap().clone().difference(&one)))
            .collect();
        let expected: MultiSet = vec![
            Value::Set(ints(&[1, 2])),
            Value::Set(ints(&[2, 3, 4])),
            Value::Set(ints(&[])),
        ]
        .into_iter()
        .collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn naive_kernels_agree() {
        let a = vec![Value::int(1), Value::int(1), Value::int(2)];
        let b = vec![Value::int(1), Value::int(3)];
        let fast = ints(&[1, 1, 2]).additive_union(ints(&[1, 3]));
        let slow: MultiSet = naive::additive_union(a.clone(), b.clone())
            .into_iter()
            .collect();
        assert_eq!(fast, slow);
        let fast_de = ints(&[1, 1, 2]).dup_elim();
        let slow_de: MultiSet = naive::dup_elim(&a).into_iter().collect();
        assert_eq!(fast_de, slow_de);
        let fast_diff = ints(&[1, 1, 2]).difference(&ints(&[1, 3]));
        let slow_diff: MultiSet = naive::difference(&a, &b).into_iter().collect();
        assert_eq!(fast_diff, slow_diff);
    }
}
