//! Domain membership: `dom(S)` and `DOM(S)` from Section 3.1, including the
//! OID-domain semantics (rules 1–5) under multiple inheritance.
//!
//! `dom(S)` is the structural domain of a schema; `DOM(S)` additionally
//! closes over subtypes (substitutability): `DOM(S) = dom(S) ∪ ⋃ dom(Sᵢ)`
//! for every `S → Sᵢ` in the hierarchy.  For `ref` nodes, the amended
//! definition (v') makes `dom(ref S) = R(S) ∪ ⋃ R(Sᵢ)` — a reference slot
//! typed `ref A` accepts OIDs minted for `A` or any of its descendants.
//!
//! The five OID-domain rules are surfaced as checkable predicates here and
//! verified as laws in `tests/oid_domain_laws.rs`:
//!
//! 1. every `Odom(t)` is infinite — by construction (`u64` serial space);
//! 2. `R → S ⇒ |Odom(R) − Odom(S)| = ∞` — the cell `R(R)` is never shared;
//! 3. `R → S ⇒ Odom(S) ⊆ Odom(R)`;
//! 4. no shared descendants ⇒ disjoint OID domains;
//! 5. `A → B` (every type in B inherits every type in A) ⇒
//!    `⋃ Odom(Bⱼ) ⊆ ⋂ Odom(Aᵢ)`.

use crate::error::{Result, TypeError};
use crate::oid::{Oid, TypeId};
use crate::schema::SchemaType;
use crate::types::TypeRegistry;
use crate::value::Value;

/// `oid ∈ Odom(ty)` under the amended definition (v'): the OID's minting
/// type is `ty` itself or one of its descendants.
pub fn odom_contains(reg: &TypeRegistry, ty: TypeId, oid: Oid) -> bool {
    reg.is_subtype_or_self(oid.minted, ty)
}

/// `oid ∈ R(ty)`: strict partition-cell membership (pre-(v') semantics,
/// kept to let tests contrast `dom` with `DOM`).
pub fn partition_cell_contains(ty: TypeId, oid: Oid) -> bool {
    oid.minted == ty
}

/// Check `v ∈ DOM(s)` (substitutability semantics).  Nulls (`dne`, `unk`)
/// are members of every domain, per the semantic interpretation of the null
/// constants in Section 3.2.4.
pub fn check_dom(v: &Value, s: &SchemaType, reg: &TypeRegistry) -> Result<()> {
    check(v, s, reg, true)
}

/// Check `v ∈ dom(s)`: the strict structural domain, with no subtype
/// substitution at `Named` types and strict `R(n)` membership at `ref`
/// nodes.  Exists so tests can witness `dom(S) ⊆ DOM(S)` being strict.
pub fn check_dom_exact(v: &Value, s: &SchemaType, reg: &TypeRegistry) -> Result<()> {
    check(v, s, reg, false)
}

fn mismatch(expected: &SchemaType, found: &Value) -> TypeError {
    TypeError::DomainViolation {
        expected: expected.to_string(),
        found: format!("{} `{}`", found.kind_name(), found),
    }
}

fn check(v: &Value, s: &SchemaType, reg: &TypeRegistry, substituting: bool) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match s {
        SchemaType::Val(st) => match v {
            Value::Scalar(sc) if sc.scalar_type() == *st => Ok(()),
            // int4 widens into float4 slots (numeric equality already
            // identifies 5 and 5.0; see crate::scalar).
            Value::Scalar(sc)
                if *st == crate::scalar::ScalarType::Float4
                    && sc.scalar_type() == crate::scalar::ScalarType::Int4 =>
            {
                Ok(())
            }
            _ => Err(mismatch(s, v)),
        },
        SchemaType::Tup(fields) => {
            let Value::Tuple(t) = v else {
                return Err(mismatch(s, v));
            };
            if t.arity() != fields.len() {
                return Err(mismatch(s, v));
            }
            for (name, fty) in fields {
                let fv = t.extract(name)?;
                check(fv, fty, reg, substituting)?;
            }
            Ok(())
        }
        SchemaType::Set(elem) => {
            let Value::Set(ms) = v else {
                return Err(mismatch(s, v));
            };
            // "every element of the multiset appears in the domain of the
            // child of the multiset node" (definition iii); DE(x) ⊆ dom(S1)
            // means checking distinct elements suffices.
            for (e, _) in ms.iter_counted() {
                check(e, elem, reg, substituting)?;
            }
            Ok(())
        }
        SchemaType::Arr { elem, len } => {
            let Value::Array(a) = v else {
                return Err(mismatch(s, v));
            };
            if let Some(n) = len {
                if a.len() != *n {
                    return Err(TypeError::ArrayLength {
                        expected: *n,
                        found: a.len(),
                    });
                }
            }
            for e in a {
                check(e, elem, reg, substituting)?;
            }
            Ok(())
        }
        SchemaType::Ref(name) => {
            let Value::Ref(oid) = v else {
                return Err(mismatch(s, v));
            };
            let ty = reg.lookup(name)?;
            let ok = if substituting {
                odom_contains(reg, ty, *oid) // definition (v')
            } else {
                partition_cell_contains(ty, *oid) // strict R(n)
            };
            if ok {
                Ok(())
            } else {
                Err(TypeError::DomainViolation {
                    expected: format!("ref {name}"),
                    found: format!("OID {oid} (minted for {})", reg.name_of(oid.minted)),
                })
            }
        }
        SchemaType::Named(name) => {
            let ty = reg.lookup(name)?;
            if substituting {
                // DOM(S): the value may inhabit the named type or any of its
                // descendants (substitutability).
                let mut candidates = vec![ty];
                candidates.extend(reg.descendants(ty));
                let mut last_err = None;
                for c in candidates {
                    let body = reg.full_body(c)?;
                    match check(v, &body, reg, substituting) {
                        Ok(()) => return Ok(()),
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(last_err.unwrap_or_else(|| mismatch(s, v)))
            } else {
                let body = reg.full_body(ty)?;
                check(v, &body, reg, substituting)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::OidAllocator;

    fn university() -> (TypeRegistry, TypeId, TypeId, TypeId) {
        let mut r = TypeRegistry::new();
        let person = r
            .define(
                "Person",
                SchemaType::tuple([("ssnum", SchemaType::int4()), ("name", SchemaType::chars())]),
            )
            .unwrap();
        let employee = r
            .define_with_supertypes(
                "Employee",
                SchemaType::tuple([("salary", SchemaType::int4())]),
                &["Person"],
            )
            .unwrap();
        let student = r
            .define_with_supertypes(
                "Student",
                SchemaType::tuple([("gpa", SchemaType::float4())]),
                &["Person"],
            )
            .unwrap();
        (r, person, employee, student)
    }

    fn person_val() -> Value {
        Value::tuple([("ssnum", Value::int(1)), ("name", Value::str("Ann"))])
    }

    fn employee_val() -> Value {
        Value::tuple([
            ("ssnum", Value::int(2)),
            ("name", Value::str("Bob")),
            ("salary", Value::int(50_000)),
        ])
    }

    #[test]
    fn scalar_domains() {
        let (r, ..) = university();
        check_dom(&Value::int(5), &SchemaType::int4(), &r).unwrap();
        assert!(check_dom(&Value::str("x"), &SchemaType::int4(), &r).is_err());
        // int4 widens into float4.
        check_dom(&Value::int(5), &SchemaType::float4(), &r).unwrap();
        assert!(check_dom(&Value::float(5.0), &SchemaType::int4(), &r).is_err());
    }

    #[test]
    fn nulls_inhabit_every_domain() {
        let (r, ..) = university();
        check_dom(&Value::dne(), &SchemaType::int4(), &r).unwrap();
        check_dom(&Value::unk(), &SchemaType::set(SchemaType::chars()), &r).unwrap();
    }

    #[test]
    fn substitutability_for_named_tuples() {
        // DOM(Person) contains Employee tuples; dom(Person) does not.
        let (r, ..) = university();
        let s = SchemaType::named("Person");
        check_dom(&person_val(), &s, &r).unwrap();
        check_dom(&employee_val(), &s, &r).unwrap();
        check_dom_exact(&person_val(), &s, &r).unwrap();
        assert!(check_dom_exact(&employee_val(), &s, &r).is_err());
    }

    #[test]
    fn collections_inherit_substitutability() {
        // "arrays of A can also have B's in them" (Section 3.1).
        let (r, ..) = university();
        let arr = SchemaType::array(SchemaType::named("Person"));
        let v = Value::array([person_val(), employee_val()]);
        check_dom(&v, &arr, &r).unwrap();
    }

    #[test]
    fn ref_domains_follow_rule_v_prime() {
        // ref Person accepts OIDs minted for Employee under DOM, not dom.
        let (r, person, employee, _) = university();
        let mut alloc = OidAllocator::new();
        let e_oid = alloc.mint(employee);
        let s = SchemaType::reference("Person");
        check_dom(&Value::Ref(e_oid), &s, &r).unwrap();
        assert!(check_dom_exact(&Value::Ref(e_oid), &s, &r).is_err());
        // The reverse is never allowed: ref Employee rejects Person OIDs.
        let p_oid = alloc.mint(person);
        assert!(check_dom(&Value::Ref(p_oid), &SchemaType::reference("Employee"), &r).is_err());
    }

    #[test]
    fn ref_a_to_ref_b_needs_hierarchy_not_value_shape() {
        // The paper stresses "ref A → ref B … is different than A → B":
        // an OID of an unrelated type with identical structure is rejected.
        let (mut r, ..) = university();
        r.define(
            "Clone",
            SchemaType::tuple([("ssnum", SchemaType::int4()), ("name", SchemaType::chars())]),
        )
        .unwrap();
        let clone_ty = r.lookup("Clone").unwrap();
        let mut alloc = OidAllocator::new();
        let c = alloc.mint(clone_ty);
        assert!(check_dom(&Value::Ref(c), &SchemaType::reference("Person"), &r).is_err());
    }

    #[test]
    fn fixed_length_arrays_enforced() {
        let (r, ..) = university();
        let s = SchemaType::fixed_array(SchemaType::int4(), 3);
        check_dom(
            &Value::array([Value::int(1), Value::int(2), Value::int(3)]),
            &s,
            &r,
        )
        .unwrap();
        let err = check_dom(&Value::array([Value::int(1)]), &s, &r).unwrap_err();
        assert!(matches!(
            err,
            TypeError::ArrayLength {
                expected: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn variable_length_arrays_accept_empty() {
        // "it is legal for a variable-length array to be empty" (def. iv).
        let (r, ..) = university();
        check_dom(
            &Value::array([]),
            &SchemaType::array(SchemaType::int4()),
            &r,
        )
        .unwrap();
    }

    #[test]
    fn multiset_elements_checked_once_per_distinct_value() {
        let (r, ..) = university();
        let s = SchemaType::set(SchemaType::int4());
        check_dom(&Value::set([Value::int(1), Value::int(1)]), &s, &r).unwrap();
        assert!(check_dom(&Value::set([Value::str("no")]), &s, &r).is_err());
    }

    #[test]
    fn tuple_arity_must_match() {
        let (r, ..) = university();
        let s = SchemaType::tuple([("a", SchemaType::int4())]);
        assert!(check_dom(
            &Value::tuple([("a", Value::int(1)), ("b", Value::int(2))]),
            &s,
            &r
        )
        .is_err());
    }
}
