//! Object identifiers and the per-type OID partition `R(n)`.
//!
//! Section 3.1(v) of the paper defines `R(n)`, for any type name `n`, as an
//! infinite subset of the set `R` of all OIDs, such that `R` is
//! **partitioned**: `m != n` implies `R(m) ∩ R(n) = ∅`.  The paper
//! constructs the partition with a decimal-representation trick; we realise
//! it directly as the pair *(minting type, serial number)*: the set of OIDs
//! minted for type `n` is `{ (n, k) | k ∈ ℕ }`, which is countably infinite
//! and disjoint from every other type's set.
//!
//! An OID's *minting type* is fixed for life — it determines which partition
//! cell the identifier belongs to.  The object's *current* most-specific
//! type lives in the [`crate::store::ObjectStore`] and may migrate (the
//! paper notes its domain semantics "allow type migration to occur").

use std::fmt;

/// An opaque numeric identifier for a named type in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// An object identifier: an element of the paper's OID universe `R`.
///
/// Per the partition construction, the OID carries the type it was minted
/// in (`minted`) and a serial unique within that type.  The pair is the
/// identity; its "value is not available to the user" (Section 3.1) — the
/// algebra only ever compares OIDs for equality and dereferences them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// The type whose partition cell `R(minted)` this OID belongs to.
    pub minted: TypeId,
    /// Serial number within the partition cell.
    pub serial: u64,
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}#{}", self.minted, self.serial)
    }
}

/// Allocates OIDs, one monotone serial counter per type.
///
/// Each cell `R(n)` is inexhaustible in practice (2^64 serials), which is
/// how we realise OID-domain **rule 1** ("all domains must be infinite")
/// and **rule 2** (the residue after removing all subtypes' cells is still
/// infinite, because the cell for the type itself is never shared).
#[derive(Debug, Default, Clone)]
pub struct OidAllocator {
    next: std::collections::HashMap<TypeId, u64>,
}

impl OidAllocator {
    /// Create an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a fresh OID in `R(ty)`.
    pub fn mint(&mut self, ty: TypeId) -> Oid {
        let serial = self.next.entry(ty).or_insert(0);
        let oid = Oid {
            minted: ty,
            serial: *serial,
        };
        *serial += 1;
        oid
    }

    /// Number of OIDs minted so far for `ty`.
    pub fn minted_count(&self, ty: TypeId) -> u64 {
        self.next.get(&ty).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mints_are_unique_within_a_type() {
        let mut a = OidAllocator::new();
        let t = TypeId(1);
        let o1 = a.mint(t);
        let o2 = a.mint(t);
        assert_ne!(o1, o2);
        assert_eq!(o1.minted, o2.minted);
        assert_eq!(a.minted_count(t), 2);
    }

    #[test]
    fn partition_cells_are_disjoint() {
        // Same serial in different types is a different OID: R(m) ∩ R(n) = ∅.
        let mut a = OidAllocator::new();
        let o1 = a.mint(TypeId(1));
        let o2 = a.mint(TypeId(2));
        assert_eq!(o1.serial, o2.serial);
        assert_ne!(o1, o2);
    }

    #[test]
    fn display_is_opaque_but_stable() {
        let o = Oid {
            minted: TypeId(3),
            serial: 9,
        };
        assert_eq!(o.to_string(), "@ty3#9");
    }
}
