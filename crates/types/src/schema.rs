//! Schemas: the structural half of a structure `(S, I)`.
//!
//! Section 3.1 defines a schema as a labelled digraph whose nodes are type
//! constructors ("set", "tup", "arr", "ref", "val") and whose edges denote
//! *component-of*, subject to four conditions:
//!
//! 1. (i) "val" nodes have no components;
//! 2. (ii) a node with no components is "val" or "tup" (the empty tuple type
//!    is allowed);
//! 3. (iii) "arr", "set", and "ref" nodes have exactly one component
//!    (homogeneity, modulo inheritance);
//! 4. (iv) `deref(S)` — the graph with edges out of "ref" nodes removed —
//!    must be a forest, so every schema cycle passes through a "ref" node.
//!
//! Two representations are provided:
//!
//! * [`SchemaType`] — the tree-with-symbolic-ref-targets form the engine
//!   works with.  Because a `ref` node's component is represented as a
//!   *type name* rather than an embedded subtree, condition (iv) holds by
//!   construction, and cyclic schemas (`Employee.manager: ref Employee`)
//!   are expressed naturally.
//! * [`SchemaGraph`] — the paper's explicit digraph, with a [`validate`]
//!   checker for conditions (i)–(iv).  Used to reproduce Figure 2 and to
//!   property-test the conditions.
//!
//! [`validate`]: SchemaGraph::validate

use crate::error::{Result, TypeError};
use crate::scalar::ScalarType;
use std::collections::HashMap;
use std::fmt;

/// The engine-facing schema: a tree whose `ref` leaves point at named types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchemaType {
    /// A "val" node of the given scalar type.
    Val(ScalarType),
    /// A "tup" node with named, ordered components.
    Tup(Vec<(String, SchemaType)>),
    /// A "set" node (multiset of the component type).
    Set(Box<SchemaType>),
    /// An "arr" node; `len` is `Some(n)` for EXTRA's fixed-length arrays
    /// (`array [1..n] of T`) and `None` for variable-length arrays.
    Arr {
        /// Element type.
        elem: Box<SchemaType>,
        /// Fixed length, if any.
        len: Option<usize>,
    },
    /// A "ref" node whose single component is the named type (an OID in
    /// `Odom(name)` per Section 3.1 rule (v')).
    Ref(String),
    /// A use of a named type *by value* (nested-relational semantics:
    /// "subordinate entities are treated as values … unless prefaced by
    /// ref").  Resolved through the [`crate::types::TypeRegistry`].
    Named(String),
}

impl SchemaType {
    /// Shorthand: `int4`.
    pub fn int4() -> SchemaType {
        SchemaType::Val(ScalarType::Int4)
    }
    /// Shorthand: `float4`.
    pub fn float4() -> SchemaType {
        SchemaType::Val(ScalarType::Float4)
    }
    /// Shorthand: `char[]`.
    pub fn chars() -> SchemaType {
        SchemaType::Val(ScalarType::Char)
    }
    /// Shorthand: `bool`.
    pub fn boolean() -> SchemaType {
        SchemaType::Val(ScalarType::Bool)
    }
    /// Shorthand: `Date`.
    pub fn date() -> SchemaType {
        SchemaType::Val(ScalarType::Date)
    }
    /// Shorthand: `{ T }`.
    pub fn set(elem: SchemaType) -> SchemaType {
        SchemaType::Set(Box::new(elem))
    }
    /// Shorthand: variable-length `array of T`.
    pub fn array(elem: SchemaType) -> SchemaType {
        SchemaType::Arr {
            elem: Box::new(elem),
            len: None,
        }
    }
    /// Shorthand: fixed-length `array [1..n] of T`.
    pub fn fixed_array(elem: SchemaType, n: usize) -> SchemaType {
        SchemaType::Arr {
            elem: Box::new(elem),
            len: Some(n),
        }
    }
    /// Shorthand: `ref Name`.
    pub fn reference(name: impl Into<String>) -> SchemaType {
        SchemaType::Ref(name.into())
    }
    /// Shorthand: named type by value.
    pub fn named(name: impl Into<String>) -> SchemaType {
        SchemaType::Named(name.into())
    }
    /// Shorthand: tuple type.
    pub fn tuple<I, S>(fields: I) -> SchemaType
    where
        I: IntoIterator<Item = (S, SchemaType)>,
        S: Into<String>,
    {
        SchemaType::Tup(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Names of all types this schema mentions (through `Ref`/`Named`).
    pub fn mentioned_types(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_mentions(&mut out);
        out
    }

    fn collect_mentions<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SchemaType::Val(_) => {}
            SchemaType::Tup(fs) => fs.iter().for_each(|(_, t)| t.collect_mentions(out)),
            SchemaType::Set(t) => t.collect_mentions(out),
            SchemaType::Arr { elem, .. } => elem.collect_mentions(out),
            SchemaType::Ref(n) | SchemaType::Named(n) => out.push(n),
        }
    }
}

impl fmt::Display for SchemaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaType::Val(s) => write!(f, "{s}"),
            SchemaType::Tup(fs) => {
                f.write_str("(")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                f.write_str(")")
            }
            SchemaType::Set(t) => write!(f, "{{ {t} }}"),
            SchemaType::Arr { elem, len: None } => write!(f, "array of {elem}"),
            SchemaType::Arr { elem, len: Some(n) } => write!(f, "array [1..{n}] of {elem}"),
            SchemaType::Ref(n) => write!(f, "ref {n}"),
            SchemaType::Named(n) => write!(f, "{n}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit digraph form (the paper's formal definition, used in Figure 2)
// ---------------------------------------------------------------------------

/// Node labels of the schema digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Multiset constructor.
    Set,
    /// Tuple constructor.
    Tup,
    /// Array constructor.
    Arr,
    /// Reference constructor.
    Ref,
    /// Scalar leaf.
    Val,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeKind::Set => "set",
            NodeKind::Tup => "tup",
            NodeKind::Arr => "arr",
            NodeKind::Ref => "ref",
            NodeKind::Val => "val",
        })
    }
}

/// A node of a [`SchemaGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// Constructor label.
    pub kind: NodeKind,
    /// Unique type name ("Every node has a unique name").
    pub name: String,
}

/// An edge `from → to`: `to` is a component of `from`.  Edges out of "tup"
/// nodes carry the component (field) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// Parent node index.
    pub from: usize,
    /// Component node index.
    pub to: usize,
    /// Field name for tuple components.
    pub field: Option<String>,
}

/// The paper's schema digraph `S = (V, E)` with a distinguished root.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    /// Labelled vertices.
    pub nodes: Vec<GraphNode>,
    /// Component-of edges.
    pub edges: Vec<GraphEdge>,
    /// Index of the distinguished root node.
    pub root: usize,
}

impl SchemaGraph {
    /// Add a node, returning its index.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> usize {
        self.nodes.push(GraphNode {
            kind,
            name: name.into(),
        });
        self.nodes.len() - 1
    }

    /// Add a component edge.
    pub fn add_edge(&mut self, from: usize, to: usize, field: Option<&str>) {
        self.edges.push(GraphEdge {
            from,
            to,
            field: field.map(str::to_owned),
        });
    }

    /// Out-edges of node `i`.
    fn components(&self, i: usize) -> impl Iterator<Item = &GraphEdge> {
        self.edges.iter().filter(move |e| e.from == i)
    }

    /// Check conditions (i)–(iv) of Section 3.1 plus name uniqueness.
    pub fn validate(&self) -> Result<()> {
        // Name uniqueness.
        let mut seen = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(_prev) = seen.insert(&n.name, i) {
                return Err(TypeError::SchemaCondition {
                    condition: "name-uniqueness",
                    detail: format!("duplicate node name `{}`", n.name),
                });
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let out = self.components(i).count();
            match n.kind {
                // (i) val nodes have no components.
                NodeKind::Val if out != 0 => {
                    return Err(TypeError::SchemaCondition {
                        condition: "(i)",
                        detail: format!("val node `{}` has {out} components", n.name),
                    });
                }
                // (iii) arr/set/ref nodes have exactly one component.
                NodeKind::Arr | NodeKind::Set | NodeKind::Ref if out != 1 => {
                    return Err(TypeError::SchemaCondition {
                        condition: "(iii)",
                        detail: format!("{} node `{}` has {out} components", n.kind, n.name),
                    });
                }
                _ => {}
            }
            // (ii) a node with no components is val or tup.
            if out == 0 && !matches!(n.kind, NodeKind::Val | NodeKind::Tup) {
                return Err(TypeError::SchemaCondition {
                    condition: "(ii)",
                    detail: format!("{} node `{}` has no components", n.kind, n.name),
                });
            }
        }
        // (iv) deref(S) must be a forest: drop edges out of ref nodes, then
        // require every node to have at most one parent and no cycles.
        let deref_edges: Vec<&GraphEdge> = self
            .edges
            .iter()
            .filter(|e| self.nodes[e.from].kind != NodeKind::Ref)
            .collect();
        let mut parents = vec![0usize; self.nodes.len()];
        for e in &deref_edges {
            parents[e.to] += 1;
            if parents[e.to] > 1 {
                return Err(TypeError::SchemaCondition {
                    condition: "(iv)",
                    detail: format!(
                        "node `{}` has two parents in deref(S)",
                        self.nodes[e.to].name
                    ),
                });
            }
        }
        // Cycle detection by iterative leaf-stripping (Kahn) on deref(S).
        let mut indeg = parents;
        let mut queue: Vec<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for e in deref_edges.iter().filter(|e| e.from == i) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        if visited != self.nodes.len() {
            return Err(TypeError::SchemaCondition {
                condition: "(iv)",
                detail: "deref(S) contains a cycle".to_string(),
            });
        }
        Ok(())
    }

    /// Build the digraph for a [`SchemaType`] tree.  `ref` nodes get a
    /// synthetic "val"-like leaf standing for the referenced type (the
    /// target lives in the registry, not in this structure's graph), which
    /// matches the paper's picture in Figure 2 where the ref component is
    /// drawn as a scalar.
    pub fn from_schema_type(root_name: &str, ty: &SchemaType) -> SchemaGraph {
        let mut g = SchemaGraph::default();
        let mut counter = 0usize;
        let root = build(&mut g, root_name, ty, &mut counter);
        g.root = root;
        return g;

        fn build(g: &mut SchemaGraph, name: &str, ty: &SchemaType, counter: &mut usize) -> usize {
            let fresh = |counter: &mut usize, base: &str| {
                *counter += 1;
                format!("{base}${counter}", base = base, counter = *counter)
            };
            match ty {
                SchemaType::Val(_) => g.add_node(NodeKind::Val, name),
                SchemaType::Named(n) => {
                    // By-value use of a named type: a leaf labelled with the
                    // name; expansion happens via the registry.
                    g.add_node(NodeKind::Tup, format!("{name}:{n}"))
                }
                SchemaType::Tup(fields) => {
                    let me = g.add_node(NodeKind::Tup, name);
                    for (fname, fty) in fields {
                        let child_name = fresh(counter, fname);
                        let c = build(g, &child_name, fty, counter);
                        g.add_edge(me, c, Some(fname));
                    }
                    me
                }
                SchemaType::Set(t) => {
                    let me = g.add_node(NodeKind::Set, name);
                    let child_name = fresh(counter, "elem");
                    let c = build(g, &child_name, t, counter);
                    g.add_edge(me, c, None);
                    me
                }
                SchemaType::Arr { elem, .. } => {
                    let me = g.add_node(NodeKind::Arr, name);
                    let child_name = fresh(counter, "elem");
                    let c = build(g, &child_name, elem, counter);
                    g.add_edge(me, c, None);
                    me
                }
                SchemaType::Ref(target) => {
                    let me = g.add_node(NodeKind::Ref, name);
                    let c = g.add_node(NodeKind::Val, fresh(counter, target));
                    g.add_edge(me, c, None);
                    me
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schema of Figure 2: a multiset of 3-tuples, each with a scalar
    /// field, an array-of-scalars field, and a ref-to-scalar field.
    fn figure2() -> SchemaType {
        SchemaType::set(SchemaType::tuple([
            ("f1", SchemaType::int4()),
            ("f2", SchemaType::array(SchemaType::int4())),
            ("f3", SchemaType::reference("Scalar")),
        ]))
    }

    #[test]
    fn figure2_graph_is_valid() {
        let g = SchemaGraph::from_schema_type("root", &figure2());
        g.validate().unwrap();
        assert_eq!(g.nodes[g.root].kind, NodeKind::Set);
    }

    #[test]
    fn condition_i_val_with_component_rejected() {
        let mut g = SchemaGraph::default();
        let v = g.add_node(NodeKind::Val, "v");
        let w = g.add_node(NodeKind::Val, "w");
        g.add_edge(v, w, None);
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            TypeError::SchemaCondition {
                condition: "(i)",
                ..
            }
        ));
    }

    #[test]
    fn condition_ii_childless_set_rejected() {
        let mut g = SchemaGraph::default();
        g.add_node(NodeKind::Set, "s");
        let err = g.validate().unwrap_err();
        // A childless set violates (iii) first (exactly one component).
        assert!(matches!(err, TypeError::SchemaCondition { .. }));
    }

    #[test]
    fn empty_tuple_type_is_allowed() {
        let mut g = SchemaGraph::default();
        g.add_node(NodeKind::Tup, "unit");
        g.validate().unwrap();
    }

    #[test]
    fn condition_iii_two_component_set_rejected() {
        let mut g = SchemaGraph::default();
        let s = g.add_node(NodeKind::Set, "s");
        let a = g.add_node(NodeKind::Val, "a");
        let b = g.add_node(NodeKind::Val, "b");
        g.add_edge(s, a, None);
        g.add_edge(s, b, None);
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            TypeError::SchemaCondition {
                condition: "(iii)",
                ..
            }
        ));
    }

    #[test]
    fn condition_iv_cycle_without_ref_rejected() {
        let mut g = SchemaGraph::default();
        let t1 = g.add_node(NodeKind::Tup, "t1");
        let t2 = g.add_node(NodeKind::Tup, "t2");
        g.add_edge(t1, t2, Some("a"));
        g.add_edge(t2, t1, Some("b"));
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            TypeError::SchemaCondition {
                condition: "(iv)",
                ..
            }
        ));
    }

    #[test]
    fn condition_iv_cycle_through_ref_allowed() {
        // Employee.manager: ref Employee — the cycle passes through a ref
        // node, so deref(S) is a forest.
        let mut g = SchemaGraph::default();
        let emp = g.add_node(NodeKind::Tup, "Employee");
        let mgr = g.add_node(NodeKind::Ref, "manager");
        g.add_edge(emp, mgr, Some("manager"));
        g.add_edge(mgr, emp, None);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = SchemaGraph::default();
        g.add_node(NodeKind::Tup, "x");
        g.add_node(NodeKind::Tup, "x");
        assert!(g.validate().is_err());
    }

    #[test]
    fn shared_subtree_in_deref_rejected() {
        // Two tuples sharing a component by value: not a forest.
        let mut g = SchemaGraph::default();
        let a = g.add_node(NodeKind::Tup, "a");
        let b = g.add_node(NodeKind::Tup, "b");
        let shared = g.add_node(NodeKind::Val, "shared");
        g.add_edge(a, shared, Some("x"));
        g.add_edge(b, shared, Some("y"));
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            TypeError::SchemaCondition {
                condition: "(iv)",
                ..
            }
        ));
    }

    #[test]
    fn display_round_trip_reads_like_extra_ddl() {
        let t = figure2();
        assert_eq!(
            t.to_string(),
            "{ (f1: int4, f2: array of int4, f3: ref Scalar) }"
        );
        assert_eq!(
            SchemaType::fixed_array(SchemaType::reference("Employee"), 10).to_string(),
            "array [1..10] of ref Employee"
        );
    }

    #[test]
    fn mentioned_types_walks_everything() {
        let t = SchemaType::tuple([
            ("a", SchemaType::reference("Dept")),
            ("b", SchemaType::set(SchemaType::named("Person"))),
        ]);
        assert_eq!(t.mentioned_types(), vec!["Dept", "Person"]);
    }
}
