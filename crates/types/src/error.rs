//! Error types for the EXTRA type system.

use std::fmt;

/// Errors raised by schema validation, domain membership checks, and the
/// object store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TypeError {
    /// A schema digraph violated one of conditions (i)-(iv) of Section 3.1.
    SchemaCondition {
        condition: &'static str,
        detail: String,
    },
    /// A named type was referenced but never defined.
    UnknownType(String),
    /// A type was defined twice.
    DuplicateType(String),
    /// The `inherits` clauses form a cycle.
    InheritanceCycle(String),
    /// A tuple attribute was inherited from two unrelated supertypes with
    /// conflicting types and not overridden.
    AttributeConflict { ty: String, attr: String },
    /// An attribute override changed the attribute set illegally.
    BadOverride {
        ty: String,
        attr: String,
        detail: String,
    },
    /// A value was not a member of the domain of the schema it was checked
    /// against.
    DomainViolation { expected: String, found: String },
    /// An OID was dereferenced but no object with that identity exists.
    DanglingOid(String),
    /// A type-migration request violated the OID-domain partition rules.
    IllegalMigration { from: String, to: String },
    /// A fixed-length array had the wrong number of elements.
    ArrayLength { expected: usize, found: usize },
    /// Tuple field missing.
    NoSuchField { field: String },
    /// Miscellaneous structural error.
    Structure(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::SchemaCondition { condition, detail } => {
                write!(f, "schema condition {condition} violated: {detail}")
            }
            TypeError::UnknownType(n) => write!(f, "unknown type `{n}`"),
            TypeError::DuplicateType(n) => write!(f, "type `{n}` defined twice"),
            TypeError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle through type `{n}`")
            }
            TypeError::AttributeConflict { ty, attr } => {
                write!(
                    f,
                    "type `{ty}` inherits attribute `{attr}` with conflicting types"
                )
            }
            TypeError::BadOverride { ty, attr, detail } => {
                write!(f, "illegal override of `{attr}` in type `{ty}`: {detail}")
            }
            TypeError::DomainViolation { expected, found } => {
                write!(f, "value not in domain: expected {expected}, found {found}")
            }
            TypeError::DanglingOid(o) => write!(f, "dangling OID {o}"),
            TypeError::IllegalMigration { from, to } => {
                write!(f, "illegal type migration from `{from}` to `{to}`")
            }
            TypeError::ArrayLength { expected, found } => {
                write!(
                    f,
                    "fixed-length array expected {expected} elements, found {found}"
                )
            }
            TypeError::NoSuchField { field } => write!(f, "tuple has no field `{field}`"),
            TypeError::Structure(s) => write!(f, "structural error: {s}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, TypeError>;
