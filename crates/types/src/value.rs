//! Instances: elements of the complex domains of Section 3.1.
//!
//! A [`Value`] is an element of `dom(S)` for some schema `S`: a scalar, a
//! tuple with named fields, a multiset, a (variable-length) array, an OID
//! reference, or one of the two null constants `dne` ("does not exist") and
//! `unk` ("unknown") of Section 3.2.4.
//!
//! All values share a single total order (and hence a single value-based
//! equality, as required by the algebra's one-equality design): scalars by
//! [`crate::scalar::Scalar`]'s order, composites structurally, OIDs by
//! their (type, serial) pair.

use crate::multiset::MultiSet;
use crate::oid::Oid;
use crate::scalar::Scalar;
use crate::{date::Date, error::TypeError};
use std::fmt;

/// The two null constants of Section 3.2.4 (after \[Gou88\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Null {
    /// "Does not exist": the value COMP returns for a false predicate;
    /// discarded whenever possible (e.g. on insertion into a multiset).
    Dne,
    /// "Unknown": the value COMP returns for an UNK predicate.
    Unk,
}

/// A tuple instance: an ordered sequence of named fields.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    fields: Vec<(String, Value)>,
}

impl Tuple {
    /// The empty tuple `()` — the paper explicitly allows the empty tuple
    /// type, whose domain is `{ () }`.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from `(name, value)` pairs, preserving order.
    pub fn from_fields<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Tuple {
            fields: fields.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// `TUP_EXTRACT`: a single field as a structure (operator, §3.2.2).
    pub fn extract(&self, name: &str) -> Result<&Value, TypeError> {
        self.get(name)
            .ok_or_else(|| TypeError::NoSuchField { field: name.into() })
    }

    /// `π`: keep only the named fields, in the order given (operator, §3.2.2
    /// — "performs its function on a single tuple").
    pub fn project(&self, names: &[String]) -> Result<Tuple, TypeError> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            out.push((n.clone(), self.extract(n)?.clone()));
        }
        Ok(Tuple { fields: out })
    }

    /// `TUP_CAT`: concatenate two tuples (operator, §3.2.2).  Later fields
    /// with a clashing name are suffixed `'` to keep names unique, matching
    /// the usual relational treatment of join outputs.
    pub fn cat(&self, other: &Tuple) -> Tuple {
        let mut out = self.fields.clone();
        for (n, v) in &other.fields {
            let mut name = n.clone();
            while out.iter().any(|(m, _)| m == &name) {
                name.push('\'');
            }
            out.push((name, v.clone()));
        }
        Tuple { fields: out }
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Field names in order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Consume into the raw field vector.
    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }
}

/// An instance of some schema: the universal value type of the algebra.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A "val" node instance.
    Scalar(Scalar),
    /// A "tup" node instance.
    Tuple(Tuple),
    /// A "set" node instance (multiset).
    Set(MultiSet),
    /// An "arr" node instance (variable-length; fixed length is enforced by
    /// domain checking, not by the representation).
    Array(Vec<Value>),
    /// A "ref" node instance: an OID.
    Ref(Oid),
    /// A null constant (`dne`/`unk`).
    Null(Null),
}

impl Value {
    // ------ constructors ------

    /// `int4` scalar.
    pub fn int(i: i32) -> Value {
        Value::Scalar(Scalar::Int4(i))
    }
    /// `float4` scalar.
    pub fn float(x: f64) -> Value {
        Value::Scalar(Scalar::Float4(x))
    }
    /// `char[]` scalar.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Scalar(Scalar::Char(s.into()))
    }
    /// Boolean scalar.
    pub fn bool(b: bool) -> Value {
        Value::Scalar(Scalar::Bool(b))
    }
    /// `Date` scalar.
    pub fn date(d: Date) -> Value {
        Value::Scalar(Scalar::Date(d))
    }
    /// The `dne` null.
    pub fn dne() -> Value {
        Value::Null(Null::Dne)
    }
    /// The `unk` null.
    pub fn unk() -> Value {
        Value::Null(Null::Unk)
    }
    /// Tuple from `(name, value)` pairs.
    pub fn tuple<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Tuple(Tuple::from_fields(fields))
    }
    /// The 2-field tuple `(fst, snd)` produced by the Cartesian product.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::tuple([("fst", a), ("snd", b)])
    }
    /// Multiset from occurrences.
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }
    /// Array from elements in order.
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Array(items.into_iter().collect())
    }

    // ------ accessors ------

    /// `true` iff this is the `dne` null.
    pub fn is_dne(&self) -> bool {
        matches!(self, Value::Null(Null::Dne))
    }
    /// `true` iff this is the `unk` null.
    pub fn is_unk(&self) -> bool {
        matches!(self, Value::Null(Null::Unk))
    }
    /// `true` iff this is either null constant.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// View as a multiset.
    pub fn as_set(&self) -> Option<&MultiSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }
    /// View as a tuple.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }
    /// View as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// View as an OID.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }
    /// View as an `int4`.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Scalar(Scalar::Int4(i)) => Some(*i),
            _ => None,
        }
    }
    /// View as a float (also accepts `int4`, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Scalar(Scalar::Float4(x)) => Some(*x),
            Value::Scalar(Scalar::Int4(i)) => Some(f64::from(*i)),
            _ => None,
        }
    }
    /// View as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Scalar(Scalar::Char(s)) => Some(s),
            _ => None,
        }
    }
    /// View as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Scalar(Scalar::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Short description of the value's shape, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Tuple(_) => "tuple",
            Value::Set(_) => "multiset",
            Value::Array(_) => "array",
            Value::Ref(_) => "ref",
            Value::Null(Null::Dne) => "dne",
            Value::Null(Null::Unk) => "unk",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(s) => write!(f, "{s}"),
            Value::Tuple(t) => {
                f.write_str("(")?;
                for (i, (n, v)) in t.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                f.write_str(")")
            }
            Value::Set(s) => write!(f, "{s}"),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Ref(o) => write!(f, "{o}"),
            Value::Null(Null::Dne) => f.write_str("dne"),
            Value::Null(Null::Unk) => f.write_str("unk"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_extract_and_project() {
        let t = Tuple::from_fields([("a", Value::int(1)), ("b", Value::int(2))]);
        assert_eq!(t.extract("b").unwrap(), &Value::int(2));
        assert!(t.extract("z").is_err());
        let p = t.project(&["b".to_string()]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.extract("b").unwrap(), &Value::int(2));
    }

    #[test]
    fn project_preserves_requested_order() {
        let t = Tuple::from_fields([("a", Value::int(1)), ("b", Value::int(2))]);
        let p = t.project(&["b".to_string(), "a".to_string()]).unwrap();
        let names: Vec<_> = p.field_names().collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn tup_cat_renames_clashes() {
        let t1 = Tuple::from_fields([("x", Value::int(1))]);
        let t2 = Tuple::from_fields([("x", Value::int(2))]);
        let c = t1.cat(&t2);
        assert_eq!(c.extract("x").unwrap(), &Value::int(1));
        assert_eq!(c.extract("x'").unwrap(), &Value::int(2));
    }

    #[test]
    fn empty_tuple_is_a_value() {
        // dom of the 0-ary tuple type is { () }.
        let t = Value::Tuple(Tuple::empty());
        assert_eq!(t, Value::tuple(Vec::<(String, Value)>::new()));
    }

    #[test]
    fn paper_figure2_instance_builds() {
        // { (26, [1, 2], x), (25, [], y) } — the instance below Figure 2.
        use crate::oid::{Oid, TypeId};
        let x = Oid {
            minted: TypeId(0),
            serial: 0,
        };
        let y = Oid {
            minted: TypeId(0),
            serial: 1,
        };
        let inst = Value::set([
            Value::tuple([
                ("f1", Value::int(26)),
                ("f2", Value::array([Value::int(1), Value::int(2)])),
                ("f3", Value::Ref(x)),
            ]),
            Value::tuple([
                ("f1", Value::int(25)),
                ("f2", Value::array([])),
                ("f3", Value::Ref(y)),
            ]),
        ]);
        assert_eq!(inst.as_set().unwrap().len(), 2);
    }

    #[test]
    fn value_order_is_total_over_mixed_shapes() {
        let mut vs = [
            Value::set([Value::int(1)]),
            Value::int(0),
            Value::array([]),
            Value::tuple([("a", Value::int(1))]),
            Value::dne(),
        ];
        vs.sort(); // must not panic; total order
        assert_eq!(vs.len(), 5);
    }

    #[test]
    fn display_forms() {
        let v = Value::tuple([("a", Value::int(1)), ("b", Value::set([Value::int(2)]))]);
        assert_eq!(v.to_string(), "(a: 1, b: { 2 })");
        assert_eq!(
            Value::array([Value::int(1), Value::int(2)]).to_string(),
            "[1, 2]"
        );
    }
}
