//! Named types, the inheritance hierarchy, and attribute resolution.
//!
//! EXTRA supports "an inheritance hierarchy for top-level tuple types" with
//! multiple inheritance; "all attributes and methods of Person are also
//! attributes and methods of Student and Employee", and "any inherited
//! attribute or method can be overridden with a new type specification"
//! (Section 2.1).  This module stores type definitions, checks the
//! hierarchy is acyclic, and computes each type's *full body* (own plus
//! inherited attributes).

use crate::error::{Result, TypeError};
use crate::oid::TypeId;
use crate::schema::SchemaType;
use std::collections::{HashMap, HashSet};

/// A registered named type.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Identifier.
    pub id: TypeId,
    /// Unique name.
    pub name: String,
    /// The *declared* body (own attributes only, for tuple types).
    pub body: SchemaType,
    /// Direct supertypes, in declaration order.
    pub supertypes: Vec<TypeId>,
}

/// The catalogue of named types and the `inherits` DAG.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    defs: Vec<TypeDef>,
    by_name: HashMap<String, TypeId>,
}

impl TypeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a type with no supertypes.
    pub fn define(&mut self, name: &str, body: SchemaType) -> Result<TypeId> {
        self.define_with_supertypes(name, body, &[])
    }

    /// Define a type that `inherits` the named supertypes.
    ///
    /// Supertypes must already be defined (forward references are not
    /// allowed by EXTRA's DDL either), which makes the hierarchy acyclic by
    /// construction; the check is still performed for registries built
    /// programmatically.
    pub fn define_with_supertypes(
        &mut self,
        name: &str,
        body: SchemaType,
        supertypes: &[&str],
    ) -> Result<TypeId> {
        if self.by_name.contains_key(name) {
            return Err(TypeError::DuplicateType(name.to_string()));
        }
        let sups: Vec<TypeId> = supertypes
            .iter()
            .map(|s| self.lookup(s))
            .collect::<Result<_>>()?;
        if !supertypes.is_empty() && !matches!(body, SchemaType::Tup(_)) {
            return Err(TypeError::Structure(format!(
                "type `{name}` inherits but is not a tuple type"
            )));
        }
        let id = TypeId(self.defs.len() as u32);
        self.defs.push(TypeDef {
            id,
            name: name.to_string(),
            body,
            supertypes: sups,
        });
        self.by_name.insert(name.to_string(), id);
        // Defensive cycle check (cannot trigger through the public DDL path).
        if self.ancestors(id).contains(&id) {
            self.defs.pop();
            self.by_name.remove(name);
            return Err(TypeError::InheritanceCycle(name.to_string()));
        }
        // Attribute conflict check: computing the full body surfaces
        // conflicts between unrelated supertypes now rather than at use.
        if let Err(e) = self.full_body(id) {
            self.defs.pop();
            self.by_name.remove(name);
            return Err(e);
        }
        Ok(id)
    }

    /// Resolve a name to its id.
    pub fn lookup(&self, name: &str) -> Result<TypeId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TypeError::UnknownType(name.to_string()))
    }

    /// Definition by id.
    pub fn def(&self, id: TypeId) -> &TypeDef {
        &self.defs[id.0 as usize]
    }

    /// Name by id.
    pub fn name_of(&self, id: TypeId) -> &str {
        &self.def(id).name
    }

    /// All defined type ids.
    pub fn all_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.defs.len() as u32).map(TypeId)
    }

    /// Number of defined types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` if no types are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    // ----- hierarchy queries (the `→` and `→*` relations of §3.1) -----

    /// Direct supertypes.
    pub fn direct_supertypes(&self, id: TypeId) -> &[TypeId] {
        &self.def(id).supertypes
    }

    /// All strict ancestors (transitive closure of `inherits`).
    pub fn ancestors(&self, id: TypeId) -> Vec<TypeId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<TypeId> = self.def(id).supertypes.clone();
        while let Some(t) = stack.pop() {
            if seen.insert(t) {
                out.push(t);
                stack.extend(self.def(t).supertypes.iter().copied());
            }
        }
        out
    }

    /// All strict descendants (types that inherit from `id`, transitively).
    pub fn descendants(&self, id: TypeId) -> Vec<TypeId> {
        self.all_ids()
            .filter(|&t| t != id && self.is_subtype_or_self(t, id))
            .collect()
    }

    /// `true` iff `sub` is `sup` or inherits from it (`sup →* sub`):
    /// substitutability.
    pub fn is_subtype_or_self(&self, sub: TypeId, sup: TypeId) -> bool {
        if sub == sup {
            return true;
        }
        self.ancestors(sub).contains(&sup)
    }

    /// OID-domain **rule 4** helper: do `a` and `b` share any descendant
    /// (including themselves)?  If not, `Odom(a) ∩ Odom(b) = ∅`.
    pub fn shares_descendant(&self, a: TypeId, b: TypeId) -> bool {
        self.all_ids()
            .any(|t| self.is_subtype_or_self(t, a) && self.is_subtype_or_self(t, b))
    }

    // ----- attribute resolution -----

    /// The *full* body of a type: inherited attributes (left-to-right,
    /// depth-first over the supertype list) followed by own attributes,
    /// with own declarations overriding inherited ones of the same name.
    ///
    /// A name inherited from two unrelated supertypes with *different*
    /// types and no local override is an [`TypeError::AttributeConflict`];
    /// identical types merge silently (the common diamond case, e.g. two
    /// paths to `Person`).
    ///
    /// Non-tuple types are returned as declared.
    pub fn full_body(&self, id: TypeId) -> Result<SchemaType> {
        let def = self.def(id);
        let SchemaType::Tup(own) = &def.body else {
            return Ok(def.body.clone());
        };
        let mut fields: Vec<(String, SchemaType)> = Vec::new();
        for &sup in &def.supertypes {
            let SchemaType::Tup(sup_fields) = self.full_body(sup)? else {
                return Err(TypeError::Structure(format!(
                    "supertype `{}` of `{}` is not a tuple type",
                    self.name_of(sup),
                    def.name
                )));
            };
            for (n, t) in sup_fields {
                match fields.iter().find(|(m, _)| *m == n) {
                    None => fields.push((n, t)),
                    Some((_, existing)) if *existing == t => {} // diamond merge
                    Some(_) => {
                        // Conflict unless the subtype overrides locally.
                        if !own.iter().any(|(m, _)| *m == n) {
                            return Err(TypeError::AttributeConflict {
                                ty: def.name.clone(),
                                attr: n,
                            });
                        }
                    }
                }
            }
        }
        for (n, t) in own {
            if let Some(slot) = fields.iter_mut().find(|(m, _)| m == n) {
                slot.1 = t.clone(); // override inherited attribute
            } else {
                fields.push((n.clone(), t.clone()));
            }
        }
        Ok(SchemaType::Tup(fields))
    }

    /// Resolve `Named(n)` one level: the full body of the named type.
    pub fn resolve_named(&self, ty: &SchemaType) -> Result<SchemaType> {
        match ty {
            SchemaType::Named(n) => self.full_body(self.lookup(n)?),
            other => Ok(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_body() -> SchemaType {
        SchemaType::tuple([("ssnum", SchemaType::int4()), ("name", SchemaType::chars())])
    }

    fn reg_with_person() -> (TypeRegistry, TypeId) {
        let mut r = TypeRegistry::new();
        let p = r.define("Person", person_body()).unwrap();
        (r, p)
    }

    #[test]
    fn single_inheritance_merges_attributes() {
        let (mut r, p) = reg_with_person();
        let e = r
            .define_with_supertypes(
                "Employee",
                SchemaType::tuple([("salary", SchemaType::int4())]),
                &["Person"],
            )
            .unwrap();
        let SchemaType::Tup(fields) = r.full_body(e).unwrap() else {
            panic!()
        };
        let names: Vec<_> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ssnum", "name", "salary"]);
        assert!(r.is_subtype_or_self(e, p));
        assert!(!r.is_subtype_or_self(p, e));
    }

    #[test]
    fn override_changes_attribute_type() {
        // "Any inherited attribute … can be overridden with a new type
        // specification" (Section 2.1).
        let (mut r, _) = reg_with_person();
        let s = r
            .define_with_supertypes(
                "Student",
                SchemaType::tuple([("name", SchemaType::int4())]), // override!
                &["Person"],
            )
            .unwrap();
        let SchemaType::Tup(fields) = r.full_body(s).unwrap() else {
            panic!()
        };
        let name_ty = &fields.iter().find(|(n, _)| n == "name").unwrap().1;
        assert_eq!(*name_ty, SchemaType::int4());
        // Position of the inherited attribute is preserved.
        assert_eq!(fields[1].0, "name");
    }

    #[test]
    fn diamond_inheritance_merges_silently() {
        let (mut r, _) = reg_with_person();
        r.define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
        r.define_with_supertypes(
            "Student",
            SchemaType::tuple([("gpa", SchemaType::float4())]),
            &["Person"],
        )
        .unwrap();
        // TA inherits Person twice (via Employee and Student): fine.
        let ta = r
            .define_with_supertypes(
                "TA",
                SchemaType::tuple::<_, String>([]),
                &["Employee", "Student"],
            )
            .unwrap();
        let SchemaType::Tup(fields) = r.full_body(ta).unwrap() else {
            panic!()
        };
        let names: Vec<_> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ssnum", "name", "salary", "gpa"]);
    }

    #[test]
    fn conflicting_unrelated_attributes_require_override() {
        let mut r = TypeRegistry::new();
        r.define("A", SchemaType::tuple([("x", SchemaType::int4())]))
            .unwrap();
        r.define("B", SchemaType::tuple([("x", SchemaType::chars())]))
            .unwrap();
        let err = r
            .define_with_supertypes("C", SchemaType::tuple::<_, String>([]), &["A", "B"])
            .unwrap_err();
        assert!(matches!(err, TypeError::AttributeConflict { .. }));
        // With a local override it is accepted.
        r.define_with_supertypes(
            "C",
            SchemaType::tuple([("x", SchemaType::float4())]),
            &["A", "B"],
        )
        .unwrap();
    }

    #[test]
    fn duplicate_definition_rejected() {
        let (mut r, _) = reg_with_person();
        assert!(matches!(
            r.define("Person", person_body()),
            Err(TypeError::DuplicateType(_))
        ));
    }

    #[test]
    fn unknown_supertype_rejected() {
        let mut r = TypeRegistry::new();
        assert!(matches!(
            r.define_with_supertypes("X", SchemaType::tuple::<_, String>([]), &["Nope"]),
            Err(TypeError::UnknownType(_))
        ));
    }

    #[test]
    fn non_tuple_cannot_inherit() {
        let (mut r, _) = reg_with_person();
        assert!(r
            .define_with_supertypes("Weird", SchemaType::int4(), &["Person"])
            .is_err());
    }

    #[test]
    fn descendants_and_shared_descendants() {
        let (mut r, p) = reg_with_person();
        let e = r
            .define_with_supertypes(
                "Employee",
                SchemaType::tuple([("salary", SchemaType::int4())]),
                &["Person"],
            )
            .unwrap();
        let s = r
            .define_with_supertypes(
                "Student",
                SchemaType::tuple([("gpa", SchemaType::float4())]),
                &["Person"],
            )
            .unwrap();
        let d: HashSet<_> = r.descendants(p).into_iter().collect();
        assert_eq!(d, HashSet::from([e, s]));
        // Employee and Student share no descendant here…
        assert!(!r.shares_descendant(e, s));
        // …until a TA type inherits from both (rule 5 scenario).
        let ta = r
            .define_with_supertypes(
                "TA",
                SchemaType::tuple::<_, String>([]),
                &["Employee", "Student"],
            )
            .unwrap();
        assert!(r.shares_descendant(e, s));
        assert!(r.is_subtype_or_self(ta, e) && r.is_subtype_or_self(ta, s));
    }

    #[test]
    fn ancestors_are_transitive() {
        let (mut r, p) = reg_with_person();
        let e = r
            .define_with_supertypes(
                "Employee",
                SchemaType::tuple([("salary", SchemaType::int4())]),
                &["Person"],
            )
            .unwrap();
        let m = r
            .define_with_supertypes("Manager", SchemaType::tuple::<_, String>([]), &["Employee"])
            .unwrap();
        let a: HashSet<_> = r.ancestors(m).into_iter().collect();
        assert_eq!(a, HashSet::from([e, p]));
    }
}
