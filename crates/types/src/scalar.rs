//! Scalar ("val") values and their types.
//!
//! Section 3.1 of the paper defines `D` as "the (infinite) domain of all
//! scalars (excluding OIDs)".  EXTRA's DDL (Figure 1) uses `int4`,
//! `float4`, `char[n]`/`char[]`, and `Date`; we add `bool` for predicate
//! results used internally and by user data.
//!
//! Scalars are **totally ordered** so that multisets can be represented as
//! sorted count maps and so that the algebra's single, value-based notion of
//! equality (Section 3.2.4) is well defined.  Floats are ordered by
//! `total_cmp`, which makes `NaN` equal to itself — a deliberate choice so
//! that duplicate elimination and grouping are total functions.

use crate::date::Date;
use std::cmp::Ordering;
use std::fmt;

/// The type of a scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 32-bit signed integer (`int4`).
    Int4,
    /// Floating point (`float4` in EXTRA; stored as f64 here).
    Float4,
    /// Character string (`char[]` / `char[n]`; length bounds are advisory).
    Char,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Int4 => "int4",
            ScalarType::Float4 => "float4",
            ScalarType::Char => "char[]",
            ScalarType::Bool => "bool",
            ScalarType::Date => "Date",
        };
        f.write_str(s)
    }
}

/// A scalar value: an element of the paper's domain `D`.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// `int4` value.
    Int4(i32),
    /// `float4` value (f64 storage).
    Float4(f64),
    /// `char[]` value.
    Char(String),
    /// Boolean value.
    Bool(bool),
    /// `Date` value.
    Date(Date),
}

impl Scalar {
    /// The scalar's type.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::Int4(_) => ScalarType::Int4,
            Scalar::Float4(_) => ScalarType::Float4,
            Scalar::Char(_) => ScalarType::Char,
            Scalar::Bool(_) => ScalarType::Bool,
            Scalar::Date(_) => ScalarType::Date,
        }
    }

    /// Rank used to order scalars of different types deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Scalar::Bool(_) => 0,
            Scalar::Int4(_) => 1,
            Scalar::Float4(_) => 2,
            Scalar::Char(_) => 3,
            Scalar::Date(_) => 4,
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scalar {}

impl PartialOrd for Scalar {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scalar {
    fn cmp(&self, other: &Self) -> Ordering {
        use Scalar::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int4(a), Int4(b)) => a.cmp(b),
            (Float4(a), Float4(b)) => a.total_cmp(b),
            (Char(a), Char(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Cross-type comparison: numeric Int4/Float4 compare by value so
            // that EXCESS's arithmetic-friendly equality behaves naturally;
            // all other cross-type pairs order by type rank.
            (Int4(a), Float4(b)) => (f64::from(*a)).total_cmp(b),
            (Float4(a), Int4(b)) => a.total_cmp(&f64::from(*b)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: numeric values hash through their f64
        // bits after normalisation; -0.0 is normalised to +0.0 so that
        // total_cmp-equal values... Note: total_cmp distinguishes -0.0 from
        // 0.0, so no normalisation is applied; Int4(k) must hash like
        // Float4(k as f64) because they compare equal.
        match self {
            Scalar::Bool(b) => (0u8, b).hash(state),
            Scalar::Int4(i) => (1u8, f64::from(*i).to_bits()).hash(state),
            Scalar::Float4(x) => (1u8, x.to_bits()).hash(state),
            Scalar::Char(s) => (3u8, s).hash(state),
            Scalar::Date(d) => (4u8, d).hash(state),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int4(i) => write!(f, "{i}"),
            Scalar::Float4(x) => write!(f, "{x:?}"),
            Scalar::Char(s) => write!(f, "{s:?}"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_handles_nan() {
        let nan = Scalar::Float4(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(nan.cmp(&nan.clone()), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Scalar::Int4(5), Scalar::Float4(5.0));
        assert!(Scalar::Int4(5) < Scalar::Float4(5.5));
        assert!(Scalar::Float4(4.5) < Scalar::Int4(5));
    }

    #[test]
    fn distinct_types_are_ordered_consistently() {
        let b = Scalar::Bool(true);
        let c = Scalar::Char("x".into());
        assert!(b < c);
        assert_ne!(b, c);
    }

    #[test]
    fn negative_zero_distinguished_by_total_cmp() {
        // total_cmp: -0.0 < +0.0; we accept this (documented) refinement of
        // IEEE equality because it keeps grouping total and deterministic.
        assert!(Scalar::Float4(-0.0) < Scalar::Float4(0.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scalar::Int4(7).to_string(), "7");
        assert_eq!(Scalar::Char("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Scalar::Bool(false).to_string(), "false");
    }
}
