//! A minimal proleptic-Gregorian calendar date.
//!
//! EXTRA's example schema (Figure 1) gives `Person` a `birthday: Date`
//! attribute, and the paper's second query example uses an `age` virtual
//! field "defined by a function that computes the age of a Person from the
//! current date and their birthday".  This module supplies exactly that much
//! calendar arithmetic; it is not a general date/time library.

use std::fmt;

/// A calendar date (year, month, day), totally ordered chronologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Astronomical year (1 BCE == 0); realistic databases use 1900..2100.
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

impl Date {
    /// Build a date, validating month/day ranges.
    ///
    /// Returns `None` for out-of-range months or days (leap years are
    /// honoured for February).
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Age in whole years at `today`, as a birthday-based computation:
    /// the value EXTRA's `age` virtual field returns.
    ///
    /// If `today` precedes `self` the age is negative (the paper never
    /// exercises this, but the arithmetic is total).
    pub fn age_at(&self, today: Date) -> i32 {
        let mut years = today.year - self.year;
        if (today.month, today.day) < (self.month, self.day) {
            years -= 1;
        }
        years
    }

    /// Days since 0000-03-01 (a standard civil-date encoding); used for
    /// stable ordering and arithmetic in tests.
    pub fn to_ordinal(&self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Date::new(2020, 0, 1).is_none());
        assert!(Date::new(2020, 13, 1).is_none());
        assert!(Date::new(2020, 2, 30).is_none());
        assert!(Date::new(2021, 2, 29).is_none());
        assert!(Date::new(2020, 2, 29).is_some()); // leap year
        assert!(Date::new(2000, 2, 29).is_some()); // 400-year leap
        assert!(Date::new(1900, 2, 29).is_none()); // 100-year non-leap
    }

    #[test]
    fn age_counts_whole_years() {
        let b = Date::new(1960, 6, 15).unwrap();
        assert_eq!(b.age_at(Date::new(1990, 6, 14).unwrap()), 29);
        assert_eq!(b.age_at(Date::new(1990, 6, 15).unwrap()), 30);
        assert_eq!(b.age_at(Date::new(1990, 6, 16).unwrap()), 30);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(1989, 12, 31).unwrap();
        let b = Date::new(1990, 1, 1).unwrap();
        assert!(a < b);
        assert!(a.to_ordinal() + 1 == b.to_ordinal());
    }

    #[test]
    fn display_is_iso() {
        assert_eq!(Date::new(1990, 12, 1).unwrap().to_string(), "1990-12-01");
    }
}
