//! Columnar extent chunks: flat typed columns, dictionary-encoded OID
//! refs, and validity bitmaps for the partial nulls `dne`/`unk`.
//!
//! A [`Chunk`] is a column-major encoding of a *flat* multiset of
//! tuples — the shape every base extent in the figure-1 database has.
//! Each distinct tuple becomes one **row**; the multiset cardinality of
//! that tuple is kept in a parallel `weights` vector so per-occurrence
//! accounting (and decode) stays exact.  Rows are stored in the
//! multiset's canonical (ascending `Value`) order, so `encode` followed
//! by [`Chunk::decode`] is the identity.
//!
//! Layout per attribute (one [`Column`]):
//!
//! ```text
//!   Chunk { len = 4, weights = [1, 1, 2, 1] }
//!     "sname" Column { data: Str ["amy", "bob", "cal", "dot"], validity: None }
//!     "sdept" Column { data: Int [3, 1, 0*, 3],  validity: dne = 0010, unk = 0000 }
//!     "sadv"  Column { data: Ref { dict: [#Ada, #Turing], codes: [0, 1, 1, 0] } }
//!                                    (* = placeholder; the bitmap wins)
//! ```
//!
//! * scalar attributes whose non-null cells all share one scalar kind
//!   become flat vectors ([`ColumnData::Int`], [`ColumnData::Str`], …);
//! * `ref` attributes become a dictionary of distinct [`Oid`]s plus a
//!   `u32` code per row ([`ColumnData::Ref`]);
//! * anything else (nested tuples/sets/arrays, mixed scalar kinds)
//!   falls back to a boxed row of values ([`ColumnData::Other`]);
//! * `dne`/`unk` cells set the corresponding bit in the column's
//!   [`Validity`] pair of bitmaps and leave a placeholder in the data
//!   vector.  A column proven (or measured) null-free carries
//!   `validity: None` — no bitmap is allocated at all, which is the
//!   hook the `analysis::Props` nullability facts drive.
//!
//! Encoding is total-or-nothing: [`Chunk::encode`] returns `None`
//! unless **every** element is a tuple and all tuples share one
//! identical ordered field-name sequence (the *chunk-safety* shape).
//! Callers treat `None` as "keep the row representation".

use crate::date::Date;
use crate::multiset::MultiSet;
use crate::oid::Oid;
use crate::value::{Tuple, Value};
use std::collections::BTreeSet;

/// A fixed-length bitset, one bit per chunk row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap covering `len` rows.
    pub fn zeroed(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// The sub-bitmap covering rows `lo..hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> Bitmap {
        assert!(lo <= hi && hi <= self.len);
        let mut out = Bitmap::zeroed(hi - lo);
        for i in lo..hi {
            if self.get(i) {
                out.set(i - lo);
            }
        }
        out
    }
}

/// Per-column null tracking: one bitmap per partial-null kind.
///
/// A row has at most one of the two bits set; a row with neither bit is
/// a present, non-null cell.  Kleene semantics downstream: a `dne` cell
/// makes comparisons definitely false, an `unk` cell makes them
/// unknown (see `excess-core`'s predicate module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validity {
    /// Rows whose cell is `dne` (does-not-exist).
    pub dne: Bitmap,
    /// Rows whose cell is `unk` (exists, value unknown).
    pub unk: Bitmap,
}

impl Validity {
    /// An all-valid validity pair for `len` rows.
    pub fn all_valid(len: usize) -> Self {
        Validity {
            dne: Bitmap::zeroed(len),
            unk: Bitmap::zeroed(len),
        }
    }

    /// True when no row is null in either way.
    pub fn all_rows_valid(&self) -> bool {
        self.dne.none_set() && self.unk.none_set()
    }

    /// The validity pair restricted to rows `lo..hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> Validity {
        Validity {
            dne: self.dne.slice(lo, hi),
            unk: self.unk.slice(lo, hi),
        }
    }
}

/// The physical payload of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Flat `int4` vector.
    Int(Vec<i32>),
    /// Flat `float4` vector.
    Float(Vec<f64>),
    /// Flat string vector.
    Str(Vec<String>),
    /// Flat boolean vector.
    Bool(Vec<bool>),
    /// Flat date vector.
    Date(Vec<Date>),
    /// Dictionary-encoded OID references: `codes[i]` indexes `dict`.
    Ref {
        /// Distinct OIDs, in first-appearance order.
        dict: Vec<Oid>,
        /// One dictionary code per row.
        codes: Vec<u32>,
    },
    /// Fallback: one boxed [`Value`] per row (nested or mixed-kind
    /// columns).  Null cells store the null value itself here, so the
    /// data vector alone round-trips even without the bitmaps.
    Other(Vec<Value>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Ref { codes, .. } => codes.len(),
            ColumnData::Other(v) => v.len(),
        }
    }

    /// True when the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short name for the physical encoding, for journals and docs.
    pub fn kind(&self) -> &'static str {
        match self {
            ColumnData::Int(_) => "int",
            ColumnData::Float(_) => "float",
            ColumnData::Str(_) => "str",
            ColumnData::Bool(_) => "bool",
            ColumnData::Date(_) => "date",
            ColumnData::Ref { .. } => "ref",
            ColumnData::Other(_) => "other",
        }
    }

    fn slice(&self, lo: usize, hi: usize) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(v[lo..hi].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[lo..hi].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[lo..hi].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[lo..hi].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[lo..hi].to_vec()),
            ColumnData::Ref { dict, codes } => ColumnData::Ref {
                dict: dict.clone(),
                codes: codes[lo..hi].to_vec(),
            },
            ColumnData::Other(v) => ColumnData::Other(v[lo..hi].to_vec()),
        }
    }
}

/// One attribute of a chunk: typed data plus optional null bitmaps.
///
/// `validity: None` asserts the column is null-free — either measured
/// during encoding or proven by the plan property analysis
/// (`analysis::Props` with `dne = Never` and `unk = Never`), in which
/// case the bitmaps are never allocated.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed payload.
    pub data: ColumnData,
    /// Null bitmaps, or `None` for a proven null-free column.
    pub validity: Option<Validity>,
}

impl Column {
    /// True when row `i` is a `dne` cell.
    pub fn is_dne(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| v.dne.get(i))
    }

    /// True when row `i` is an `unk` cell.
    pub fn is_unk(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| v.unk.get(i))
    }

    /// True when row `i` is neither `dne` nor `unk`.
    pub fn is_valid(&self, i: usize) -> bool {
        !self.is_dne(i) && !self.is_unk(i)
    }

    /// True when no row of the column is null (cheap: bitmap scan or
    /// the `validity: None` fast path).
    pub fn null_free(&self) -> bool {
        match &self.validity {
            None => true,
            Some(v) => v.all_rows_valid(),
        }
    }

    /// Reconstruct the cell at row `i` as a [`Value`] (clones strings
    /// and boxed values; the slow-but-total path).
    pub fn value_at(&self, i: usize) -> Value {
        if self.is_dne(i) {
            return Value::dne();
        }
        if self.is_unk(i) {
            return Value::unk();
        }
        match &self.data {
            ColumnData::Int(v) => Value::int(v[i]),
            ColumnData::Float(v) => Value::float(v[i]),
            ColumnData::Str(v) => Value::str(v[i].clone()),
            ColumnData::Bool(v) => Value::bool(v[i]),
            ColumnData::Date(v) => Value::date(v[i]),
            ColumnData::Ref { dict, codes } => Value::Ref(dict[codes[i] as usize]),
            ColumnData::Other(v) => v[i].clone(),
        }
    }

    fn slice(&self, lo: usize, hi: usize) -> Column {
        Column {
            data: self.data.slice(lo, hi),
            validity: self.validity.as_ref().map(|v| v.slice(lo, hi)),
        }
    }
}

/// A column-major encoding of a flat multiset of tuples.
///
/// Rows are the multiset's *distinct* elements in canonical order;
/// `weights[i]` is the multiset cardinality of row `i`, so
/// `Σ weights = MultiSet::len()` and occurrence-level counter
/// accounting can stay exact in batched kernels.
///
/// ```
/// use excess_types::column::Chunk;
/// use excess_types::{MultiSet, Value};
/// use std::collections::BTreeSet;
///
/// let mut s = MultiSet::new();
/// s.insert(Value::tuple([("a", Value::int(1)), ("b", Value::str("x"))]));
/// s.insert_n(Value::tuple([("a", Value::int(2)), ("b", Value::dne())]), 3);
///
/// let chunk = Chunk::encode(&s, &BTreeSet::new()).expect("flat tuples are chunkable");
/// assert_eq!(chunk.len(), 2);               // two distinct rows
/// assert_eq!(chunk.total_occurrences(), 4); // weights 1 + 3
/// assert!(chunk.col("a").unwrap().null_free());
/// assert!(!chunk.col("b").unwrap().null_free());
/// assert_eq!(chunk.decode(), s);            // round-trip is the identity
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    len: usize,
    cols: Vec<(String, Column)>,
    weights: Vec<u64>,
}

impl Chunk {
    /// Number of rows (distinct tuples).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total occurrence count: the sum of all row weights
    /// (equals `MultiSet::len()` of the decoded set).
    pub fn total_occurrences(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The columns, in tuple field order.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.cols
    }

    /// Per-row multiset cardinalities.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Look up a column by attribute name.
    pub fn col(&self, name: &str) -> Option<&Column> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Index of a column by attribute name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }

    /// Encode a multiset into a chunk, or `None` when the set is not
    /// chunk-safe: every element must be a tuple, and all tuples must
    /// share one identical ordered field-name sequence.
    ///
    /// `non_null` names attributes *proven* null-free (by
    /// `analysis::Props`); their columns take a fast path that skips
    /// bitmap allocation entirely.  The hint is an optimisation, never
    /// a soundness obligation: if a hinted column turns out to hold a
    /// null or a mixed kind after all, encoding falls back to the
    /// general (bitmap-tracking or boxed) representation for that
    /// column, so a wrong hint can only cost speed.
    pub fn encode(set: &MultiSet, non_null: &BTreeSet<String>) -> Option<Chunk> {
        let rows: Vec<(&Tuple, u64)> = set
            .iter_counted()
            .map(|(v, c)| match v {
                Value::Tuple(t) => Some((t, c)),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;

        if rows.is_empty() {
            return Some(Chunk::default());
        }

        let names: Vec<&str> = rows[0].0.field_names().collect();
        for (t, _) in &rows {
            if !t.field_names().eq(names.iter().copied()) {
                return None; // ragged or re-ordered field sets
            }
        }

        let len = rows.len();
        let mut cols = Vec::with_capacity(names.len());
        for (fi, name) in names.iter().enumerate() {
            let cells: Vec<&Value> = rows
                .iter()
                .map(|(t, _)| t.iter().nth(fi).expect("arity checked above").1)
                .collect();
            cols.push((
                (*name).to_string(),
                encode_column(&cells, non_null.contains(*name)),
            ));
        }
        debug_assert!(cols.iter().all(|(_, c)| c.data.len() == len));

        Some(Chunk {
            len,
            cols,
            weights: rows.iter().map(|(_, c)| *c).collect(),
        })
    }

    /// Rebuild row `i` as a tuple value.
    pub fn row_value(&self, i: usize) -> Value {
        Value::Tuple(Tuple::from_fields(
            self.cols.iter().map(|(n, c)| (n.clone(), c.value_at(i))),
        ))
    }

    /// The row's fields as `(name, value)` pairs — the building block
    /// for concatenated join outputs.
    pub fn row_fields(&self, i: usize) -> Vec<(String, Value)> {
        self.cols
            .iter()
            .map(|(n, c)| (n.clone(), c.value_at(i)))
            .collect()
    }

    /// Decode back to the multiset the chunk was encoded from
    /// (the exact inverse of [`Chunk::encode`]).
    pub fn decode(&self) -> MultiSet {
        let mut out = MultiSet::new();
        for i in 0..self.len {
            out.insert_n(self.row_value(i), self.weights[i]);
        }
        out
    }

    /// The chunk restricted to rows `lo..hi` (for chunk-carrying
    /// parallel fragments; weights travel with the rows).
    pub fn slice(&self, lo: usize, hi: usize) -> Chunk {
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} of {}",
            self.len
        );
        Chunk {
            len: hi - lo,
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.slice(lo, hi)))
                .collect(),
            weights: self.weights[lo..hi].to_vec(),
        }
    }
}

/// Scalar-kind discriminant used while classifying a column.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellKind {
    Int,
    Float,
    Str,
    Bool,
    Date,
    Ref,
    Other,
}

fn cell_kind(v: &Value) -> Option<CellKind> {
    use crate::scalar::Scalar;
    match v {
        Value::Null(_) => None,
        Value::Scalar(Scalar::Int4(_)) => Some(CellKind::Int),
        Value::Scalar(Scalar::Float4(_)) => Some(CellKind::Float),
        Value::Scalar(Scalar::Char(_)) => Some(CellKind::Str),
        Value::Scalar(Scalar::Bool(_)) => Some(CellKind::Bool),
        Value::Scalar(Scalar::Date(_)) => Some(CellKind::Date),
        Value::Ref(_) => Some(CellKind::Ref),
        _ => Some(CellKind::Other),
    }
}

/// Encode one column from its cells.  `hinted_non_null` is the
/// `Props`-driven fast path: trust the proof, skip null scanning and
/// bitmap allocation — but verify cheaply per cell and demote to the
/// general path on any surprise.
fn encode_column(cells: &[&Value], hinted_non_null: bool) -> Column {
    if hinted_non_null {
        if let Some(col) = encode_column_nonnull(cells) {
            return col;
        }
    }

    // General path: one classification pass, then a typed build with
    // placeholders under null bits (or a boxed fallback).
    let mut validity = Validity::all_valid(cells.len());
    let mut any_null = false;
    let mut kind: Option<CellKind> = None;
    let mut uniform = true;
    for (i, v) in cells.iter().enumerate() {
        match v {
            Value::Null(crate::value::Null::Dne) => {
                validity.dne.set(i);
                any_null = true;
            }
            Value::Null(crate::value::Null::Unk) => {
                validity.unk.set(i);
                any_null = true;
            }
            _ => {
                let k = cell_kind(v).expect("non-null cell has a kind");
                match kind {
                    None => kind = Some(k),
                    Some(prev) if prev == k => {}
                    Some(_) => uniform = false,
                }
            }
        }
    }
    let validity = any_null.then_some(validity);

    let data = match kind {
        Some(k) if uniform && k != CellKind::Other => typed_data(cells, k),
        // All-null columns keep an `Other` payload (the nulls
        // themselves), as do mixed or nested ones.
        _ => ColumnData::Other(cells.iter().map(|v| (*v).clone()).collect()),
    };
    Column { data, validity }
}

/// The hinted fast path: all cells non-null and uniformly typed, or
/// `None` to fall back.
fn encode_column_nonnull(cells: &[&Value]) -> Option<Column> {
    let first = cell_kind(cells[0])?;
    if first == CellKind::Other {
        return None;
    }
    for v in cells {
        if cell_kind(v) != Some(first) {
            return None; // hint was wrong (null or mixed kind)
        }
    }
    Some(Column {
        data: typed_data(cells, first),
        validity: None,
    })
}

/// Build the typed vector for a uniform column, substituting a
/// placeholder under null cells (the validity bitmap masks them).
fn typed_data(cells: &[&Value], kind: CellKind) -> ColumnData {
    use crate::scalar::Scalar;
    match kind {
        CellKind::Int => ColumnData::Int(cells.iter().map(|v| v.as_int().unwrap_or(0)).collect()),
        CellKind::Float => {
            ColumnData::Float(cells.iter().map(|v| v.as_float().unwrap_or(0.0)).collect())
        }
        CellKind::Str => ColumnData::Str(
            cells
                .iter()
                .map(|v| v.as_str().unwrap_or("").to_string())
                .collect(),
        ),
        CellKind::Bool => {
            ColumnData::Bool(cells.iter().map(|v| v.as_bool().unwrap_or(false)).collect())
        }
        CellKind::Date => ColumnData::Date(
            cells
                .iter()
                .map(|v| match v {
                    Value::Scalar(Scalar::Date(d)) => *d,
                    _ => Date::new(1970, 1, 1).expect("placeholder date"),
                })
                .collect(),
        ),
        CellKind::Ref => {
            let mut dict: Vec<Oid> = Vec::new();
            let mut codes = Vec::with_capacity(cells.len());
            for v in cells {
                match v.as_ref_oid() {
                    Some(oid) => {
                        let code = dict.iter().position(|d| *d == oid).unwrap_or_else(|| {
                            dict.push(oid);
                            dict.len() - 1
                        });
                        codes.push(code as u32);
                    }
                    None => codes.push(0), // placeholder under a null bit
                }
            }
            ColumnData::Ref { dict, codes }
        }
        CellKind::Other => ColumnData::Other(cells.iter().map(|v| (*v).clone()).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::TypeId;

    fn student(name: &str, dept: Value) -> Value {
        Value::tuple([("sname", Value::str(name)), ("sdept", dept)])
    }

    #[test]
    fn round_trip_with_nulls_and_weights() {
        let mut s = MultiSet::new();
        s.insert(student("amy", Value::int(3)));
        s.insert_n(student("bob", Value::dne()), 2);
        s.insert(student("cal", Value::unk()));
        let c = Chunk::encode(&s, &BTreeSet::new()).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_occurrences(), 4);
        assert_eq!(c.decode(), s);
        let dept = c.col("sdept").unwrap();
        assert!(matches!(dept.data, ColumnData::Int(_)));
        assert!(!dept.null_free());
        assert!(c.col("sname").unwrap().null_free());
    }

    #[test]
    fn non_null_hint_skips_bitmaps_but_wrong_hint_is_safe() {
        let mut s = MultiSet::new();
        s.insert(student("amy", Value::int(3)));
        s.insert(student("bob", Value::dne()));
        let hints: BTreeSet<String> = ["sname".to_string(), "sdept".to_string()].into();
        let c = Chunk::encode(&s, &hints).unwrap();
        // Correct hint: no bitmap allocated at all.
        assert!(c.col("sname").unwrap().validity.is_none());
        // Wrong hint (sdept holds a dne): demoted, still round-trips.
        assert!(c.col("sdept").unwrap().validity.is_some());
        assert_eq!(c.decode(), s);
    }

    #[test]
    fn refs_dictionary_encode() {
        let a = Oid {
            minted: TypeId(7),
            serial: 1,
        };
        let b = Oid {
            minted: TypeId(7),
            serial: 2,
        };
        let mut s = MultiSet::new();
        for (n, o) in [("x", a), ("y", b), ("z", a)] {
            s.insert(Value::tuple([("n", Value::str(n)), ("adv", Value::Ref(o))]));
        }
        let c = Chunk::encode(&s, &BTreeSet::new()).unwrap();
        match &c.col("adv").unwrap().data {
            ColumnData::Ref { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes.len(), 3);
            }
            other => panic!("expected a ref dictionary, got {other:?}"),
        }
        assert_eq!(c.decode(), s);
    }

    #[test]
    fn rejects_non_tuples_and_ragged_fields() {
        let mut s = MultiSet::new();
        s.insert(Value::int(1));
        assert!(Chunk::encode(&s, &BTreeSet::new()).is_none());

        let mut r = MultiSet::new();
        r.insert(Value::tuple([("a", Value::int(1))]));
        r.insert(Value::tuple([("b", Value::int(2))]));
        assert!(Chunk::encode(&r, &BTreeSet::new()).is_none());
    }

    #[test]
    fn all_dne_column_and_empty_set() {
        let empty = MultiSet::new();
        let c = Chunk::encode(&empty, &BTreeSet::new()).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.decode(), empty);

        let mut s = MultiSet::new();
        s.insert(Value::tuple([("k", Value::int(1)), ("v", Value::dne())]));
        s.insert(Value::tuple([("k", Value::int(2)), ("v", Value::dne())]));
        let c = Chunk::encode(&s, &BTreeSet::new()).unwrap();
        let v = c.col("v").unwrap();
        assert!(matches!(v.data, ColumnData::Other(_)));
        assert!(v.is_dne(0) && v.is_dne(1));
        assert_eq!(c.decode(), s);
    }

    #[test]
    fn slices_preserve_rows_weights_and_validity() {
        let mut s = MultiSet::new();
        for i in 0..10 {
            let dept = if i % 3 == 0 {
                Value::dne()
            } else {
                Value::int(i)
            };
            s.insert_n(student(&format!("s{i:02}"), dept), (i as u64 % 2) + 1);
        }
        let c = Chunk::encode(&s, &BTreeSet::new()).unwrap();
        let (a, b) = (c.slice(0, 4), c.slice(4, c.len()));
        assert_eq!(a.len() + b.len(), c.len());
        assert_eq!(
            a.total_occurrences() + b.total_occurrences(),
            c.total_occurrences()
        );
        assert_eq!(a.decode().additive_union(b.decode()), c.decode());
    }
}
