//! The Figure 1 schema through the formal digraph machinery of Section
//! 3.1, plus the Figure 2 example structure end to end.

use excess_types::domain::{check_dom, check_dom_exact};
use excess_types::{
    NodeKind, ObjectStore, OidAllocator, SchemaGraph, SchemaType, TypeRegistry, Value,
};

fn university() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.define(
        "Person",
        SchemaType::tuple([
            ("ssnum", SchemaType::int4()),
            ("name", SchemaType::chars()),
            ("street", SchemaType::chars()),
            ("city", SchemaType::chars()),
            ("zip", SchemaType::int4()),
            ("birthday", SchemaType::date()),
        ]),
    )
    .unwrap();
    r.define(
        "Department",
        SchemaType::tuple([
            ("division", SchemaType::chars()),
            ("name", SchemaType::chars()),
            ("floor", SchemaType::int4()),
            (
                "employees",
                SchemaType::set(SchemaType::reference("Employee")),
            ),
        ]),
    )
    .unwrap();
    r.define_with_supertypes(
        "Employee",
        SchemaType::tuple([
            ("jobtitle", SchemaType::chars()),
            ("dept", SchemaType::reference("Department")),
            ("manager", SchemaType::reference("Employee")),
            (
                "sub_ords",
                SchemaType::set(SchemaType::reference("Employee")),
            ),
            ("salary", SchemaType::int4()),
            ("kids", SchemaType::set(SchemaType::named("Person"))),
        ]),
        &["Person"],
    )
    .unwrap();
    r.define_with_supertypes(
        "Student",
        SchemaType::tuple([
            ("gpa", SchemaType::float4()),
            ("dept", SchemaType::reference("Department")),
            ("advisor", SchemaType::reference("Employee")),
        ]),
        &["Person"],
    )
    .unwrap();
    r
}

#[test]
fn every_figure1_type_has_a_valid_schema_digraph() {
    let r = university();
    for id in r.all_ids() {
        let body = r.full_body(id).unwrap();
        let g = SchemaGraph::from_schema_type(r.name_of(id), &body);
        g.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", r.name_of(id)));
    }
    // Top-level object schemas too.
    for s in [
        SchemaType::set(SchemaType::reference("Employee")),
        SchemaType::fixed_array(SchemaType::reference("Employee"), 10),
    ] {
        SchemaGraph::from_schema_type("obj", &s).validate().unwrap();
    }
}

#[test]
fn employee_digraph_has_the_expected_shape() {
    let r = university();
    let body = r.full_body(r.lookup("Employee").unwrap()).unwrap();
    let g = SchemaGraph::from_schema_type("Employee", &body);
    // Root is the tuple node; 12 attributes (6 inherited + 6 own).
    assert_eq!(g.nodes[g.root].kind, NodeKind::Tup);
    let root_edges = g.edges.iter().filter(|e| e.from == g.root).count();
    assert_eq!(root_edges, 12);
    // Reference attributes appear as ref nodes with exactly one component.
    let refs = g.nodes.iter().filter(|n| n.kind == NodeKind::Ref).count();
    assert_eq!(refs, 3); // dept, manager, the sub_ords element (kids is by value)
}

#[test]
fn inherited_attributes_precede_own_attributes() {
    let r = university();
    let SchemaType::Tup(fields) = r.full_body(r.lookup("Student").unwrap()).unwrap() else {
        panic!()
    };
    let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        vec!["ssnum", "name", "street", "city", "zip", "birthday", "gpa", "dept", "advisor"]
    );
}

#[test]
fn figure2_instance_checks_against_its_schema() {
    // Figure 2: { (val, [val], ref) } with the instance
    // { (26, [1, 2], x), (25, [], y) }.
    let mut r = university();
    r.define("Scalar", SchemaType::int4()).unwrap();
    let scalar = r.lookup("Scalar").unwrap();
    let schema = SchemaType::set(SchemaType::tuple([
        ("f1", SchemaType::int4()),
        ("f2", SchemaType::array(SchemaType::int4())),
        ("f3", SchemaType::reference("Scalar")),
    ]));
    let mut alloc = OidAllocator::new();
    let (x, y) = (alloc.mint(scalar), alloc.mint(scalar));
    let inst = Value::set([
        Value::tuple([
            ("f1", Value::int(26)),
            ("f2", Value::array([Value::int(1), Value::int(2)])),
            ("f3", Value::Ref(x)),
        ]),
        Value::tuple([
            ("f1", Value::int(25)),
            ("f2", Value::array([])),
            ("f3", Value::Ref(y)),
        ]),
    ]);
    check_dom(&inst, &schema, &r).unwrap();
    check_dom_exact(&inst, &schema, &r).unwrap();
    // A wrong-typed f2 element is rejected.
    let bad = Value::set([Value::tuple([
        ("f1", Value::int(1)),
        ("f2", Value::array([Value::str("no")])),
        ("f3", Value::Ref(x)),
    ])]);
    assert!(check_dom(&bad, &schema, &r).is_err());
}

#[test]
fn substitutability_inside_the_kids_set() {
    // Employee.kids : { Person } accepts Student-shaped members (DOM), a
    // direct reading of "arrays of A can also have B's in them".
    let r = university();
    let kids_schema = SchemaType::set(SchemaType::named("Person"));
    let person = Value::tuple([
        ("ssnum", Value::int(1)),
        ("name", Value::str("kid")),
        ("street", Value::str("s")),
        ("city", Value::str("c")),
        ("zip", Value::int(2)),
        ("birthday", Value::dne()),
    ]);
    let mut alloc = OidAllocator::new();
    let dept_oid = alloc.mint(r.lookup("Department").unwrap());
    let emp_oid = alloc.mint(r.lookup("Employee").unwrap());
    let student_kid = {
        let mut fields = person.as_tuple().unwrap().clone().into_fields();
        fields.push(("gpa".into(), Value::float(4.0)));
        fields.push(("dept".into(), Value::Ref(dept_oid)));
        fields.push(("advisor".into(), Value::Ref(emp_oid)));
        Value::Tuple(excess_types::Tuple::from_fields(fields))
    };
    check_dom(&Value::set([person, student_kid]), &kids_schema, &r).unwrap();
}

#[test]
fn store_round_trips_a_full_employee_object() {
    let r = university();
    let mut store = ObjectStore::new();
    let mut alloc = OidAllocator::new();
    let dept_oid = alloc.mint(r.lookup("Department").unwrap());
    let emp = Value::tuple([
        ("ssnum", Value::int(7)),
        ("name", Value::str("Ann")),
        ("street", Value::str("1 Elm")),
        ("city", Value::str("Madison")),
        ("zip", Value::int(53706)),
        (
            "birthday",
            Value::date(excess_types::Date::new(1960, 1, 2).unwrap()),
        ),
        ("jobtitle", Value::str("prof")),
        ("dept", Value::Ref(dept_oid)),
        ("manager", Value::dne()),
        ("sub_ords", Value::set([])),
        ("salary", Value::int(90_000)),
        ("kids", Value::set([])),
    ]);
    let oid = store
        .create(&r, r.lookup("Employee").unwrap(), emp.clone())
        .unwrap();
    assert_eq!(store.deref(oid).unwrap(), &emp);
    // …and the same value is in DOM(Person) via substitutability.
    check_dom(&emp, &SchemaType::named("Person"), &r).unwrap();
    assert!(check_dom_exact(&emp, &SchemaType::named("Person"), &r).is_err());
}
