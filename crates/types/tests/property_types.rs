//! Property tests for the type-system substrate: scalar hash/order
//! consistency, date arithmetic, domain monotonicity, and store laws.

use excess_types::domain::{check_dom, check_dom_exact};
use excess_types::{Date, ObjectStore, Scalar, SchemaType, TypeRegistry, Value};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn h<T: Hash>(v: &T) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn int_float_equality_implies_equal_hashes(i in any::<i32>()) {
        // Int4(k) == Float4(k as f64) demands equal hashes.
        let a = Scalar::Int4(i);
        let b = Scalar::Float4(f64::from(i));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn scalar_order_is_antisymmetric_and_total(
        a in arb_scalar(), b in arb_scalar()
    ) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                prop_assert_eq!(h(&a), h(&b), "Eq must imply equal hashes");
            }
        }
    }

    #[test]
    fn date_ordinal_is_monotone(
        y1 in 1900i32..2100, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 1900i32..2100, m2 in 1u8..=12, d2 in 1u8..=28
    ) {
        let a = Date::new(y1, m1, d1).unwrap();
        let b = Date::new(y2, m2, d2).unwrap();
        prop_assert_eq!(a.cmp(&b), a.to_ordinal().cmp(&b.to_ordinal()));
        // Age is anti-monotone in the birthday.
        let today = Date::new(2100, 12, 31).unwrap();
        if a <= b {
            prop_assert!(a.age_at(today) >= b.age_at(today));
        }
    }

    #[test]
    fn dom_is_a_subset_of_big_dom(v in arb_flat_value()) {
        // Any value in dom(S) is in DOM(S) for the matching scalar schema.
        let reg = TypeRegistry::new();
        for s in [
            SchemaType::int4(),
            SchemaType::float4(),
            SchemaType::chars(),
            SchemaType::boolean(),
        ] {
            if check_dom_exact(&v, &s, &reg).is_ok() {
                prop_assert!(check_dom(&v, &s, &reg).is_ok());
            }
        }
    }

    #[test]
    fn store_create_then_deref_is_identity(xs in prop::collection::vec(any::<i32>(), 0..6)) {
        let mut reg = TypeRegistry::new();
        reg.define("Box", SchemaType::tuple([("items", SchemaType::set(SchemaType::int4()))]))
            .unwrap();
        let ty = reg.lookup("Box").unwrap();
        let mut store = ObjectStore::new();
        let v = Value::tuple([("items", Value::set(xs.into_iter().map(Value::int)))]);
        let oid = store.create(&reg, ty, v.clone()).unwrap();
        prop_assert_eq!(store.deref(oid).unwrap(), &v);
        prop_assert_eq!(store.exact_type(oid).unwrap(), ty);
        // Updating to another valid value round-trips too.
        let v2 = Value::tuple([("items", Value::set([Value::int(1)]))]);
        store.update(&reg, oid, v2.clone()).unwrap();
        prop_assert_eq!(store.deref(oid).unwrap(), &v2);
    }

    #[test]
    fn fixed_array_domain_is_exactly_length_n(
        n in 0usize..6, m in 0usize..6
    ) {
        let reg = TypeRegistry::new();
        let s = SchemaType::fixed_array(SchemaType::int4(), n);
        let v = Value::array((0..m).map(|i| Value::int(i as i32)));
        prop_assert_eq!(check_dom(&v, &s, &reg).is_ok(), m == n);
    }
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        any::<i32>().prop_map(Scalar::Int4),
        any::<f64>().prop_map(Scalar::Float4),
        "[a-z]{0,5}".prop_map(Scalar::Char),
        any::<bool>().prop_map(Scalar::Bool),
        (1900i32..2100, 1u8..=12, 1u8..=28)
            .prop_map(|(y, m, d)| Scalar::Date(Date::new(y, m, d).unwrap())),
    ]
}

fn arb_flat_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::int),
        any::<f64>().prop_map(Value::float),
        "[a-z]{0,5}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
        Just(Value::dne()),
    ]
}
