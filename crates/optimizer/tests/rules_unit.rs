//! Exact-rewrite unit tests: for each Appendix rule, one concrete input
//! and the precise output we expect the rule to propose.  (Semantic
//! soundness of *every reachable* rewrite is separately checked by the
//! workspace test `rule_soundness`.)

use excess_core::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess_optimizer::rules::{array, multiset, relational, tuple_ref};
use excess_optimizer::{Rule, RuleCtx};
use excess_types::{SchemaType, TypeRegistry};
use std::collections::HashMap;

fn fixtures() -> (TypeRegistry, HashMap<String, SchemaType>) {
    let mut reg = TypeRegistry::new();
    reg.define(
        "Row",
        SchemaType::tuple([("x", SchemaType::int4()), ("y", SchemaType::chars())]),
    )
    .unwrap();
    let mut schemas = HashMap::new();
    schemas.insert("A".into(), SchemaType::set(SchemaType::named("Row")));
    schemas.insert(
        "B".into(),
        SchemaType::set(SchemaType::tuple([("z", SchemaType::int4())])),
    );
    schemas.insert("Arr".into(), SchemaType::array(SchemaType::int4()));
    (reg, schemas)
}

fn apply_one(rule: &dyn Rule, e: &Expr) -> Vec<Expr> {
    let (reg, schemas) = fixtures();
    let ctx = RuleCtx {
        registry: &reg,
        schemas: &schemas,
    };
    rule.apply(e, &ctx)
}

fn a() -> Expr {
    Expr::named("A")
}
fn b() -> Expr {
    Expr::named("B")
}
fn arr() -> Expr {
    Expr::named("Arr")
}
fn px() -> Pred {
    Pred::cmp(Expr::input().extract("x"), CmpOp::Eq, Expr::int(1))
}

#[test]
fn rule1_reassociates_both_ways() {
    let e = a().add_union(b().add_union(a()));
    let out = apply_one(&multiset::R1Associativity, &e);
    assert!(out.contains(&a().add_union(b()).add_union(a())));
}

#[test]
fn rule2_distributes_and_factors() {
    let e = a().cross(b().add_union(a()));
    let out = apply_one(&multiset::R2DistributeCrossUnion, &e);
    assert!(out.contains(&a().cross(b()).add_union(a().cross(a()))));
    // Reverse direction.
    let back = apply_one(&multiset::R2DistributeCrossUnion, &out[0]);
    assert!(back.contains(&e));
}

#[test]
fn rule3_commutes_with_compensating_projection() {
    let e = a().rel_cross(b());
    let out = apply_one(&multiset::R3RelCrossCommute, &e);
    assert_eq!(out.len(), 1);
    // rel_×(B, A) then project back to (x, y, z) order.
    let expected = b()
        .rel_cross(a())
        .set_apply(Expr::input().project(["x", "y", "z"]));
    assert_eq!(out[0], expected);
}

#[test]
fn rule3_skips_clashing_names() {
    let e = a().rel_cross(a());
    assert!(apply_one(&multiset::R3RelCrossCommute, &e).is_empty());
}

#[test]
fn rule4_splits_a_disjunction() {
    let p1 = px();
    let p2 = Pred::cmp(Expr::input().extract("y"), CmpOp::Eq, Expr::str("q"));
    let disj = Pred::Not(Box::new(Pred::And(
        Box::new(p1.clone().not()),
        Box::new(p2.clone().not()),
    )));
    let e = a().select(disj);
    let out = apply_one(&multiset::R4DisjunctiveSelect, &e);
    assert!(out.contains(&Expr::Union(
        Box::new(a().select(p1)),
        Box::new(a().select(p2))
    )));
}

#[test]
fn rule5_eliminates_the_cross() {
    let body = Expr::input().extract("fst").extract("x");
    let e = Expr::DupElim(Box::new(a().cross(b()).set_apply(body)));
    let out = apply_one(&multiset::R5EliminateCross, &e);
    assert_eq!(
        out,
        vec![Expr::DupElim(Box::new(
            a().set_apply(Expr::input().extract("x"))
        ))]
    );
}

#[test]
fn rule5_requires_fst_only_bodies() {
    let body = Expr::input().extract("snd").extract("z");
    let e = Expr::DupElim(Box::new(a().cross(b()).set_apply(body)));
    assert!(apply_one(&multiset::R5EliminateCross, &e).is_empty());
}

#[test]
fn rule6_drops_de_over_group() {
    let g = a().group_by(Expr::input().extract("x"));
    let out = apply_one(&multiset::R6GroupIsDupFree, &g.clone().dup_elim());
    assert_eq!(out, vec![g]);
}

#[test]
fn rule8_moves_de_through_group() {
    let e = a().dup_elim().group_by(Expr::input().extract("x"));
    let out = apply_one(&multiset::R8DeThroughGroup, &e);
    let expected = a()
        .group_by(Expr::input().extract("x"))
        .set_apply(Expr::input().dup_elim());
    assert!(out.contains(&expected));
    // And back.
    assert!(apply_one(&multiset::R8DeThroughGroup, &expected).contains(&e));
}

#[test]
fn rule9_groups_one_side_of_a_cross() {
    let e = a()
        .cross(b())
        .group_by(Expr::input().extract("fst").extract("x"));
    let out = apply_one(&multiset::R9GroupCrossOneSide, &e);
    assert_eq!(out.len(), 1);
    let expected = a()
        .group_by(Expr::input().extract("x"))
        .set_apply(Expr::input().cross(b()));
    assert_eq!(out[0], expected);
}

#[test]
fn rule13_distributes_pairwise_bodies() {
    let body = Expr::input()
        .extract("fst")
        .extract("x")
        .make_tup("fst")
        .tup_cat(Expr::input().extract("snd").extract("z").make_tup("snd"));
    let e = a().cross(b()).set_apply(body);
    let out = apply_one(&multiset::R13ApplyOverCross, &e);
    let expected = a()
        .set_apply(Expr::input().extract("x"))
        .cross(b().set_apply(Expr::input().extract("z")));
    assert_eq!(out, vec![expected]);
}

#[test]
fn rule15_fuses_and_respects_binders() {
    let inner = a().set_apply(Expr::input().extract("x"));
    let e = inner.set_apply(Expr::input().make_tup("n"));
    let out = apply_one(&multiset::R15CombineApplys, &e);
    assert_eq!(
        out,
        vec![a().set_apply(Expr::input().extract("x").make_tup("n"))]
    );
    // Fusion under an outer binder reference: outer body mentions INPUT^1.
    let nested = a()
        .set_apply(Expr::input().extract("x"))
        .set_apply(Expr::input_at(1));
    // At top level INPUT^1 is free; fusion must keep it intact.
    let fused = apply_one(&multiset::R15CombineApplys, &nested);
    assert_eq!(fused, vec![a().set_apply(Expr::input_at(1))]);
}

#[test]
fn rule17_routes_extraction_through_cat() {
    let lit = Expr::lit(excess_types::Value::array([
        excess_types::Value::int(7),
        excess_types::Value::int(8),
    ]));
    let e = Expr::ArrExtract(Box::new(lit.clone().arr_cat(arr())), Bound::At(2));
    let out = apply_one(&array::R17ExtractFromCat, &e);
    assert_eq!(
        out,
        vec![Expr::ArrExtract(Box::new(lit.clone()), Bound::At(2))]
    );
    let e2 = Expr::ArrExtract(Box::new(lit.arr_cat(arr())), Bound::At(3));
    let out2 = apply_one(&array::R17ExtractFromCat, &e2);
    assert_eq!(out2, vec![Expr::ArrExtract(Box::new(arr()), Bound::At(1))]);
}

#[test]
fn rule18_adjusts_the_offset() {
    let e = arr().subarr(Bound::At(3), Bound::At(7)).arr_extract(2);
    let out = apply_one(&array::R18ExtractFromSubarr, &e);
    assert_eq!(out, vec![arr().arr_extract(4)]);
    // Out-of-extent extraction is not rewritten (LHS is dne).
    let oob = arr().subarr(Bound::At(3), Bound::At(4)).arr_extract(5);
    assert!(apply_one(&array::R18ExtractFromSubarr, &oob).is_empty());
}

#[test]
fn rule19_beta_applies_the_body() {
    let e = arr()
        .arr_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(1)]))
        .arr_extract(3);
    let out = apply_one(&array::R19ExtractFromApply, &e);
    assert_eq!(
        out,
        vec![Expr::call(
            Func::Add,
            vec![arr().arr_extract(3), Expr::int(1)]
        )]
    );
    // Filtering bodies shift positions — no rewrite.
    let filt = arr()
        .arr_apply(Expr::input().comp(Pred::cmp(Expr::input(), CmpOp::Gt, Expr::int(0))))
        .arr_extract(3);
    assert!(apply_one(&array::R19ExtractFromApply, &filt).is_empty());
}

#[test]
fn rule20_composes_subarrays() {
    let e = arr()
        .subarr(Bound::At(2), Bound::At(9))
        .subarr(Bound::At(3), Bound::At(5));
    let out = apply_one(&array::R20CombineSubarrs, &e);
    assert_eq!(out, vec![arr().subarr(Bound::At(4), Bound::At(6))]);
    // Upper bound clamps at the inner k.
    let e2 = arr()
        .subarr(Bound::At(2), Bound::At(4))
        .subarr(Bound::At(1), Bound::At(9));
    let out2 = apply_one(&array::R20CombineSubarrs, &e2);
    assert_eq!(out2, vec![arr().subarr(Bound::At(2), Bound::At(4))]);
}

#[test]
fn rule24_splits_projection_lists() {
    let t = Expr::named("A")
        .set_apply(Expr::input()) // irrelevant; we need tuple exprs:
        ;
    let _ = t;
    let one = Expr::input(); // placeholder tuple-typed exprs via OneTup-like fixture
    let _ = one;
    // Use concrete tuple-typed expressions through the schema fixtures:
    // TUP_CAT of a Row-typed extract is awkward here, so test on literals.
    let ta = Expr::lit(excess_types::Value::tuple([
        ("x", excess_types::Value::int(1)),
        ("y", excess_types::Value::str("s")),
    ]));
    let tb = Expr::lit(excess_types::Value::tuple([(
        "z",
        excess_types::Value::int(2),
    )]));
    let e = ta.clone().tup_cat(tb.clone()).project(["x", "z"]);
    let out = apply_one(&tuple_ref::R24ProjectOverCat, &e);
    assert_eq!(out, vec![ta.project(["x"]).tup_cat(tb.project(["z"]))]);
}

#[test]
fn rule25_routes_extraction() {
    let ta = Expr::lit(excess_types::Value::tuple([(
        "x",
        excess_types::Value::int(1),
    )]));
    let tb = Expr::lit(excess_types::Value::tuple([(
        "z",
        excess_types::Value::int(2),
    )]));
    let e = ta.clone().tup_cat(tb.clone()).extract("z");
    let out = apply_one(&tuple_ref::R25ExtractFromCat, &e);
    assert_eq!(out, vec![tb.extract("z")]);
}

#[test]
fn rule26_pushes_extract_into_comp() {
    let comp = Expr::named("A")
        .set_apply(Expr::input()) // any tuple-producing expr would do
        ;
    let _ = comp;
    let t = Expr::lit(excess_types::Value::tuple([(
        "x",
        excess_types::Value::int(5),
    )]));
    let e = t
        .clone()
        .comp(Pred::cmp(
            Expr::input().extract("x"),
            CmpOp::Lt,
            Expr::int(9),
        ))
        .extract("x");
    let out = apply_one(&tuple_ref::R26PushIntoComp, &e);
    let expected = t
        .extract("x")
        .comp(Pred::cmp(Expr::input(), CmpOp::Lt, Expr::int(9)));
    assert!(out.contains(&expected));
}

#[test]
fn rule27_orders_the_conjunction_inner_first() {
    let p_inner = px();
    let p_outer = Pred::cmp(Expr::input().extract("y"), CmpOp::Ne, Expr::str("q"));
    let t = Expr::lit(excess_types::Value::tuple([
        ("x", excess_types::Value::int(1)),
        ("y", excess_types::Value::str("a")),
    ]));
    let e = t.clone().comp(p_inner.clone()).comp(p_outer.clone());
    let out = apply_one(&tuple_ref::R27CombineComps, &e);
    assert!(out.contains(&t.comp(p_inner.and(p_outer))));
}

#[test]
fn rule28_cancels_in_both_directions() {
    let e = Expr::named("A").make_ref("Row").deref();
    assert_eq!(
        apply_one(&tuple_ref::R28RefDeref, &e),
        vec![Expr::named("A")]
    );
    let e2 = Expr::named("A").deref().make_ref("Row");
    assert_eq!(
        apply_one(&tuple_ref::R28RefDeref, &e2),
        vec![Expr::named("A")]
    );
    assert!(tuple_ref::R28RefDeref.modulo_identity());
    assert!(!tuple_ref::R28aDerefOfRef.modulo_identity());
}

#[test]
fn rel2_pushes_only_single_sided_conjuncts() {
    let single = Pred::cmp(Expr::input().extract("x"), CmpOp::Eq, Expr::int(1));
    let joiny = Pred::cmp(
        Expr::input().extract("x"),
        CmpOp::Eq,
        Expr::input().extract("z"),
    );
    let e = a().rel_join(b(), single.clone().and(joiny.clone()));
    let out = apply_one(&relational::RR2PushSelectIntoJoin, &e);
    assert_eq!(out, vec![a().select(single).rel_join(b(), joiny)]);
}

#[test]
fn rel5_dedups_inputs_under_an_outer_de() {
    let e = a().set_apply(Expr::input().extract("x")).dup_elim();
    let out = apply_one(&relational::RR5DeEarly, &e);
    assert_eq!(
        out,
        vec![a()
            .dup_elim()
            .set_apply(Expr::input().extract("x"))
            .dup_elim()]
    );
    // Minting bodies must not be deduplicated.
    let minty = a().set_apply(Expr::input().make_ref("Row")).dup_elim();
    assert!(apply_one(&relational::RR5DeEarly, &minty).is_empty());
}
