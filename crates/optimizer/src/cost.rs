//! The cost model: maps an algebra expression to (estimated rows, distinct
//! values, total work).
//!
//! Costs are abstract work units chosen to mirror the evaluator's counters
//! (`excess_core::Counters`): one unit per occurrence scanned or compared,
//! [`DEREF_COST`] per dereference, [`MINT_COST`] per object creation,
//! [`TYPE_TEST_COST`] per run-time exact-type test (the Section 4 dispatch
//! costs).  Absolute values are meaningless; the optimizer only compares
//! plans.

use crate::stats::Statistics;
use excess_core::expr::{Expr, Func, Pred};
use excess_types::Value;

/// Work units per DEREF (pointer chase + copy).
pub const DEREF_COST: f64 = 2.0;
/// Work units per REF (allocation + domain check).
pub const MINT_COST: f64 = 5.0;
/// Work units per run-time exact-type determination (shape match or store
/// lookup) — paid per element by `only_types` filters and switch dispatch.
pub const TYPE_TEST_COST: f64 = 1.0;
/// Extra per-element overhead of the switch table itself.
pub const SWITCH_COST: f64 = 0.5;

/// A per-expression estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Expected number of occurrences (1 for non-collections).
    pub rows: f64,
    /// Expected number of distinct elements.
    pub distinct: f64,
    /// Total work to produce the value once.
    pub cost: f64,
}

impl Estimate {
    fn scalar(cost: f64) -> Estimate {
        Estimate {
            rows: 1.0,
            distinct: 1.0,
            cost,
        }
    }
}

/// Estimate `e` under `stats`.  `env` carries estimates for binder
/// elements (innermost last): an element's `rows` models the expected size
/// of its nested collections.
pub fn estimate(e: &Expr, env: &mut Vec<Estimate>, stats: &Statistics) -> Estimate {
    match e {
        Expr::Input(d) => {
            let idx = env.len().checked_sub(1 + d);
            idx.and_then(|i| env.get(i).copied())
                .unwrap_or(Estimate::scalar(0.0))
        }
        Expr::Named(n) => {
            let o = stats.object(n);
            Estimate {
                rows: o.rows,
                distinct: o.distinct,
                cost: o.rows,
            }
        }
        Expr::Const(v) => {
            let rows = match v {
                Value::Set(s) => s.len() as f64,
                Value::Array(a) => a.len() as f64,
                _ => 1.0,
            };
            Estimate {
                rows,
                distinct: rows,
                cost: 0.0,
            }
        }

        Expr::AddUnion(a, b) | Expr::Union(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: ea.rows + eb.rows,
                distinct: (ea.distinct + eb.distinct) * 0.75,
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        Expr::Diff(a, b) | Expr::Intersect(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: (ea.rows * 0.5).max(1.0),
                distinct: (ea.distinct * 0.5).max(1.0),
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        Expr::MakeSet(a) | Expr::MakeArr(a) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost,
            }
        }
        Expr::SetApply {
            input,
            body,
            only_types,
        } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eb = estimate(body, env, stats);
            env.pop();
            let (frac, filter_cost) = match only_types {
                Some(ts) => {
                    let f: f64 = ts
                        .iter()
                        .map(|t| stats.type_fraction(t))
                        .sum::<f64>()
                        .min(1.0);
                    (f, TYPE_TEST_COST)
                }
                None => (1.0, 0.0),
            };
            let selectivity = body_selectivity(body, stats);
            // Projection-like bodies collapse distinctness (the classical
            // column-cardinality heuristic): π/TUP_EXTRACT keep only part
            // of each element, so many inputs map to one output.
            let distinct_factor = if body_is_projection(body) { 0.1 } else { 1.0 };
            Estimate {
                rows: ein.rows * frac * selectivity,
                distinct: (ein.distinct * frac * selectivity * distinct_factor).max(1.0),
                cost: ein.cost + ein.rows * filter_cost + ein.rows * frac * (1.0 + eb.cost),
            }
        }
        Expr::SetApplySwitch { input, table } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let avg_body: f64 = if table.is_empty() {
                0.0
            } else {
                table
                    .iter()
                    .map(|(_, b)| estimate(b, env, stats).cost)
                    .sum::<f64>()
                    / table.len() as f64
            };
            env.pop();
            Estimate {
                rows: ein.rows,
                distinct: ein.distinct,
                cost: ein.cost
                    + ein.rows * (TYPE_TEST_COST + SWITCH_COST)
                    + ein.rows * (1.0 + avg_body),
            }
        }
        Expr::Group { input, by } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eby = estimate(by, env, stats);
            env.pop();
            // Groups ≈ distinct grouping keys; assume a quarter of the
            // distinct elements share a key absent better information.
            let groups = (ein.distinct * 0.25).max(1.0);
            Estimate {
                rows: groups,
                distinct: groups,
                cost: ein.cost + ein.rows * (1.0 + eby.cost),
            }
        }
        Expr::DupElim(a) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: ea.distinct,
                distinct: ea.distinct,
                cost: ea.cost + ea.rows,
            }
        }
        Expr::Cross(a, b) | Expr::RelCross(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            let rows = ea.rows * eb.rows;
            Estimate {
                rows,
                distinct: ea.distinct * eb.distinct,
                cost: ea.cost + eb.cost + rows,
            }
        }
        Expr::RelJoin { left, right, pred } => {
            let (ea, eb) = (estimate(left, env, stats), estimate(right, env, stats));
            env.push(Estimate::scalar(0.0));
            let pc = pred_cost(pred, env, stats);
            env.pop();
            let pairs = ea.rows * eb.rows;
            let rows = (pairs * stats.default_selectivity).max(1.0);
            Estimate {
                rows,
                distinct: rows,
                cost: ea.cost + eb.cost + pairs * (1.0 + pc),
            }
        }
        Expr::SetCollapse(a) => {
            let ea = estimate(a, env, stats);
            let rows = ea.rows * stats.default_avg_nested;
            Estimate {
                rows,
                distinct: rows * 0.5,
                cost: ea.cost + rows,
            }
        }

        Expr::Select { input, pred } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let pc = pred_cost(pred, env, stats);
            env.pop();
            let rows = (ein.rows * stats.default_selectivity).max(1.0);
            Estimate {
                rows,
                distinct: (ein.distinct * stats.default_selectivity).max(1.0),
                cost: ein.cost + ein.rows * (1.0 + pc),
            }
        }
        Expr::ArrSelect { input, pred } => {
            let ein = estimate(input, env, stats);
            env.push(Estimate::scalar(0.0));
            let pc = pred_cost(pred, env, stats);
            env.pop();
            Estimate {
                rows: (ein.rows * stats.default_selectivity).max(1.0),
                distinct: (ein.distinct * stats.default_selectivity).max(1.0),
                cost: ein.cost + ein.rows * (1.0 + pc),
            }
        }

        Expr::Project(a, _) | Expr::MakeTup(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost + 0.5,
            }
        }
        Expr::TupCat(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost + eb.cost + 0.5,
            }
        }
        Expr::TupExtract(a, _) => {
            let ea = estimate(a, env, stats);
            // Extracting a (possibly nested-collection) field: its expected
            // size is the context's avg_nested.
            Estimate {
                rows: stats.default_avg_nested,
                distinct: stats.default_avg_nested,
                cost: ea.cost + 0.25,
            }
        }

        Expr::ArrExtract(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost + 0.25,
            }
        }
        Expr::ArrApply { input, body } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eb = estimate(body, env, stats);
            env.pop();
            Estimate {
                rows: ein.rows,
                distinct: ein.distinct,
                cost: ein.cost + ein.rows * (1.0 + eb.cost),
            }
        }
        Expr::SubArr(a, _, _) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: (ea.rows * 0.5).max(1.0),
                distinct: ea.distinct,
                cost: ea.cost + ea.rows * 0.5,
            }
        }
        Expr::ArrCat(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: ea.rows + eb.rows,
                distinct: ea.distinct + eb.distinct,
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        Expr::ArrCollapse(a) => {
            let ea = estimate(a, env, stats);
            let rows = ea.rows * stats.default_avg_nested;
            Estimate {
                rows,
                distinct: rows * 0.5,
                cost: ea.cost + rows,
            }
        }
        Expr::ArrDiff(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: ea.rows,
                distinct: ea.distinct,
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        Expr::ArrDupElim(a) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: ea.distinct,
                distinct: ea.distinct,
                cost: ea.cost + ea.rows,
            }
        }
        Expr::ArrCross(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            let rows = ea.rows * eb.rows;
            Estimate {
                rows,
                distinct: rows,
                cost: ea.cost + eb.cost + rows,
            }
        }

        Expr::MakeRef(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost + MINT_COST,
            }
        }
        Expr::Deref(a) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: 1.0,
                distinct: 1.0,
                cost: ea.cost + DEREF_COST,
            }
        }

        Expr::Comp { input, pred } => {
            let ein = estimate(input, env, stats);
            env.push(ein);
            let pc = pred_cost(pred, env, stats);
            env.pop();
            Estimate {
                rows: ein.rows,
                distinct: ein.distinct,
                cost: ein.cost + pc,
            }
        }

        Expr::Call(f, args) => {
            let mut cost = 0.0;
            let mut arg0 = Estimate::scalar(0.0);
            for (i, a) in args.iter().enumerate() {
                let ea = estimate(a, env, stats);
                if i == 0 {
                    arg0 = ea;
                }
                cost += ea.cost;
            }
            match f {
                Func::Min | Func::Max | Func::Count | Func::Sum | Func::Avg | Func::The => {
                    Estimate::scalar(cost + arg0.rows)
                }
                _ => Estimate::scalar(cost + 0.25),
            }
        }
    }
}

/// Estimate for one element of a collection.  Structure-aware where it
/// matters: elements of a `GRP` output are themselves multisets whose
/// expected size is `|input| / #groups` (this is what makes "push σ ahead
/// of GRP" correctly appear cheaper — the per-group σ still scans every
/// member).  Otherwise nested collections get the configured average size.
fn element_estimate(
    input: &Expr,
    ein: &Estimate,
    env: &mut Vec<Estimate>,
    stats: &Statistics,
) -> Estimate {
    // Peel wrappers that preserve (roughly) the element structure.
    let mut cur = input;
    loop {
        match cur {
            Expr::DupElim(i) | Expr::SetCollapse(i) => cur = i,
            Expr::Select { input: i, .. } => cur = i,
            Expr::SetApply { input: i, .. } => cur = i,
            _ => break,
        }
    }
    if let Expr::Group { input: gi, .. } = cur {
        let g_in = estimate(gi, env, stats);
        let members = (g_in.rows / ein.rows.max(1.0)).max(1.0);
        return Estimate {
            rows: members,
            distinct: members,
            cost: 0.0,
        };
    }
    Estimate {
        rows: stats.default_avg_nested,
        distinct: stats.default_avg_nested,
        cost: 0.0,
    }
}

/// Does the body act as a filter (COMP at its spine)?  If so, SET_APPLY
/// output shrinks by the default selectivity.
fn body_selectivity(body: &Expr, stats: &Statistics) -> f64 {
    fn has_comp_spine(e: &Expr) -> bool {
        match e {
            Expr::Comp { .. } => true,
            Expr::Project(a, _) | Expr::TupExtract(a, _) | Expr::Deref(a) => has_comp_spine(a),
            Expr::SetApply { input, .. } => has_comp_spine(input),
            _ => false,
        }
    }
    if has_comp_spine(body) {
        stats.default_selectivity
    } else {
        1.0
    }
}

/// Is the body a pure projection chain (π / TUP_EXTRACT / TUP over the
/// element), i.e. guaranteed to be non-injective in general?
fn body_is_projection(body: &Expr) -> bool {
    match body {
        Expr::Project(a, _) | Expr::TupExtract(a, _) | Expr::MakeTup(a, _) => {
            matches!(**a, Expr::Input(_)) || body_is_projection(a)
        }
        Expr::TupCat(a, b) => body_is_projection(a) && body_is_projection(b),
        _ => false,
    }
}

fn pred_cost(p: &Pred, env: &mut Vec<Estimate>, stats: &Statistics) -> f64 {
    match p {
        Pred::Cmp(l, _, r) => 1.0 + estimate(l, env, stats).cost + estimate(r, env, stats).cost,
        Pred::And(a, b) => pred_cost(a, env, stats) + pred_cost(b, env, stats),
        Pred::Not(q) => pred_cost(q, env, stats),
    }
}

/// Total estimated cost of a closed expression.
pub fn cost_of(e: &Expr, stats: &Statistics) -> f64 {
    let mut env = Vec::new();
    estimate(e, &mut env, stats).cost
}

/// Per-node estimates for every node of `e`, keyed by its path (child
/// indices in [`Expr::children`] order — the same keying the evaluator's
/// profile uses, so EXPLAIN ANALYZE can put estimate and measurement side
/// by side).  Binder environments are maintained exactly as [`estimate`]
/// does internally, so a body node's estimate matches what the cost model
/// assumed for it in context.
pub fn estimate_nodes(
    e: &Expr,
    stats: &Statistics,
) -> Vec<(excess_core::profile::NodePath, Estimate)> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    let mut env = Vec::new();
    walk_estimates(e, &mut path, &mut env, stats, &mut out);
    out
}

fn walk_estimates(
    e: &Expr,
    path: &mut Vec<usize>,
    env: &mut Vec<Estimate>,
    stats: &Statistics,
    out: &mut Vec<(excess_core::profile::NodePath, Estimate)>,
) {
    out.push((path.clone(), estimate(e, env, stats)));
    // Children at index ≥ `start` see one extra binder on the environment,
    // mirroring the env pushes in `estimate`'s own arms.
    let binder: Option<(usize, Estimate)> = match e {
        Expr::SetApply { input, .. }
        | Expr::ArrApply { input, .. }
        | Expr::Group { input, .. }
        | Expr::Select { input, .. }
        | Expr::SetApplySwitch { input, .. } => {
            let ein = estimate(input, env, stats);
            Some((1, element_estimate(input, &ein, env, stats)))
        }
        Expr::ArrSelect { .. } => Some((1, Estimate::scalar(0.0))),
        Expr::RelJoin { .. } => Some((2, Estimate::scalar(0.0))),
        Expr::Comp { input, .. } => Some((1, estimate(input, env, stats))),
        _ => None,
    };
    for (i, child) in e.children().into_iter().enumerate() {
        let bound = matches!(binder, Some((start, _)) if i >= start);
        if bound {
            env.push(binder.expect("checked").1);
        }
        path.push(i);
        walk_estimates(child, path, env, stats, out);
        path.pop();
        if bound {
            env.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::{CmpOp, Expr, Pred};

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_object("S", 1000.0, 100.0, 8.0);
        s.set_object("E", 2000.0, 2000.0, 8.0);
        s
    }

    #[test]
    fn de_early_is_cheaper_with_high_duplication() {
        // DE(SET_APPLY(S)) vs DE(SET_APPLY(DE(S))): with dup factor 10 the
        // second plan's SET_APPLY runs over 100 rows instead of 1000.
        let s = stats();
        let body = Expr::input().extract("name");
        let late = Expr::named("S").set_apply(body.clone()).dup_elim();
        let early = Expr::named("S").dup_elim().set_apply(body).dup_elim();
        assert!(cost_of(&early, &s) < cost_of(&late, &s));
    }

    #[test]
    fn select_before_group_is_cheaper() {
        let s = stats();
        let pred = Pred::cmp(Expr::input().extract("floor"), CmpOp::Eq, Expr::int(5));
        let by = Expr::input().extract("div");
        // GRP then per-group σ (plus the compensation) vs σ then GRP.
        let late = Expr::named("S")
            .group_by(by.clone())
            .set_apply(Expr::Select {
                input: Box::new(Expr::input()),
                pred: pred.clone(),
            });
        let early = Expr::named("S").select(pred).group_by(by);
        assert!(cost_of(&early, &s) < cost_of(&late, &s));
    }

    #[test]
    fn join_cost_dominated_by_pair_count() {
        let s = stats();
        let pred = Pred::eq(Expr::input().extract("a"), Expr::input().extract("b"));
        let j = Expr::named("S").rel_join(Expr::named("E"), pred);
        // 1000 × 2000 pairs dominate the 3000 scan cost.
        assert!(cost_of(&j, &s) > 2_000_000.0);
    }

    #[test]
    fn switch_dispatch_charges_type_tests() {
        let s = stats();
        let arm = Expr::input().extract("name");
        let switch = Expr::SetApplySwitch {
            input: Box::new(Expr::named("S")),
            table: vec![("Person".into(), arm.clone())],
        };
        let plain = Expr::named("S").set_apply(arm);
        assert!(cost_of(&switch, &s) > cost_of(&plain, &s));
    }
}
