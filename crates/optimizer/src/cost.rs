//! The cost model: maps an algebra expression to (estimated rows, distinct
//! values, total work).
//!
//! Costs are abstract work units chosen to mirror the evaluator's counters
//! (`excess_core::Counters`): one unit per occurrence scanned or compared,
//! [`DEREF_COST`] per dereference, [`MINT_COST`] per object creation,
//! [`TYPE_TEST_COST`] per run-time exact-type test (the Section 4 dispatch
//! costs).  Absolute values are meaningless; the optimizer only compares
//! plans.
//!
//! # Duplication-aware propagation
//!
//! The paper's Figure 6→8 derivation hinges on *crediting duplicate
//! elimination*: DE is only worth pushing early if the model can see that
//! its input carries duplicates.  To that end every [`Estimate`] threads a
//! `distinct` count — and, for collections of tuples, per-attribute NDVs
//! ([`Estimate::attr_ndv`], seeded from [`Statistics`]) — compositionally
//! through the operators:
//!
//! * projection collapses distinctness to the product of the kept
//!   attributes' NDVs (capped by `rows`);
//! * `GRP` bounds its group count by the grouping key's NDV;
//! * `DE` snaps `rows` to `distinct`;
//! * `⊎`/`∪` add NDVs;
//! * `rel_join` multiplies side distinct counts under independence and
//!   uses `1/max(ndv_l, ndv_r)` selectivity for equi-join predicates.
//!
//! Every estimate is normalised so `distinct ≤ rows` holds by
//! construction (property-tested in `tests/`).

use crate::stats::Statistics;
use excess_core::expr::{CmpOp, Expr, Func, Pred};
use excess_types::Value;
use std::collections::BTreeMap;

/// Work units per DEREF (pointer chase + copy).
pub const DEREF_COST: f64 = 2.0;
/// Work units per REF (allocation + domain check).
pub const MINT_COST: f64 = 5.0;
/// Work units per run-time exact-type determination (shape match or store
/// lookup) — paid per element by `only_types` filters and switch dispatch.
pub const TYPE_TEST_COST: f64 = 1.0;
/// Extra per-element overhead of the switch table itself.
pub const SWITCH_COST: f64 = 0.5;
/// Modelled speedup of a batched chunk kernel over its row-at-a-time
/// counterpart: typed column sweeps replace per-occurrence `Value`
/// clones and tree comparisons.  Section I of the report measures the
/// actual ratio; the constant only has to rank columnar below row for
/// the same node, which any value > 1 does.
pub const COLUMNAR_DISCOUNT: f64 = 8.0;

/// A per-expression estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Expected number of occurrences (1 for non-collections).
    pub rows: f64,
    /// Expected number of distinct elements.
    pub distinct: f64,
    /// Total work to produce the value once.
    pub cost: f64,
    /// Per-attribute number of distinct values, when the expression is a
    /// collection of tuples with known statistics (`None` = unknown, fall
    /// back to shape heuristics).  This is what lets a projection body
    /// collapse `distinct` and an equi-join pick a selectivity.
    pub attr_ndv: Option<BTreeMap<String, f64>>,
}

impl Estimate {
    fn scalar(cost: f64) -> Estimate {
        Estimate {
            rows: 1.0,
            distinct: 1.0,
            cost,
            attr_ndv: None,
        }
    }

    fn plain(rows: f64, distinct: f64, cost: f64) -> Estimate {
        Estimate {
            rows,
            distinct,
            cost,
            attr_ndv: None,
        }
    }

    /// NDV of one attribute, if known.
    fn ndv(&self, attr: &str) -> Option<f64> {
        self.attr_ndv.as_ref()?.get(attr).copied()
    }
}

/// Clamp an estimate into its invariants: `distinct` never exceeds `rows`,
/// and no attribute NDV exceeds `rows` either (an attribute cannot take
/// more distinct values than there are occurrences).
fn normalized(mut est: Estimate) -> Estimate {
    if est.distinct > est.rows {
        est.distinct = est.rows;
    }
    if let Some(m) = est.attr_ndv.as_mut() {
        for v in m.values_mut() {
            if *v > est.rows {
                *v = est.rows;
            }
        }
    }
    est
}

/// Pointwise-`max` union of two attribute-NDV maps (equi-join output: the
/// concatenated tuple carries both sides' attributes).
fn merge_max(
    a: Option<&BTreeMap<String, f64>>,
    b: Option<&BTreeMap<String, f64>>,
) -> Option<BTreeMap<String, f64>> {
    let (a, b) = (a?, b?);
    let mut out = a.clone();
    for (k, v) in b {
        let slot = out.entry(k.clone()).or_insert(*v);
        if *v > *slot {
            *slot = *v;
        }
    }
    Some(out)
}

/// Pointwise-sum union of two attribute-NDV maps (⊎/∪ output: the value
/// sets of each attribute at worst concatenate).
fn merge_add(
    a: Option<&BTreeMap<String, f64>>,
    b: Option<&BTreeMap<String, f64>>,
) -> Option<BTreeMap<String, f64>> {
    let (a, b) = (a?, b?);
    let mut out = a.clone();
    for (k, v) in b {
        *out.entry(k.clone()).or_insert(0.0) += *v;
    }
    Some(out)
}

/// `π_L(INPUT)` body: the projected field list, when the body is exactly a
/// projection of the element variable.
fn body_projection_fields(body: &Expr) -> Option<&[String]> {
    if let Expr::Project(a, fields) = body {
        if matches!(**a, Expr::Input(0)) {
            return Some(fields);
        }
    }
    None
}

/// `TUP_EXTRACT_f(INPUT)` shape: the extracted field, at the given binder
/// depth.
fn extracted_field(e: &Expr, depth: usize) -> Option<&str> {
    if let Expr::TupExtract(a, f) = e {
        if matches!(**a, Expr::Input(d) if d == depth) {
            return Some(f);
        }
    }
    None
}

/// For an equi-join predicate `INPUT.f1 = INPUT.f2` whose fields come from
/// opposite sides, the two NDVs — the classical `1/max(ndv₁, ndv₂)`
/// selectivity ingredient.
fn eq_join_ndvs(pred: &Pred, left: &Estimate, right: &Estimate) -> Option<(f64, f64)> {
    let Pred::Cmp(l, CmpOp::Eq, r) = pred else {
        return None;
    };
    let (fl, fr) = (extracted_field(l, 0)?, extracted_field(r, 0)?);
    if let (Some(a), Some(b)) = (left.ndv(fl), right.ndv(fr)) {
        return Some((a, b));
    }
    if let (Some(a), Some(b)) = (left.ndv(fr), right.ndv(fl)) {
        return Some((a, b));
    }
    None
}

/// Estimate `e` under `stats`.  `env` carries estimates for binder
/// elements (innermost last): an element's `rows` models the expected size
/// of its nested collections, and its `attr_ndv` the per-attribute NDVs of
/// the collection it was drawn from.
pub fn estimate(e: &Expr, env: &mut Vec<Estimate>, stats: &Statistics) -> Estimate {
    normalized(estimate_raw(e, env, stats))
}

fn estimate_raw(e: &Expr, env: &mut Vec<Estimate>, stats: &Statistics) -> Estimate {
    match e {
        Expr::Input(d) => {
            let idx = env.len().checked_sub(1 + d);
            idx.and_then(|i| env.get(i).cloned())
                .unwrap_or(Estimate::scalar(0.0))
        }
        Expr::Named(n) => {
            let o = stats.object(n);
            Estimate {
                rows: o.rows,
                distinct: o.distinct,
                cost: o.rows,
                attr_ndv: (!o.attr_ndv.is_empty()).then_some(o.attr_ndv),
            }
        }
        Expr::Const(v) => {
            let rows = match v {
                Value::Set(s) => s.len() as f64,
                Value::Array(a) => a.len() as f64,
                _ => 1.0,
            };
            Estimate::plain(rows, rows, 0.0)
        }

        Expr::AddUnion(a, b) | Expr::Union(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: ea.rows + eb.rows,
                distinct: (ea.distinct + eb.distinct) * 0.75,
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
                attr_ndv: merge_add(ea.attr_ndv.as_ref(), eb.attr_ndv.as_ref()),
            }
        }
        Expr::Diff(a, b) | Expr::Intersect(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate {
                rows: (ea.rows * 0.5).max(1.0),
                distinct: (ea.distinct * 0.5).max(1.0),
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
                attr_ndv: ea.attr_ndv,
            }
        }
        Expr::MakeSet(a) | Expr::MakeArr(a) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(1.0, 1.0, ea.cost)
        }
        Expr::SetApply {
            input,
            body,
            only_types,
        } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eb = estimate(body, env, stats);
            env.pop();
            let (frac, filter_cost) = match only_types {
                Some(ts) => {
                    let f: f64 = ts
                        .iter()
                        .map(|t| stats.type_fraction(t))
                        .sum::<f64>()
                        .min(1.0);
                    (f, TYPE_TEST_COST)
                }
                None => (1.0, 0.0),
            };
            let selectivity = body_selectivity(body, stats);
            let rows = ein.rows * frac * selectivity;
            let cost = ein.cost + ein.rows * filter_cost + ein.rows * frac * (1.0 + eb.cost);
            // Distinctness through the body, best information first:
            // identity passes everything through; a pure projection keeps
            // only the named attributes, so distinctness collapses to the
            // product of their NDVs; a single extraction collapses to that
            // attribute's NDV; otherwise fall back to the classical
            // column-cardinality heuristic (projection-shaped bodies keep
            // ~10% distinct).
            if matches!(**body, Expr::Input(0)) {
                return Estimate {
                    rows,
                    distinct: ein.distinct * frac * selectivity,
                    cost,
                    attr_ndv: ein.attr_ndv,
                };
            }
            if let Some(fields) = body_projection_fields(body) {
                if let Some(map) = ein.attr_ndv.as_ref() {
                    if fields.iter().all(|f| map.contains_key(f)) {
                        let kept: BTreeMap<String, f64> =
                            fields.iter().map(|f| (f.clone(), map[f])).collect();
                        let joint = kept.values().product::<f64>();
                        return Estimate {
                            rows,
                            distinct: joint.max(1.0),
                            cost,
                            attr_ndv: Some(kept),
                        };
                    }
                }
            }
            if let Some(f) = extracted_field(body, 0) {
                if let Some(ndv) = ein.ndv(f) {
                    return Estimate {
                        rows,
                        distinct: ndv.max(1.0),
                        cost,
                        attr_ndv: None,
                    };
                }
            }
            let distinct_factor = if body_is_projection(body) { 0.1 } else { 1.0 };
            Estimate {
                rows,
                distinct: (ein.distinct * frac * selectivity * distinct_factor).max(1.0),
                cost,
                attr_ndv: None,
            }
        }
        Expr::SetApplySwitch { input, table } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let avg_body: f64 = if table.is_empty() {
                0.0
            } else {
                table
                    .iter()
                    .map(|(_, b)| estimate(b, env, stats).cost)
                    .sum::<f64>()
                    / table.len() as f64
            };
            env.pop();
            Estimate {
                rows: ein.rows,
                distinct: ein.distinct,
                cost: ein.cost
                    + ein.rows * (TYPE_TEST_COST + SWITCH_COST)
                    + ein.rows * (1.0 + avg_body),
                attr_ndv: None,
            }
        }
        Expr::Group { input, by } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eby = estimate(by, env, stats);
            env.pop();
            // Groups ≈ distinct grouping keys.  When the key is a known
            // attribute its NDV bounds the group count exactly; otherwise
            // assume a quarter of the distinct elements share a key.
            let key_ndv = extracted_field(by, 0).and_then(|f| ein.ndv(f));
            let groups = match key_ndv {
                Some(ndv) => ndv.min(ein.distinct).max(1.0),
                None => (ein.distinct * 0.25).max(1.0),
            };
            Estimate::plain(groups, groups, ein.cost + ein.rows * (1.0 + eby.cost))
        }
        Expr::DupElim(a) => {
            let ea = estimate(a, env, stats);
            Estimate {
                rows: ea.distinct,
                distinct: ea.distinct,
                cost: ea.cost + ea.rows,
                attr_ndv: ea.attr_ndv,
            }
        }
        Expr::Cross(a, b) | Expr::RelCross(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            let rows = ea.rows * eb.rows;
            Estimate {
                rows,
                distinct: ea.distinct * eb.distinct,
                cost: ea.cost + eb.cost + rows,
                attr_ndv: None,
            }
        }
        Expr::RelJoin { left, right, pred } => {
            let (ea, eb) = (estimate(left, env, stats), estimate(right, env, stats));
            env.push(Estimate::scalar(0.0));
            let pc = pred_cost(pred, env, stats);
            env.pop();
            let pairs = ea.rows * eb.rows;
            // Equi-join selectivity from the join attributes' NDVs when
            // both are known (uniformity assumption), else the default.
            let selectivity = match eq_join_ndvs(pred, &ea, &eb) {
                Some((n1, n2)) => 1.0 / n1.max(n2).max(1.0),
                None => stats.default_selectivity,
            };
            let rows = (pairs * selectivity).max(1.0);
            Estimate {
                rows,
                // Join of distinct sides stays distinct under independence:
                // at most d_L·d_R distinct concatenations.
                distinct: (ea.distinct * eb.distinct).min(rows),
                cost: ea.cost + eb.cost + pairs * (1.0 + pc),
                attr_ndv: merge_max(ea.attr_ndv.as_ref(), eb.attr_ndv.as_ref()),
            }
        }
        Expr::SetCollapse(a) => {
            let ea = estimate(a, env, stats);
            let rows = ea.rows * stats.default_avg_nested;
            Estimate::plain(rows, rows * 0.5, ea.cost + rows)
        }

        Expr::Select { input, pred } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let pc = pred_cost(pred, env, stats);
            env.pop();
            let rows = (ein.rows * stats.default_selectivity).max(1.0);
            Estimate {
                rows,
                distinct: (ein.distinct * stats.default_selectivity).max(1.0),
                cost: ein.cost + ein.rows * (1.0 + pc),
                // Selection can only lose attribute values; keeping the
                // input NDVs (capped at `rows` by normalisation) errs
                // toward overestimating distinctness, the safe side for DE.
                attr_ndv: ein.attr_ndv,
            }
        }
        Expr::ArrSelect { input, pred } => {
            let ein = estimate(input, env, stats);
            env.push(Estimate::scalar(0.0));
            let pc = pred_cost(pred, env, stats);
            env.pop();
            Estimate::plain(
                (ein.rows * stats.default_selectivity).max(1.0),
                (ein.distinct * stats.default_selectivity).max(1.0),
                ein.cost + ein.rows * (1.0 + pc),
            )
        }

        Expr::Project(a, _) | Expr::MakeTup(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(1.0, 1.0, ea.cost + 0.5)
        }
        Expr::TupCat(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate::plain(1.0, 1.0, ea.cost + eb.cost + 0.5)
        }
        Expr::TupExtract(a, f) => {
            let ea = estimate(a, env, stats);
            // A field the statistics know about is a scalar attribute;
            // otherwise assume a (possibly nested-collection) field whose
            // expected size is the context's avg_nested.
            let rows = if ea.ndv(f).is_some() {
                1.0
            } else {
                stats.default_avg_nested
            };
            Estimate::plain(rows, rows, ea.cost + 0.25)
        }

        Expr::ArrExtract(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(1.0, 1.0, ea.cost + 0.25)
        }
        Expr::ArrApply { input, body } => {
            let ein = estimate(input, env, stats);
            let elem = element_estimate(input, &ein, env, stats);
            env.push(elem);
            let eb = estimate(body, env, stats);
            env.pop();
            Estimate::plain(
                ein.rows,
                ein.distinct,
                ein.cost + ein.rows * (1.0 + eb.cost),
            )
        }
        Expr::SubArr(a, _, _) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(
                (ea.rows * 0.5).max(1.0),
                ea.distinct,
                ea.cost + ea.rows * 0.5,
            )
        }
        Expr::ArrCat(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate::plain(
                ea.rows + eb.rows,
                ea.distinct + eb.distinct,
                ea.cost + eb.cost + ea.rows + eb.rows,
            )
        }
        Expr::ArrCollapse(a) => {
            let ea = estimate(a, env, stats);
            let rows = ea.rows * stats.default_avg_nested;
            Estimate::plain(rows, rows * 0.5, ea.cost + rows)
        }
        Expr::ArrDiff(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            Estimate::plain(ea.rows, ea.distinct, ea.cost + eb.cost + ea.rows + eb.rows)
        }
        Expr::ArrDupElim(a) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(ea.distinct, ea.distinct, ea.cost + ea.rows)
        }
        Expr::ArrCross(a, b) => {
            let (ea, eb) = (estimate(a, env, stats), estimate(b, env, stats));
            let rows = ea.rows * eb.rows;
            Estimate::plain(rows, rows, ea.cost + eb.cost + rows)
        }

        Expr::MakeRef(a, _) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(1.0, 1.0, ea.cost + MINT_COST)
        }
        Expr::Deref(a) => {
            let ea = estimate(a, env, stats);
            Estimate::plain(1.0, 1.0, ea.cost + DEREF_COST)
        }

        Expr::Comp { input, pred } => {
            let ein = estimate(input, env, stats);
            env.push(ein.clone());
            let pc = pred_cost(pred, env, stats);
            env.pop();
            Estimate {
                rows: ein.rows,
                distinct: ein.distinct,
                cost: ein.cost + pc,
                attr_ndv: ein.attr_ndv,
            }
        }

        Expr::Call(f, args) => {
            let mut cost = 0.0;
            let mut arg0 = Estimate::scalar(0.0);
            for (i, a) in args.iter().enumerate() {
                let ea = estimate(a, env, stats);
                cost += ea.cost;
                if i == 0 {
                    arg0 = ea;
                }
            }
            match f {
                Func::Min | Func::Max | Func::Count | Func::Sum | Func::Avg | Func::The => {
                    Estimate::scalar(cost + arg0.rows)
                }
                _ => Estimate::scalar(cost + 0.25),
            }
        }
    }
}

/// Estimate for one element of a collection.  Structure-aware where it
/// matters: elements of a `GRP` output are themselves multisets whose
/// expected size is `|input| / #groups` (this is what makes "push σ ahead
/// of GRP" correctly appear cheaper — the per-group σ still scans every
/// member), and they inherit the grouped collection's per-attribute NDVs
/// (capped at the member count) so a per-group projection body still
/// collapses distinctness.  Otherwise nested collections get the
/// configured average size.
fn element_estimate(
    input: &Expr,
    ein: &Estimate,
    env: &mut Vec<Estimate>,
    stats: &Statistics,
) -> Estimate {
    // Peel wrappers that preserve (roughly) the element structure.
    let mut cur = input;
    loop {
        match cur {
            Expr::DupElim(i) | Expr::SetCollapse(i) => cur = i,
            Expr::Select { input: i, .. } => cur = i,
            Expr::SetApply { input: i, .. } => cur = i,
            _ => break,
        }
    }
    if let Expr::Group { input: gi, .. } = cur {
        let g_in = estimate(gi, env, stats);
        let members = (g_in.rows / ein.rows.max(1.0)).max(1.0);
        return normalized(Estimate {
            rows: members,
            distinct: members,
            cost: 0.0,
            attr_ndv: g_in.attr_ndv,
        });
    }
    Estimate::plain(stats.default_avg_nested, stats.default_avg_nested, 0.0)
}

/// Does the body act as a filter (COMP at its spine)?  If so, SET_APPLY
/// output shrinks by the default selectivity.
fn body_selectivity(body: &Expr, stats: &Statistics) -> f64 {
    fn has_comp_spine(e: &Expr) -> bool {
        match e {
            Expr::Comp { .. } => true,
            Expr::Project(a, _) | Expr::TupExtract(a, _) | Expr::Deref(a) => has_comp_spine(a),
            Expr::SetApply { input, .. } => has_comp_spine(input),
            _ => false,
        }
    }
    if has_comp_spine(body) {
        stats.default_selectivity
    } else {
        1.0
    }
}

/// Is the body a pure projection chain (π / TUP_EXTRACT / TUP over the
/// element), i.e. guaranteed to be non-injective in general?
fn body_is_projection(body: &Expr) -> bool {
    match body {
        Expr::Project(a, _) | Expr::TupExtract(a, _) | Expr::MakeTup(a, _) => {
            matches!(**a, Expr::Input(_)) || body_is_projection(a)
        }
        Expr::TupCat(a, b) => body_is_projection(a) && body_is_projection(b),
        _ => false,
    }
}

fn pred_cost(p: &Pred, env: &mut Vec<Estimate>, stats: &Statistics) -> f64 {
    match p {
        Pred::Cmp(l, _, r) => 1.0 + estimate(l, env, stats).cost + estimate(r, env, stats).cost,
        Pred::And(a, b) => pred_cost(a, env, stats) + pred_cost(b, env, stats),
        Pred::Not(q) => pred_cost(q, env, stats),
    }
}

/// Total estimated cost of a closed expression.
pub fn cost_of(e: &Expr, stats: &Statistics) -> f64 {
    let mut env = Vec::new();
    estimate(e, &mut env, stats).cost
}

/// Per-node estimates for every node of `e`, keyed by its path (child
/// indices in [`Expr::children`] order — the same keying the evaluator's
/// profile uses, so EXPLAIN ANALYZE can put estimate and measurement side
/// by side).  Binder environments are maintained exactly as [`estimate`]
/// does internally, so a body node's estimate matches what the cost model
/// assumed for it in context.
pub fn estimate_nodes(
    e: &Expr,
    stats: &Statistics,
) -> Vec<(excess_core::profile::NodePath, Estimate)> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    let mut env = Vec::new();
    walk_estimates(e, &mut path, &mut env, stats, &mut out);
    out
}

fn walk_estimates(
    e: &Expr,
    path: &mut Vec<usize>,
    env: &mut Vec<Estimate>,
    stats: &Statistics,
    out: &mut Vec<(excess_core::profile::NodePath, Estimate)>,
) {
    out.push((path.clone(), estimate(e, env, stats)));
    // Children at index ≥ `start` see one extra binder on the environment,
    // mirroring the env pushes in `estimate`'s own arms.
    let binder: Option<(usize, Estimate)> = match e {
        Expr::SetApply { input, .. }
        | Expr::ArrApply { input, .. }
        | Expr::Group { input, .. }
        | Expr::Select { input, .. }
        | Expr::SetApplySwitch { input, .. } => {
            let ein = estimate(input, env, stats);
            Some((1, element_estimate(input, &ein, env, stats)))
        }
        Expr::ArrSelect { .. } => Some((1, Estimate::scalar(0.0))),
        Expr::RelJoin { .. } => Some((2, Estimate::scalar(0.0))),
        Expr::Comp { input, .. } => Some((1, estimate(input, env, stats))),
        _ => None,
    };
    for (i, child) in e.children().into_iter().enumerate() {
        let bound = matches!(binder, Some((start, _)) if i >= start);
        if bound {
            env.push(binder.clone().expect("checked").1);
        }
        path.push(i);
        walk_estimates(child, path, env, stats, out);
        path.pop();
        if bound {
            env.pop();
        }
    }
}

/// Estimated cost of a lowered plan.
///
/// Rows, distinct count, and attribute NDVs are those of the logical
/// plan — kernels never change *what* an operator computes, only how.
/// Cost starts from the logical estimate and, for every
/// [`HashEquiJoin`](excess_core::physical::PhysOp::HashEquiJoin)
/// choice, replaces the nested loop's
/// pair-at-a-time predicate work with hash work: one build/probe pass
/// over each input plus the residual predicate on matching pairs only.
/// The per-pair predicate cost is recovered from the logical model's own
/// join identity (`cost(join) = cost(l) + cost(r) + pairs·(1 + pc)`),
/// and the equi conjunct — never evaluated by the kernel — is deducted
/// from the residual at its modelled cost (one comparison plus two
/// attribute extractions).
pub fn estimate_physical(
    plan: &excess_core::physical::PhysicalPlan,
    stats: &Statistics,
) -> Estimate {
    // Cmp (1.0) + two TupExtract-of-Input (0.25 each): the modelled cost
    // of the `INPUT.f = INPUT.g` conjunct the hash kernel skips.
    const EQUI_CONJUNCT_COST: f64 = 1.5;
    let nodes: BTreeMap<excess_core::profile::NodePath, Estimate> =
        estimate_nodes(&plan.logical, stats).into_iter().collect();
    let mut est = match nodes.get(&Vec::new() as &excess_core::profile::NodePath) {
        Some(root) => root.clone(),
        None => return Estimate::scalar(0.0),
    };
    use excess_core::physical::PhysOp;
    for (path, choice) in &plan.choices {
        match &choice.op {
            PhysOp::HashEquiJoin { .. } | PhysOp::ColumnarHashEquiJoin { .. } => {
                let mut lp = path.clone();
                lp.push(0);
                let mut rp = path.clone();
                rp.push(1);
                let (Some(j), Some(l), Some(r)) = (nodes.get(path), nodes.get(&lp), nodes.get(&rp))
                else {
                    continue;
                };
                let pairs = l.rows * r.rows;
                if pairs <= 0.0 {
                    continue;
                }
                let per_pair = ((j.cost - l.cost - r.cost) / pairs).max(1.0);
                let residual_per_pair = (per_pair - 1.0 - EQUI_CONJUNCT_COST).max(0.0);
                let mut hash_work = l.rows + r.rows + j.rows * (1.0 + residual_per_pair);
                if matches!(choice.op, PhysOp::ColumnarHashEquiJoin { .. }) {
                    // Build and probe run over flat typed key columns:
                    // no per-occurrence value clones or tree compares.
                    hash_work /= COLUMNAR_DISCOUNT;
                }
                est.cost -= (pairs * per_pair - hash_work).max(0.0);
            }
            PhysOp::ColumnarScan { .. }
            | PhysOp::ColumnarHashGroup { .. }
            | PhysOp::ColumnarHashDistinct { .. } => {
                // Refund most of this node's *incremental* cost: the
                // batched kernel replaces the catalog clone and the
                // per-occurrence row walk with typed column sweeps.
                let mut cp = path.clone();
                cp.push(0);
                let (Some(n), Some(child)) = (nodes.get(path), nodes.get(&cp)) else {
                    continue;
                };
                let incremental = (n.cost - child.cost).max(0.0);
                est.cost -= incremental * (1.0 - 1.0 / COLUMNAR_DISCOUNT);
            }
            _ => {}
        }
    }
    est.cost = est.cost.max(0.0);
    est
}

/// Cost of a closed plan under partition-parallel execution with
/// `workers` workers, alongside the serial cost it improves on.
///
/// The model mirrors the engine in `excess-exec`: each operator's
/// *incremental* cost (its total cost minus its closed inputs' costs —
/// i.e. the work of applying the operator, including any per-element
/// binder bodies) is divided by a per-operator speedup, and the closed
/// inputs are costed recursively.  Chunk- and hash-partitionable multiset
/// operators get the full `workers` speedup; `GRP` is bounded by the
/// grouping key's NDV (at most one worker per key partition can be busy);
/// order-sensitive array operators, reference minting, and scalar/tuple
/// plumbing run serially (speedup 1), matching the engine's fallbacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelEstimate {
    /// Worker count the estimate assumes.
    pub workers: usize,
    /// Plain serial cost ([`cost_of`]).
    pub serial_cost: f64,
    /// Estimated cost with partition-parallel execution.
    pub parallel_cost: f64,
    /// `serial_cost / parallel_cost` (1.0 when nothing parallelises).
    pub speedup: f64,
}

/// Estimate the benefit of running `e` with `workers` parallel workers.
pub fn estimate_parallel(e: &Expr, stats: &Statistics, workers: usize) -> ParallelEstimate {
    let serial_cost = cost_of(e, stats);
    let parallel_cost = par_cost(e, stats, workers.max(1));
    let speedup = if parallel_cost > 0.0 {
        serial_cost / parallel_cost
    } else {
        1.0
    };
    ParallelEstimate {
        workers: workers.max(1),
        serial_cost,
        parallel_cost,
        speedup,
    }
}

/// The children of `e` that are closed in `e`'s own environment — the
/// ones the parallel driver recurses into (binder bodies and predicate
/// expressions stay inside the operator's incremental cost).
fn closed_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::SetApply { input, .. }
        | Expr::ArrApply { input, .. }
        | Expr::Group { input, .. }
        | Expr::Select { input, .. }
        | Expr::ArrSelect { input, .. }
        | Expr::Comp { input, .. }
        | Expr::SetApplySwitch { input, .. } => vec![input],
        Expr::RelJoin { left, right, .. } => vec![left, right],
        _ => e.children(),
    }
}

fn par_cost(e: &Expr, stats: &Statistics, workers: usize) -> f64 {
    let w = workers as f64;
    let closed = closed_children(e);
    let own = cost_of(e, stats);
    let child_serial: f64 = closed.iter().map(|c| cost_of(c, stats)).sum();
    let incremental = (own - child_serial).max(0.0);
    let speedup = match e {
        // Chunk- or hash-partitioned multiset operators: full speedup.
        Expr::Select { .. }
        | Expr::SetApply { .. }
        | Expr::SetApplySwitch { .. }
        | Expr::SetCollapse(..)
        | Expr::DupElim(..)
        | Expr::AddUnion(..)
        | Expr::Union(..)
        | Expr::Intersect(..)
        | Expr::Diff(..)
        | Expr::Cross(..)
        | Expr::RelCross(..)
        | Expr::RelJoin { .. } => w,
        // GRP: at most one busy worker per distinct key partition.
        Expr::Group { input, by } => {
            let key_ndv = match &**by {
                Expr::TupExtract(inner, f) if matches!(&**inner, Expr::Input(0)) => {
                    let mut env = Vec::new();
                    let ein = estimate(input, &mut env, stats);
                    ein.attr_ndv.as_ref().and_then(|m| m.get(f).copied())
                }
                _ => None,
            };
            match key_ndv {
                Some(n) => w.min(n.max(1.0)),
                None => w,
            }
        }
        // Everything else (arrays, tuples, scalars, REF, COMP) is serial.
        _ => 1.0,
    };
    let children: f64 = closed.iter().map(|c| par_cost(c, stats, workers)).sum();
    children + incremental / speedup
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::{CmpOp, Expr, Pred};

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_object("S", 1000.0, 100.0, 8.0);
        s.set_object("E", 2000.0, 2000.0, 8.0);
        s
    }

    #[test]
    fn parallel_estimate_speeds_up_selection() {
        let s = stats();
        let pred = Pred::cmp(Expr::input().extract("floor"), CmpOp::Eq, Expr::int(5));
        let plan = Expr::named("S").select(pred);
        let pe = estimate_parallel(&plan, &s, 4);
        assert!(pe.speedup > 1.5, "selection should parallelise: {pe:?}");
        assert!(pe.parallel_cost < pe.serial_cost);
        // One worker means no speedup at all.
        let pe1 = estimate_parallel(&plan, &s, 1);
        assert!((pe1.parallel_cost - pe1.serial_cost).abs() < 1e-9);
    }

    #[test]
    fn group_speedup_is_bounded_by_key_ndv() {
        let mut s = stats();
        s.set_attr_ndv("S", "div", 2.0);
        let plan = Expr::named("S").group_by(Expr::input().extract("div"));
        let bounded = estimate_parallel(&plan, &s, 8);
        // With only 2 distinct keys, 8 workers cannot beat a 2× speedup on
        // the GRP itself; compare against a hypothetical unbounded chunk op
        // of the same incremental cost.
        let select = Expr::named("S").select(Pred::cmp(
            Expr::input().extract("div"),
            CmpOp::Eq,
            Expr::int(1),
        ));
        let unbounded = estimate_parallel(&select, &s, 8);
        assert!(
            bounded.speedup < unbounded.speedup,
            "{bounded:?} vs {unbounded:?}"
        );
        assert!(bounded.speedup <= 2.0 + 1e-9);
    }

    #[test]
    fn array_operators_do_not_parallelise() {
        let s = stats();
        let plan = Expr::named("S")
            .make_set()
            .arr_cat(Expr::named("E").make_set());
        // MakeSet of a multiset is ill-typed at runtime, but the cost model
        // still treats ARR_CAT as serial: parallel == serial.
        let pe = estimate_parallel(&plan, &s, 8);
        assert!((pe.parallel_cost - pe.serial_cost).abs() < 1e-9);
    }

    #[test]
    fn de_early_is_cheaper_with_high_duplication() {
        // DE(SET_APPLY(S)) vs DE(SET_APPLY(DE(S))): with dup factor 10 the
        // second plan's SET_APPLY runs over 100 rows instead of 1000.
        let s = stats();
        let body = Expr::input().extract("name");
        let late = Expr::named("S").set_apply(body.clone()).dup_elim();
        let early = Expr::named("S").dup_elim().set_apply(body).dup_elim();
        assert!(cost_of(&early, &s) < cost_of(&late, &s));
    }

    #[test]
    fn select_before_group_is_cheaper() {
        let s = stats();
        let pred = Pred::cmp(Expr::input().extract("floor"), CmpOp::Eq, Expr::int(5));
        let by = Expr::input().extract("div");
        // GRP then per-group σ (plus the compensation) vs σ then GRP.
        let late = Expr::named("S")
            .group_by(by.clone())
            .set_apply(Expr::Select {
                input: Box::new(Expr::input()),
                pred: pred.clone(),
            });
        let early = Expr::named("S").select(pred).group_by(by);
        assert!(cost_of(&early, &s) < cost_of(&late, &s));
    }

    #[test]
    fn join_cost_dominated_by_pair_count() {
        let s = stats();
        let pred = Pred::eq(Expr::input().extract("a"), Expr::input().extract("b"));
        let j = Expr::named("S").rel_join(Expr::named("E"), pred);
        // 1000 × 2000 pairs dominate the 3000 scan cost.
        assert!(cost_of(&j, &s) > 2_000_000.0);
    }

    #[test]
    fn switch_dispatch_charges_type_tests() {
        let s = stats();
        let arm = Expr::input().extract("name");
        let switch = Expr::SetApplySwitch {
            input: Box::new(Expr::named("S")),
            table: vec![("Person".into(), arm.clone())],
        };
        let plain = Expr::named("S").set_apply(arm);
        assert!(cost_of(&switch, &s) > cost_of(&plain, &s));
    }

    #[test]
    fn projection_collapses_distinct_to_joint_ndv() {
        let mut s = stats();
        s.set_attr_ndv("S", "dept", 10.0);
        s.set_attr_ndv("S", "adv", 5.0);
        s.set_attr_ndv("S", "name", 1000.0);
        let mut env = Vec::new();
        let proj = Expr::named("S").set_apply(Expr::input().project(["dept", "adv"]));
        let est = estimate(&proj, &mut env, &s);
        assert_eq!(est.rows, 1000.0);
        assert_eq!(est.distinct, 50.0, "joint NDV = 10 × 5");
        // The surviving attribute map is restricted to the kept fields.
        let map = est.attr_ndv.expect("projection keeps a map");
        assert_eq!(map.len(), 2);
        assert_eq!(map["dept"], 10.0);
    }

    #[test]
    fn dup_elim_snaps_rows_to_distinct() {
        let mut s = stats();
        s.set_attr_ndv("S", "dept", 10.0);
        let mut env = Vec::new();
        let de = Expr::named("S")
            .set_apply(Expr::input().project(["dept"]))
            .dup_elim();
        let est = estimate(&de, &mut env, &s);
        assert_eq!(est.rows, 10.0);
        assert_eq!(est.distinct, 10.0);
    }

    #[test]
    fn group_count_bounded_by_key_ndv() {
        let mut s = stats();
        s.set_attr_ndv("S", "dept", 7.0);
        let mut env = Vec::new();
        let g = Expr::named("S").group_by(Expr::input().extract("dept"));
        let est = estimate(&g, &mut env, &s);
        assert_eq!(est.rows, 7.0, "one group per distinct key");
    }

    #[test]
    fn equi_join_selectivity_from_ndvs() {
        let mut s = stats();
        s.set_attr_ndv("S", "adv", 50.0);
        s.set_attr_ndv("E", "name", 2000.0);
        let mut env = Vec::new();
        let pred = Pred::cmp(
            Expr::input().extract("adv"),
            CmpOp::Eq,
            Expr::input().extract("name"),
        );
        let j = Expr::named("S").rel_join(Expr::named("E"), pred);
        let est = estimate(&j, &mut env, &s);
        // |S|·|E| / max(ndv) = 1000·2000/2000 = 1000.
        assert_eq!(est.rows, 1000.0);
        // The join output carries both sides' attribute NDVs.
        assert!(est.ndv("adv").is_some() && est.ndv("name").is_some());
    }

    #[test]
    fn union_adds_ndvs_and_distinct_stays_capped() {
        let mut s = stats();
        s.set_attr_ndv("S", "dept", 10.0);
        s.set_attr_ndv("E", "dept", 30.0);
        let mut env = Vec::new();
        let u = Expr::named("S").add_union(Expr::named("E"));
        let est = estimate(&u, &mut env, &s);
        assert_eq!(est.rows, 3000.0);
        assert_eq!(est.ndv("dept"), Some(40.0));
        assert!(est.distinct <= est.rows);
    }

    #[test]
    fn estimates_never_exceed_rows() {
        let mut s = stats();
        s.set_attr_ndv("S", "dept", 999999.0); // deliberately inconsistent
        let mut env = Vec::new();
        let e = Expr::named("S").set_apply(Expr::input().project(["dept"]));
        let est = estimate(&e, &mut env, &s);
        assert!(est.distinct <= est.rows);
        assert!(est.attr_ndv.unwrap()["dept"] <= est.rows);
    }
}
