//! Section 4 dispatch rewrites.
//!
//! The EXCESS translator renders an overridden method invocation on a
//! single receiver as `the(SET_APPLY_SWITCH[…](SET(recv)))` — a
//! per-element switch over a singleton.  When such an invocation is mapped
//! over a whole set, [`RD1LiftSingletonSwitch`] lifts it into one
//! set-level switch (the Section 4 "first approach"), and
//! [`RD2SwitchToUnion`] converts a set-level switch into the Figure 5
//! ⊎-of-type-filtered-SET_APPLYs plan (the "second approach"), exposing
//! the method bodies to every other rule.  Cost decides which form wins.

use crate::dispatch::{build_union, MethodImpl};
use crate::rule::{Rule, RuleCtx};
use excess_core::expr::{Expr, Func};

/// `SET_APPLY[the(SWITCH[T→b…](SET(INPUT)))](X)` → `SWITCH[T→b…](X)`.
pub struct RD1LiftSingletonSwitch;

impl Rule for RD1LiftSingletonSwitch {
    fn name(&self) -> &'static str {
        "dispatch1-lift-singleton-switch"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = e
        else {
            return vec![];
        };
        let Expr::Call(Func::The, args) = &**body else {
            return vec![];
        };
        let [Expr::SetApplySwitch {
            input: sw_in,
            table,
        }] = args.as_slice()
        else {
            return vec![];
        };
        let Expr::MakeSet(recv) = &**sw_in else {
            return vec![];
        };
        if **recv != Expr::input() {
            return vec![];
        }
        // Arm bodies sit under two binders (outer SET_APPLY + switch); the
        // outer element is only reachable as Input(1), which the translator
        // never emits — but check, then unbind one level.
        if table.iter().any(|(_, b)| b.mentions_input(1)) {
            return vec![];
        }
        let lifted = table
            .iter()
            .map(|(t, b)| (t.clone(), b.shift_inputs(1, -1)))
            .collect();
        vec![Expr::SetApplySwitch {
            input: input.clone(),
            table: lifted,
        }]
    }
}

/// `SWITCH[T1→b1; T2→b2](X)` → `SET_APPLY[T1…; b1](X) ⊎ SET_APPLY[T2…;
/// b2](X)` — the Figure 5 plan, with each arm's exact-type coverage
/// computed from the hierarchy.
pub struct RD2SwitchToUnion;

impl Rule for RD2SwitchToUnion {
    fn name(&self) -> &'static str {
        "dispatch2-switch-to-union"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SetApplySwitch { input, table } = e else {
            return vec![];
        };
        if table.is_empty() || input.mints_oids() {
            // The ⊎ plan scans `input` once per arm; a minting input would
            // mint that many times over.
            return vec![];
        }
        // All arm types must exist in the hierarchy for coverage to be
        // computable.
        if table.iter().any(|(t, _)| ctx.registry.lookup(t).is_err()) {
            return vec![];
        }
        let impls: Vec<MethodImpl> = table
            .iter()
            .map(|(t, b)| MethodImpl {
                owner: t.clone(),
                body: b.clone(),
            })
            .collect();
        vec![build_union(ctx.registry, (**input).clone(), &impls)]
    }
}

/// Both dispatch rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![Box::new(RD1LiftSingletonSwitch), Box::new(RD2SwitchToUnion)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_types::{SchemaType, TypeRegistry};
    use std::collections::HashMap;

    fn fixtures() -> (TypeRegistry, HashMap<String, SchemaType>) {
        let mut reg = TypeRegistry::new();
        reg.define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
            .unwrap();
        reg.define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert(
            "P".to_string(),
            SchemaType::set(SchemaType::named("Person")),
        );
        (reg, schemas)
    }

    #[test]
    fn lift_singleton_switch() {
        let (reg, schemas) = fixtures();
        let ctx = RuleCtx {
            registry: &reg,
            schemas: &schemas,
        };
        // The translator's shape for `retrieve (P.f())`.
        let per_elem = Expr::call(
            Func::The,
            vec![Expr::SetApplySwitch {
                input: Box::new(Expr::input().make_set()),
                table: vec![
                    ("Person".into(), Expr::input().extract("name")),
                    ("Employee".into(), Expr::input().extract("salary")),
                ],
            }],
        );
        let e = Expr::named("P").set_apply(per_elem);
        let out = RD1LiftSingletonSwitch.apply(&e, &ctx);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Expr::SetApplySwitch { input, table } => {
                assert_eq!(**input, Expr::named("P"));
                assert_eq!(table.len(), 2);
                assert_eq!(table[0].1, Expr::input().extract("name"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn switch_to_union_covers_types() {
        let (reg, schemas) = fixtures();
        let ctx = RuleCtx {
            registry: &reg,
            schemas: &schemas,
        };
        let e = Expr::SetApplySwitch {
            input: Box::new(Expr::named("P")),
            table: vec![
                ("Person".into(), Expr::input().extract("name")),
                ("Employee".into(), Expr::input().extract("salary")),
            ],
        };
        let out = RD2SwitchToUnion.apply(&e, &ctx);
        assert_eq!(out.len(), 1);
        let s = out[0].to_string();
        assert!(s.contains('⊎'), "{s}");
        assert!(s.contains("SET_APPLY[Person;"), "{s}");
        assert!(s.contains("SET_APPLY[Employee;"), "{s}");
    }
}
