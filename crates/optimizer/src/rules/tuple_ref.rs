//! Appendix §4: rules for tuples, references, and predicates (23–28).

use crate::rule::{
    input_only_via_extract, input_only_via_extract_of, strip_extract, Rule, RuleCtx,
};
use excess_core::expr::{Expr, Pred};

fn bx(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// Rule 23 — commutativity of TUP_CAT: `TUP_CAT(A,B) = TUP_CAT(B,A)`.
///
/// As with rule 3, tuple equality here is field-order-sensitive, so the
/// swap is compensated with a projection restoring the original order;
/// requires statically-known, disjoint field names.
pub struct R23TupCatCommute;

impl Rule for R23TupCatCommute {
    fn name(&self) -> &'static str {
        "rule23-tup-cat-commute"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::TupCat(a, b) = e else { return vec![] };
        let (Some(fa), Some(fb)) = (ctx.tuple_fields(a), ctx.tuple_fields(b)) else {
            return vec![];
        };
        if fa.iter().any(|f| fb.contains(f)) {
            return vec![];
        }
        let order: Vec<String> = fa.iter().chain(fb.iter()).cloned().collect();
        vec![Expr::TupCat(b.clone(), a.clone()).project(order)]
    }
}

/// Rule 24 — distribute π over TUP_CAT:
/// `π_L(TUP_CAT(A,B)) = TUP_CAT(π_{L1}(A), π_{L2}(B))` where `L = L1 L2`,
/// `L1` draws from A's fields and `L2` from B's.  Requires disjoint field
/// names (no priming) and that `L` lists the A-fields before the B-fields
/// (π emits fields in the requested order).
pub struct R24ProjectOverCat;

impl Rule for R24ProjectOverCat {
    fn name(&self) -> &'static str {
        "rule24-project-over-cat"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::Project(inner, l) = e else {
            return vec![];
        };
        let Expr::TupCat(a, b) = &**inner else {
            return vec![];
        };
        let (Some(fa), Some(fb)) = (ctx.tuple_fields(a), ctx.tuple_fields(b)) else {
            return vec![];
        };
        if fa.iter().any(|f| fb.contains(f)) {
            return vec![];
        }
        let split = l.iter().position(|f| fb.contains(f)).unwrap_or(l.len());
        let (l1, l2) = l.split_at(split);
        if !l1.iter().all(|f| fa.contains(f)) || !l2.iter().all(|f| fb.contains(f)) {
            return vec![];
        }
        vec![Expr::TupCat(
            bx(a.as_ref().clone().project(l1.to_vec())),
            bx(b.as_ref().clone().project(l2.to_vec())),
        )]
    }
}

/// Rule 25 — extracting a field from a TUP_CAT:
/// `TUP_EXTRACT_f(TUP_CAT(A,B)) = TUP_EXTRACT_f(A)` if `f` is a field of
/// A (and symmetrically for B when names are disjoint).
pub struct R25ExtractFromCat;

impl Rule for R25ExtractFromCat {
    fn name(&self) -> &'static str {
        "rule25-extract-from-tup-cat"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::TupExtract(inner, f) = e else {
            return vec![];
        };
        let Expr::TupCat(a, b) = &**inner else {
            return vec![];
        };
        let Some(fa) = ctx.tuple_fields(a) else {
            return vec![];
        };
        if fa.contains(f) {
            return vec![Expr::TupExtract(a.clone(), f.clone())];
        }
        // The field may come from B, provided it was not primed.
        if let Some(fb) = ctx.tuple_fields(b) {
            if fb.contains(f) && !fa.contains(f) {
                return vec![Expr::TupExtract(b.clone(), f.clone())];
            }
        }
        vec![]
    }
}

/// Rule 26 — push an expression inside COMP:
/// `E(COMP_{P1}(A)) = COMP_{P2}(E(A))` provided `P1(INPUT) = P2(E(INPUT))`.
///
/// "A powerful generalization of commuting selections/projections in
/// relational algebra."  The general rule quantifies over all factorings;
/// we implement the two decidable instances the Figure 11 example needs:
///
/// * `π_L(COMP_P(A)) = COMP_P(π_L(A))` when `P` touches only fields in `L`;
/// * `TUP_EXTRACT_f(COMP_P(A)) = COMP_{P'}(TUP_EXTRACT_f(A))` when `P`
///   touches the input only through field `f` (`P'` strips the extract).
pub struct R26PushIntoComp;

impl Rule for R26PushIntoComp {
    fn name(&self) -> &'static str {
        "rule26-push-into-comp"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        match e {
            Expr::Project(inner, l) => {
                if let Expr::Comp { input, pred } = &**inner {
                    let ok = pred
                        .exprs()
                        .iter()
                        .all(|x| input_only_via_extract_of(x, 0, l));
                    if ok {
                        out.push(Expr::Comp {
                            input: bx(input.as_ref().clone().project(l.clone())),
                            pred: pred.clone(),
                        });
                    }
                }
            }
            Expr::TupExtract(inner, f) => {
                if let Expr::Comp { input, pred } = &**inner {
                    let ok = pred.exprs().iter().all(|x| input_only_via_extract(x, 0, f));
                    if ok {
                        let pred2 = pred.map_exprs(&mut |x| strip_extract(x, 0, f));
                        out.push(Expr::Comp {
                            input: bx(input.as_ref().clone().extract(f.clone())),
                            pred: pred2,
                        });
                    }
                }
            }
            // Reverse: COMP_P(π_L(A)) → π_L(COMP_P(A)) — always sound (the
            // predicate can only see surviving fields).
            Expr::Comp { input, pred } => {
                if let Expr::Project(a, l) = &**input {
                    let ok = pred
                        .exprs()
                        .iter()
                        .all(|x| input_only_via_extract_of(x, 0, l));
                    if ok {
                        out.push(
                            Expr::Comp {
                                input: a.clone(),
                                pred: pred.clone(),
                            }
                            .project(l.clone()),
                        );
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Rule 27 — combine successive COMPs into a conjunction (both directions):
/// `COMP_{P1}(COMP_{P2}(A)) = COMP_{P2 ∧ P1}(A)`.
///
/// Caveat (documented): with `unk`-valued predicates the nested form can
/// return `unk` where the conjunction returns `dne` (Kleene `U ∧ F = F`);
/// the rule is tagged [`Rule::assumes_null_free`].
pub struct R27CombineComps;

impl Rule for R27CombineComps {
    fn name(&self) -> &'static str {
        "rule27-combine-comps"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Comp { input, pred: p1 } = e {
            if let Expr::Comp { input: a, pred: p2 } = &**input {
                // Evaluation order: inner P2 first, then P1.
                out.push(Expr::Comp {
                    input: a.clone(),
                    pred: p2.clone().and(p1.clone()),
                });
            }
            // Reverse: split a top-level conjunction.
            if let Pred::And(p2, p1b) = p1 {
                out.push(Expr::Comp {
                    input: bx(Expr::Comp {
                        input: input.clone(),
                        pred: (**p2).clone(),
                    }),
                    pred: (**p1b).clone(),
                });
            }
        }
        out
    }
}

/// Rule 28 — invertibility of REF and DEREF:
/// `DEREF(REF(A)) = A` (always sound) and `REF(DEREF(A)) = A` (sound
/// modulo object identity: the unrewritten plan mints a fresh OID whose
/// referent is value-equal — see `excess_core::canon`).
pub struct R28RefDeref;

impl Rule for R28RefDeref {
    fn name(&self) -> &'static str {
        "rule28-ref-deref-cancel"
    }
    fn modulo_identity(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        match e {
            Expr::Deref(inner) => {
                if let Expr::MakeRef(a, _) = &**inner {
                    return vec![(**a).clone()];
                }
                vec![]
            }
            Expr::MakeRef(inner, _) => {
                if let Expr::Deref(a) = &**inner {
                    return vec![(**a).clone()];
                }
                vec![]
            }
            _ => vec![],
        }
    }
}

/// `DEREF(REF(A)) = A` only — the direction that is sound even under
/// strict OID identity (kept separate so the engine's identity-preserving
/// mode still benefits).
pub struct R28aDerefOfRef;

impl Rule for R28aDerefOfRef {
    fn name(&self) -> &'static str {
        "rule28a-deref-of-ref"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::Deref(inner) = e {
            if let Expr::MakeRef(a, _) = &**inner {
                return vec![(**a).clone()];
            }
        }
        vec![]
    }
}

/// All §4 rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(R23TupCatCommute),
        Box::new(R24ProjectOverCat),
        Box::new(R25ExtractFromCat),
        Box::new(R26PushIntoComp),
        Box::new(R27CombineComps),
        Box::new(R28RefDeref),
        Box::new(R28aDerefOfRef),
    ]
}
