//! The transformation-rule catalogue, organised as in the paper's Appendix:
//! §2 multisets (rules 1–15), §3 arrays (16–22), §4 tuples/references/
//! predicates (23–28), plus classical relational rules recast in this
//! algebra.

pub mod array;
pub mod dispatch;
pub mod multiset;
pub mod relational;
pub mod tuple_ref;

use crate::rule::Rule;

/// Every rule in the catalogue.
pub fn all() -> Vec<Box<dyn Rule>> {
    let mut v = multiset::all();
    v.extend(array::all());
    v.extend(tuple_ref::all());
    v.extend(relational::all());
    v.extend(dispatch::all());
    v
}
