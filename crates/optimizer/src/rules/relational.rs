//! Classical relational rules expressed in the EXCESS algebra.
//!
//! The paper notes (Appendix §4) that "the rules for pushing relational
//! selection and projection ahead of a relational join are consequences of
//! rules 13, 24, and 27"; this module provides them as direct, composed
//! rules so the heuristic optimizer pass can fire them in one step, plus a
//! handful of always-sound cleanups.

use crate::rule::{input_only_via_extract_of, Rule, RuleCtx};
use excess_core::expr::{Expr, Pred};

fn bx(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// `σ_{P1}(σ_{P2}(A)) = σ_{P2 ∧ P1}(A)` — the σ-level image of rule 27
/// (same null-free caveat), both directions.
pub struct RR1CombineSelects;

impl Rule for RR1CombineSelects {
    fn name(&self) -> &'static str {
        "rel1-combine-selects"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Select { input, pred: p1 } = e {
            if let Expr::Select { input: a, pred: p2 } = &**input {
                out.push(Expr::Select {
                    input: a.clone(),
                    pred: p2.clone().and(p1.clone()),
                });
            }
            if let Pred::And(p2, p1b) = p1 {
                out.push(Expr::Select {
                    input: bx(Expr::Select {
                        input: input.clone(),
                        pred: (**p2).clone(),
                    }),
                    pred: (**p1b).clone(),
                });
            }
        }
        out
    }
}

/// Push a join-predicate conjunct that references only one side's fields
/// down into that side as a selection:
/// `rel_join_{P1 ∧ P2}(A, B) = rel_join_{P2}(σ_{P1}(A), B)` when `P1`
/// touches only A's fields (requires disjoint field names so the
/// concatenated tuple's field provenance is unambiguous); symmetrically
/// for B.
pub struct RR2PushSelectIntoJoin;

impl Rule for RR2PushSelectIntoJoin {
    fn name(&self) -> &'static str {
        "rel2-push-select-into-join"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::RelJoin {
            left,
            right,
            pred: Pred::And(p1, p2),
        } = e
        else {
            return vec![];
        };
        let (Some(fa), Some(fb)) = (ctx.set_elem_fields(left), ctx.set_elem_fields(right)) else {
            return vec![];
        };
        if fa.iter().any(|f| fb.contains(f)) {
            return vec![];
        }
        let mut out = Vec::new();
        // P1 references only A-fields → filter A first.
        if p1
            .exprs()
            .iter()
            .all(|x| input_only_via_extract_of(x, 0, &fa))
        {
            out.push(Expr::RelJoin {
                left: bx(Expr::Select {
                    input: left.clone(),
                    pred: (**p1).clone(),
                }),
                right: right.clone(),
                pred: (**p2).clone(),
            });
        }
        // P1 references only B-fields → filter B first.
        if p1
            .exprs()
            .iter()
            .all(|x| input_only_via_extract_of(x, 0, &fb))
        {
            out.push(Expr::RelJoin {
                left: left.clone(),
                right: bx(Expr::Select {
                    input: right.clone(),
                    pred: (**p1).clone(),
                }),
                pred: (**p2).clone(),
            });
        }
        out
    }
}

/// `σ_P(A ⊎ B) = σ_P(A) ⊎ σ_P(B)` — the σ face of rule 12.
pub struct RR3SelectOverUnion;

impl Rule for RR3SelectOverUnion {
    fn name(&self) -> &'static str {
        "rel3-select-over-union"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::Select { input, pred } = e else {
            return vec![];
        };
        let Expr::AddUnion(a, b) = &**input else {
            return vec![];
        };
        vec![Expr::AddUnion(
            bx(Expr::Select {
                input: a.clone(),
                pred: pred.clone(),
            }),
            bx(Expr::Select {
                input: b.clone(),
                pred: pred.clone(),
            }),
        )]
    }
}

/// `DE(DE(A)) = DE(A)` — idempotence of duplicate elimination.
pub struct RR4DeIdempotent;

impl Rule for RR4DeIdempotent {
    fn name(&self) -> &'static str {
        "rel4-de-idempotent"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::DupElim(inner) = e {
            if matches!(**inner, Expr::DupElim(_)) {
                return vec![(**inner).clone()];
            }
        }
        vec![]
    }
}

/// Push DE below a *duplicate-respecting projection-like* SET_APPLY when
/// followed by DE anyway:
/// `DE(SET_APPLY_E(A)) = DE(SET_APPLY_E(DE(A)))` — sound for any `E`
/// (deterministic bodies map equal inputs to equal outputs, so the outer
/// DE erases any cardinality differences).  This is the Figure 7→8 "push
/// DE past the join input" building block.
pub struct RR5DeEarly;

impl Rule for RR5DeEarly {
    fn name(&self) -> &'static str {
        "rel5-de-early"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::DupElim(inner) = e {
            if let Expr::SetApply {
                input,
                body,
                only_types,
            } = &**inner
            {
                if !body.mints_oids() && !matches!(**input, Expr::DupElim(_)) {
                    out.push(Expr::DupElim(bx(Expr::SetApply {
                        input: bx(Expr::DupElim(input.clone())),
                        body: body.clone(),
                        only_types: only_types.clone(),
                    })));
                }
            }
        }
        out
    }
}

/// Push a selection inside a SET_COLLAPSE (the σ face of rule 14):
/// `σ_P(SET_COLLAPSE(A)) = SET_COLLAPSE(SET_APPLY_{σ_P}(A))` — filter each
/// inner multiset before flattening (both directions).
pub struct RR6SelectThroughCollapse;

impl Rule for RR6SelectThroughCollapse {
    fn name(&self) -> &'static str {
        "rel6-select-through-collapse"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Select { input, pred } = e {
            if let Expr::SetCollapse(a) = &**input {
                // The σ moves one binder deeper: free refs shift up.
                let inner = Expr::Select {
                    input: bx(Expr::input()),
                    pred: pred.map_exprs(&mut |x| x.shift_inputs(1, 1)),
                };
                out.push(Expr::SetCollapse(bx(a.as_ref().clone().set_apply(inner))));
            }
        }
        if let Expr::SetCollapse(outer) = e {
            if let Expr::SetApply {
                input: a,
                body,
                only_types: None,
            } = &**outer
            {
                if let Expr::Select { input: si, pred } = &**body {
                    if **si == Expr::input() && !pred.exprs().iter().any(|x| x.mentions_input(1)) {
                        out.push(Expr::Select {
                            input: bx(Expr::SetCollapse(a.clone())),
                            pred: pred.map_exprs(&mut |x| x.shift_inputs(1, -1)),
                        });
                    }
                }
            }
        }
        out
    }
}

/// All relational rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(RR1CombineSelects),
        Box::new(RR2PushSelectIntoJoin),
        Box::new(RR3SelectOverUnion),
        Box::new(RR4DeIdempotent),
        Box::new(RR5DeEarly),
        Box::new(RR6SelectThroughCollapse),
    ]
}
