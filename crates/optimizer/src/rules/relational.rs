//! Classical relational rules expressed in the EXCESS algebra.
//!
//! The paper notes (Appendix §4) that "the rules for pushing relational
//! selection and projection ahead of a relational join are consequences of
//! rules 13, 24, and 27"; this module provides them as direct, composed
//! rules so the heuristic optimizer pass can fire them in one step, plus a
//! handful of always-sound cleanups.

use crate::rule::{input_only_via_extract_of, Rule, RuleCtx};
use excess_core::expr::{Expr, Pred};

fn bx(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// `σ_{P1}(σ_{P2}(A)) = σ_{P2 ∧ P1}(A)` — the σ-level image of rule 27
/// (same null-free caveat), both directions.
pub struct RR1CombineSelects;

impl Rule for RR1CombineSelects {
    fn name(&self) -> &'static str {
        "rel1-combine-selects"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Select { input, pred: p1 } = e {
            if let Expr::Select { input: a, pred: p2 } = &**input {
                out.push(Expr::Select {
                    input: a.clone(),
                    pred: p2.clone().and(p1.clone()),
                });
            }
            if let Pred::And(p2, p1b) = p1 {
                out.push(Expr::Select {
                    input: bx(Expr::Select {
                        input: input.clone(),
                        pred: (**p2).clone(),
                    }),
                    pred: (**p1b).clone(),
                });
            }
        }
        out
    }
}

/// Push a join-predicate conjunct that references only one side's fields
/// down into that side as a selection:
/// `rel_join_{P1 ∧ P2}(A, B) = rel_join_{P2}(σ_{P1}(A), B)` when `P1`
/// touches only A's fields (requires disjoint field names so the
/// concatenated tuple's field provenance is unambiguous); symmetrically
/// for B.
pub struct RR2PushSelectIntoJoin;

impl Rule for RR2PushSelectIntoJoin {
    fn name(&self) -> &'static str {
        "rel2-push-select-into-join"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::RelJoin {
            left,
            right,
            pred: Pred::And(p1, p2),
        } = e
        else {
            return vec![];
        };
        let (Some(fa), Some(fb)) = (ctx.set_elem_fields(left), ctx.set_elem_fields(right)) else {
            return vec![];
        };
        if fa.iter().any(|f| fb.contains(f)) {
            return vec![];
        }
        let mut out = Vec::new();
        // P1 references only A-fields → filter A first.
        if p1
            .exprs()
            .iter()
            .all(|x| input_only_via_extract_of(x, 0, &fa))
        {
            out.push(Expr::RelJoin {
                left: bx(Expr::Select {
                    input: left.clone(),
                    pred: (**p1).clone(),
                }),
                right: right.clone(),
                pred: (**p2).clone(),
            });
        }
        // P1 references only B-fields → filter B first.
        if p1
            .exprs()
            .iter()
            .all(|x| input_only_via_extract_of(x, 0, &fb))
        {
            out.push(Expr::RelJoin {
                left: left.clone(),
                right: bx(Expr::Select {
                    input: right.clone(),
                    pred: (**p1).clone(),
                }),
                pred: (**p2).clone(),
            });
        }
        out
    }
}

/// `σ_P(A ⊎ B) = σ_P(A) ⊎ σ_P(B)` — the σ face of rule 12.
pub struct RR3SelectOverUnion;

impl Rule for RR3SelectOverUnion {
    fn name(&self) -> &'static str {
        "rel3-select-over-union"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::Select { input, pred } = e else {
            return vec![];
        };
        let Expr::AddUnion(a, b) = &**input else {
            return vec![];
        };
        vec![Expr::AddUnion(
            bx(Expr::Select {
                input: a.clone(),
                pred: pred.clone(),
            }),
            bx(Expr::Select {
                input: b.clone(),
                pred: pred.clone(),
            }),
        )]
    }
}

/// `DE(DE(A)) = DE(A)` — idempotence of duplicate elimination.
pub struct RR4DeIdempotent;

impl Rule for RR4DeIdempotent {
    fn name(&self) -> &'static str {
        "rel4-de-idempotent"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::DupElim(inner) = e {
            if matches!(**inner, Expr::DupElim(_)) {
                return vec![(**inner).clone()];
            }
        }
        vec![]
    }
}

/// Push DE below a *duplicate-respecting projection-like* SET_APPLY when
/// followed by DE anyway:
/// `DE(SET_APPLY_E(A)) = DE(SET_APPLY_E(DE(A)))` — sound for any `E`
/// (deterministic bodies map equal inputs to equal outputs, so the outer
/// DE erases any cardinality differences).  This is the Figure 7→8 "push
/// DE past the join input" building block.
///
/// The composed join form projects *and* deduplicates each join input
/// down to the fields the outer projection and the join predicate need:
/// `DE(SET_APPLY_π(rel_join_P(A, B))) =
///  DE(SET_APPLY_π(rel_join_P(DE(SET_APPLY_{π_A}(A)),
///                            DE(SET_APPLY_{π_B}(B)))))`
/// when field provenance is unambiguous (statically known, disjoint
/// side schemas), `P` touches only known fields, and `π` is a pure
/// projection.  Sound because `π_A`/`π_B` keep every field `P` or `π`
/// reads, so the same set of projected result tuples survives — only
/// multiplicities change, and the outer DE erases those.  This single
/// firing is the paper's Figure 7 → Figure 8 step: DE now runs over
/// `|A| + |B|` occurrences instead of `|A|·|B|`.
pub struct RR5DeEarly;

impl Rule for RR5DeEarly {
    fn name(&self) -> &'static str {
        "rel5-de-early"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::DupElim(inner) = e {
            if let Expr::SetApply {
                input,
                body,
                only_types,
            } = &**inner
            {
                if !body.mints_oids() && !matches!(**input, Expr::DupElim(_)) {
                    out.push(Expr::DupElim(bx(Expr::SetApply {
                        input: bx(Expr::DupElim(input.clone())),
                        body: body.clone(),
                        only_types: only_types.clone(),
                    })));
                }
                if only_types.is_none() {
                    if let Some(rw) = de_into_join_inputs(input, body, ctx) {
                        out.push(rw);
                    }
                }
            }
        }
        out
    }
}

/// The composed Figure 7→8 rewrite body of [`RR5DeEarly`]; `None` when a
/// side condition fails.
fn de_into_join_inputs(input: &Expr, body: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::RelJoin { left, right, pred } = input else {
        return None;
    };
    // Already pushed (either side deduplicated) → don't fire again.
    if matches!(**left, Expr::DupElim(_)) || matches!(**right, Expr::DupElim(_)) {
        return None;
    }
    let pfields = projection_fields(body)?;
    let (fa, fb) = (ctx.set_elem_fields(left)?, ctx.set_elem_fields(right)?);
    if fa.iter().any(|f| fb.contains(f)) {
        return None;
    }
    // The predicate may only read statically-known fields (and must not
    // mint: it runs once per pair, and the pair count changes).
    let all: Vec<String> = fa.iter().chain(fb.iter()).cloned().collect();
    if !pred
        .exprs()
        .iter()
        .all(|x| input_only_via_extract_of(x, 0, &all))
        || pred.exprs().iter().any(|x| x.mints_oids())
    {
        return None;
    }
    if !pfields.iter().all(|f| all.contains(f)) {
        return None;
    }
    let mut pred_fields = Vec::new();
    for x in pred.exprs() {
        collect_extracted_fields(x, 0, &mut pred_fields);
    }
    let needed = |side: &[String]| -> Vec<String> {
        side.iter()
            .filter(|f| pfields.contains(f) || pred_fields.contains(f))
            .cloned()
            .collect()
    };
    let project_dedup = |side: &Expr, fields: Vec<String>| {
        Expr::DupElim(bx(Expr::SetApply {
            input: bx(side.clone()),
            body: bx(Expr::input().project(fields)),
            only_types: None,
        }))
    };
    Some(Expr::DupElim(bx(Expr::SetApply {
        input: bx(Expr::RelJoin {
            left: bx(project_dedup(left, needed(&fa))),
            right: bx(project_dedup(right, needed(&fb))),
            pred: pred.clone(),
        }),
        body: bx(body.clone()),
        only_types: None,
    })))
}

/// `π_fields(INPUT)` shape at binder depth 0: the projected field list.
fn projection_fields(body: &Expr) -> Option<&[String]> {
    if let Expr::Project(a, fields) = body {
        if matches!(**a, Expr::Input(0)) {
            return Some(fields);
        }
    }
    None
}

/// Collect every field `f` extracted from the binder at `depth` as
/// `TUP_EXTRACT_f(Input(depth))`, tracking binder depth like
/// [`input_only_via_extract_of`] does.
fn collect_extracted_fields(e: &Expr, depth: usize, out: &mut Vec<String>) {
    if let Expr::TupExtract(inner, f) = e {
        if matches!(**inner, Expr::Input(d) if d == depth) && !out.contains(f) {
            out.push(f.clone());
        }
    }
    match e {
        Expr::SetApply { input, body, .. } | Expr::ArrApply { input, body } => {
            collect_extracted_fields(input, depth, out);
            collect_extracted_fields(body, depth + 1, out);
        }
        Expr::Group { input, by } => {
            collect_extracted_fields(input, depth, out);
            collect_extracted_fields(by, depth + 1, out);
        }
        Expr::Comp { input, pred } => {
            collect_extracted_fields(input, depth, out);
            for x in pred.exprs() {
                collect_extracted_fields(x, depth + 1, out);
            }
        }
        Expr::Select { input, pred } | Expr::ArrSelect { input, pred } => {
            collect_extracted_fields(input, depth, out);
            for x in pred.exprs() {
                collect_extracted_fields(x, depth + 1, out);
            }
        }
        Expr::RelJoin { left, right, pred } => {
            collect_extracted_fields(left, depth, out);
            collect_extracted_fields(right, depth, out);
            for x in pred.exprs() {
                collect_extracted_fields(x, depth + 1, out);
            }
        }
        Expr::SetApplySwitch { input, table } => {
            collect_extracted_fields(input, depth, out);
            for (_, b) in table {
                collect_extracted_fields(b, depth + 1, out);
            }
        }
        _ => {
            for c in e.children() {
                collect_extracted_fields(c, depth, out);
            }
        }
    }
}

/// Push a selection inside a SET_COLLAPSE (the σ face of rule 14):
/// `σ_P(SET_COLLAPSE(A)) = SET_COLLAPSE(SET_APPLY_{σ_P}(A))` — filter each
/// inner multiset before flattening (both directions).
pub struct RR6SelectThroughCollapse;

impl Rule for RR6SelectThroughCollapse {
    fn name(&self) -> &'static str {
        "rel6-select-through-collapse"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Select { input, pred } = e {
            if let Expr::SetCollapse(a) = &**input {
                // The σ moves one binder deeper: free refs shift up.
                let inner = Expr::Select {
                    input: bx(Expr::input()),
                    pred: pred.map_exprs(&mut |x| x.shift_inputs(1, 1)),
                };
                out.push(Expr::SetCollapse(bx(a.as_ref().clone().set_apply(inner))));
            }
        }
        if let Expr::SetCollapse(outer) = e {
            if let Expr::SetApply {
                input: a,
                body,
                only_types: None,
            } = &**outer
            {
                if let Expr::Select { input: si, pred } = &**body {
                    if **si == Expr::input() && !pred.exprs().iter().any(|x| x.mentions_input(1)) {
                        out.push(Expr::Select {
                            input: bx(Expr::SetCollapse(a.clone())),
                            pred: pred.map_exprs(&mut |x| x.shift_inputs(1, -1)),
                        });
                    }
                }
            }
        }
        out
    }
}

/// `SET_APPLY_{INPUT}(A) = A` — mapping the identity over a multiset is a
/// no-op.  Cleanup rule: strips the vestigial per-group identity apply so
/// Figures 6, 7, and 8 all converge on one canonical optimized plan.
pub struct RR7IdentityApply;

impl Rule for RR7IdentityApply {
    fn name(&self) -> &'static str {
        "rel7-identity-apply"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = e
        {
            if matches!(**body, Expr::Input(0)) {
                return vec![(**input).clone()];
            }
        }
        vec![]
    }
}

/// All relational rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(RR1CombineSelects),
        Box::new(RR2PushSelectIntoJoin),
        Box::new(RR3SelectOverUnion),
        Box::new(RR4DeIdempotent),
        Box::new(RR5DeEarly),
        Box::new(RR6SelectThroughCollapse),
        Box::new(RR7IdentityApply),
    ]
}
