//! Appendix §2: transformation rules for multiset operators (rules 1–15).
//!
//! Rule numbering follows the paper.  Where the paper's statement needs a
//! compensating term to be exactly semantics-preserving in this engine
//! (empty groups in rules 9/10, see below), the rewrite emits the
//! compensated form and the deviation is documented on the rule.

use crate::rule::{input_only_via_extract, strip_extract, Rule, RuleCtx};
use excess_core::expr::{CmpOp, Expr, Func, Pred};

fn bx(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// Rule 1 — binary operator associativity for ⊎, ∪, ∩ (both directions):
/// `A <op> (B <op> C) = (A <op> B) <op> C`.
pub struct R1Associativity;

impl Rule for R1Associativity {
    fn name(&self) -> &'static str {
        "rule1-assoc"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        match e {
            Expr::AddUnion(a, bc) => {
                if let Expr::AddUnion(b, c) = &**bc {
                    out.push(Expr::AddUnion(
                        bx(Expr::AddUnion(a.clone(), b.clone())),
                        c.clone(),
                    ));
                }
                if let Expr::AddUnion(a2, b2) = &**a {
                    out.push(Expr::AddUnion(
                        a2.clone(),
                        bx(Expr::AddUnion(b2.clone(), bc.clone())),
                    ));
                }
            }
            Expr::Union(a, bc) => {
                if let Expr::Union(b, c) = &**bc {
                    out.push(Expr::Union(
                        bx(Expr::Union(a.clone(), b.clone())),
                        c.clone(),
                    ));
                }
                if let Expr::Union(a2, b2) = &**a {
                    out.push(Expr::Union(
                        a2.clone(),
                        bx(Expr::Union(b2.clone(), bc.clone())),
                    ));
                }
            }
            Expr::Intersect(a, bc) => {
                if let Expr::Intersect(b, c) = &**bc {
                    out.push(Expr::Intersect(
                        bx(Expr::Intersect(a.clone(), b.clone())),
                        c.clone(),
                    ));
                }
                if let Expr::Intersect(a2, b2) = &**a {
                    out.push(Expr::Intersect(
                        a2.clone(),
                        bx(Expr::Intersect(b2.clone(), bc.clone())),
                    ));
                }
            }
            _ => {}
        }
        out
    }
}

/// Rule 2 — distribute × over ⊎ (both directions):
/// `A × (B ⊎ C) = (A × B) ⊎ (A × C)`, and symmetrically on the left.
pub struct R2DistributeCrossUnion;

impl Rule for R2DistributeCrossUnion {
    fn name(&self) -> &'static str {
        "rule2-distribute-cross-over-union"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        match e {
            Expr::Cross(a, bc) => {
                // Distributing duplicates one operand; a REF-minting
                // operand would mint twice (fresh OIDs are observable).
                if let Expr::AddUnion(b, c) = &**bc {
                    if !a.mints_oids() {
                        out.push(Expr::AddUnion(
                            bx(Expr::Cross(a.clone(), b.clone())),
                            bx(Expr::Cross(a.clone(), c.clone())),
                        ));
                    }
                }
                if let Expr::AddUnion(b, c) = &**a {
                    if !bc.mints_oids() {
                        out.push(Expr::AddUnion(
                            bx(Expr::Cross(b.clone(), bc.clone())),
                            bx(Expr::Cross(c.clone(), bc.clone())),
                        ));
                    }
                }
            }
            // Factor back out: (A × B) ⊎ (A × C) → A × (B ⊎ C).
            Expr::AddUnion(l, r) => {
                if let (Expr::Cross(a1, b), Expr::Cross(a2, c)) = (&**l, &**r) {
                    if a1 == a2 {
                        out.push(Expr::Cross(
                            a1.clone(),
                            bx(Expr::AddUnion(b.clone(), c.clone())),
                        ));
                    }
                    if b == c {
                        out.push(Expr::Cross(
                            bx(Expr::AddUnion(a1.clone(), a2.clone())),
                            b.clone(),
                        ));
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Rule 3 — cross product commutativity: `rel_×(A, B) = rel_×(B, A)`.
///
/// In this engine tuple equality is field-*order*-sensitive, so the bare
/// swap is compensated with a projection restoring the original field
/// order.  The rule applies only when the two sides' field names are
/// statically known and disjoint (otherwise the clash-priming renames
/// cannot be undone by a projection).
pub struct R3RelCrossCommute;

impl Rule for R3RelCrossCommute {
    fn name(&self) -> &'static str {
        "rule3-rel-cross-commute"
    }
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::RelCross(a, b) = e else {
            return vec![];
        };
        let (Some(fa), Some(fb)) = (ctx.set_elem_fields(a), ctx.set_elem_fields(b)) else {
            return vec![];
        };
        if fa.iter().any(|f| fb.contains(f)) {
            return vec![];
        }
        let order: Vec<String> = fa.iter().chain(fb.iter()).cloned().collect();
        vec![Expr::RelCross(b.clone(), a.clone()).set_apply(Expr::input().project(order))]
    }
}

/// Rule 4 — breaking down a disjunctive selection:
/// `σ_{P1 ∨ P2}(A) = σ_{P1}(A) ∪ σ_{P2}(A)` (∨ is encoded ¬(¬P1 ∧ ¬P2)).
///
/// Caveat (documented, not in the paper): with `unk`-producing predicates
/// the two sides can differ; see [`Rule::assumes_null_free`].
pub struct R4DisjunctiveSelect;

impl Rule for R4DisjunctiveSelect {
    fn name(&self) -> &'static str {
        "rule4-disjunctive-select"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::Select {
            input,
            pred: Pred::Not(q),
        } = e
        {
            if input.mints_oids() || q.exprs().iter().any(|x| x.mints_oids()) {
                return out; // duplicating a minting input/pred is observable
            }
            if let Pred::And(na, nb) = &**q {
                if let (Pred::Not(p1), Pred::Not(p2)) = (&**na, &**nb) {
                    out.push(Expr::Union(
                        bx(Expr::Select {
                            input: input.clone(),
                            pred: (**p1).clone(),
                        }),
                        bx(Expr::Select {
                            input: input.clone(),
                            pred: (**p2).clone(),
                        }),
                    ));
                }
            }
        }
        // Reverse: σ_P1(A) ∪ σ_P2(A) → σ_{P1∨P2}(A).
        if let Expr::Union(l, r) = e {
            if let (
                Expr::Select {
                    input: i1,
                    pred: p1,
                },
                Expr::Select {
                    input: i2,
                    pred: p2,
                },
            ) = (&**l, &**r)
            {
                if i1 == i2 {
                    let disj =
                        Pred::Not(bx2(Pred::And(bx2(p1.clone().not()), bx2(p2.clone().not()))));
                    out.push(Expr::Select {
                        input: i1.clone(),
                        pred: disj,
                    });
                }
            }
        }
        out
    }
}

fn bx2(p: Pred) -> Box<Pred> {
    Box::new(p)
}

/// Rule 5 — eliminating a cross product under DE:
/// `DE(SET_APPLY_E(A × B)) = DE(SET_APPLY_{E'}(A))` when `E` applies only
/// to A (all INPUT uses go through `fst`); `E'` strips the `fst`
/// projection.
///
/// Caveat (classical): assumes `B` is non-empty — the paper states the
/// rule without the emptiness side condition and so do we; the cost model
/// never prefers the expanded side anyway.
pub struct R5EliminateCross;

impl Rule for R5EliminateCross {
    fn name(&self) -> &'static str {
        "rule5-eliminate-cross"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::DupElim(inner) = e else {
            return vec![];
        };
        let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = &**inner
        else {
            return vec![];
        };
        let Expr::Cross(a, _b) = &**input else {
            return vec![];
        };
        // The binder variable is Input(0) at the body root; every use must
        // go through the pair's `fst` component.  A minting body would
        // change its mint count (|A|·|B| → |A|): observable, skip.
        if !input_only_via_extract(body, 0, "fst") || body.mints_oids() {
            return vec![];
        }
        let stripped = strip_extract(body, 0, "fst");
        vec![Expr::DupElim(bx(Expr::SetApply {
            input: a.clone(),
            body: bx(stripped),
            only_types: None,
        }))]
    }
}

/// Rule 6 — the result of grouping is a set without duplicates:
/// `DE(GRP_E(A)) = GRP_E(A)`.
pub struct R6GroupIsDupFree;

impl Rule for R6GroupIsDupFree {
    fn name(&self) -> &'static str {
        "rule6-group-is-dup-free"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::DupElim(inner) = e {
            if matches!(**inner, Expr::Group { .. }) {
                return vec![(**inner).clone()];
            }
        }
        vec![]
    }
}

/// Rule 7 — distribute DE across ×: `DE(A × B) = DE(A) × DE(B)` (both
/// directions).
pub struct R7DistributeDeCross;

impl Rule for R7DistributeDeCross {
    fn name(&self) -> &'static str {
        "rule7-distribute-de-cross"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::DupElim(inner) = e {
            if let Expr::Cross(a, b) = &**inner {
                out.push(Expr::Cross(
                    bx(Expr::DupElim(a.clone())),
                    bx(Expr::DupElim(b.clone())),
                ));
            }
        }
        if let Expr::Cross(a, b) = e {
            if let (Expr::DupElim(da), Expr::DupElim(db)) = (&**a, &**b) {
                out.push(Expr::DupElim(bx(Expr::Cross(da.clone(), db.clone()))));
            }
        }
        out
    }
}

/// Rule 8 — duplicates can be removed before or after grouping:
/// `GRP_E(DE(A)) = SET_APPLY_{DE}(GRP_E(A))` (both directions).
///
/// Also in its composed per-group form (the Figure 6 → Figure 7 step):
/// `SET_APPLY_{DE(SET_APPLY_π(INPUT))}(GRP_{E}(A)) =
///  GRP_{E}(DE(SET_APPLY_π(A)))`
/// when `π` is a pure projection of the element and the grouping
/// expression `E` extracts a field `π` keeps.  Grouping before or after
/// the per-element projection then partitions identically (the key
/// survives projection unchanged), and per-group DE of projected members
/// equals grouping the globally-projected-and-deduplicated rows — but the
/// right side runs DE once over `|A|` occurrences instead of once per
/// group.
pub struct R8DeThroughGroup;

impl Rule for R8DeThroughGroup {
    fn name(&self) -> &'static str {
        "rule8-de-through-group"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        // GRP_E(DE(A)) → SET_APPLY_DE(GRP_E(A))
        if let Expr::Group { input, by } = e {
            if let Expr::DupElim(a) = &**input {
                out.push(
                    Expr::Group {
                        input: a.clone(),
                        by: by.clone(),
                    }
                    .set_apply(Expr::input().dup_elim()),
                );
            }
        }
        // SET_APPLY_DE(GRP_E(A)) → GRP_E(DE(A))
        if let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = e
        {
            if **body == Expr::input().dup_elim() {
                if let Expr::Group { input: a, by } = &**input {
                    out.push(Expr::Group {
                        input: bx(Expr::DupElim(a.clone())),
                        by: by.clone(),
                    });
                }
            }
            // Composed form: SET_APPLY_{DE(SET_APPLY_π(INPUT))}(GRP_by(A))
            //              → GRP_by(DE(SET_APPLY_π(A)))
            // when π = project(fields) over the element and by extracts a
            // kept field.  (π being a closed projection of INPUT cannot
            // reference the group binder or mint, so it moves freely.)
            if let (Expr::Group { input: a, by }, Expr::DupElim(de_in)) = (&**input, &**body) {
                if let Expr::SetApply {
                    input: sa_in,
                    body: pi,
                    only_types: None,
                } = &**de_in
                {
                    if matches!(**sa_in, Expr::Input(0)) {
                        if let Expr::Project(pin, fields) = &**pi {
                            if matches!(**pin, Expr::Input(0)) {
                                if let Expr::TupExtract(byin, f) = &**by {
                                    if matches!(**byin, Expr::Input(0)) && fields.contains(f) {
                                        out.push(Expr::Group {
                                            input: bx(Expr::DupElim(bx(Expr::SetApply {
                                                input: a.clone(),
                                                body: pi.clone(),
                                                only_types: None,
                                            }))),
                                            by: by.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rule 9 — group only the input the grouping expression touches:
/// `GRP_E(A × B) = SET_APPLY_{INPUT × B}(GRP_{E'}(A))` when `E` applies
/// only to A (via `fst`); `E'` strips the `fst` projection.
///
/// Compensation note: the rewritten groups contain A-elements crossed with
/// B *afterwards*, which preserves both group contents and cardinalities
/// because × distributes over the partition.  Assumes B non-empty (as rule
/// 5 does): with an empty B the left side has no groups at all while the
/// right side produces empty groups.
pub struct R9GroupCrossOneSide;

impl Rule for R9GroupCrossOneSide {
    fn name(&self) -> &'static str {
        "rule9-group-cross-one-side"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::Group { input, by } = e else {
            return vec![];
        };
        let Expr::Cross(a, b) = &**input else {
            return vec![];
        };
        if !input_only_via_extract(by, 0, "fst") {
            return vec![];
        }
        if b.mentions_input(0) || b.mints_oids() {
            // B is re-evaluated once per group on the right-hand side; a
            // minting B would mint per group instead of once.
            return vec![];
        }
        let by2 = strip_extract(by, 0, "fst");
        // body: INPUT × B, with B shifted under the new binder.
        let body = Expr::Cross(bx(Expr::input()), bx(b.shift_inputs(0, 1)));
        vec![Expr::Group {
            input: a.clone(),
            by: bx(by2),
        }
        .set_apply(body)]
    }
}

/// Rule 10 — push grouping ahead of a selection (and, read right-to-left,
/// push a selection ahead of grouping — the Figure 11 move):
/// `GRP_{E1}(σ_{E2}(A)) = σ_{count>0}(SET_APPLY_{σ_{E2}}(GRP_{E1}(A)))`.
///
/// Compensation note: the paper omits the outer `σ_{count>0}`; without it
/// the right side keeps *empty* groups for keys whose members were all
/// filtered away, which the left side never produces.
pub struct R10GroupThroughSelect;

impl Rule for R10GroupThroughSelect {
    fn name(&self) -> &'static str {
        "rule10-group-through-select"
    }
    fn assumes_null_free(&self) -> bool {
        true
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        // Forward: GRP(σ(A)) → σ_{count>0}(SET_APPLY_σ(GRP(A))).
        if let Expr::Group { input, by } = e {
            if let Expr::Select { input: a, pred } = &**input {
                // The σ moves one binder deeper (under the per-group
                // SET_APPLY), so its free references shift up by one.
                let per_group = Expr::Select {
                    input: bx(Expr::input()),
                    pred: pred.map_exprs(&mut |x| x.shift_inputs(1, 1)),
                };
                let regrouped = Expr::Group {
                    input: a.clone(),
                    by: by.clone(),
                }
                .set_apply(per_group);
                out.push(Expr::Select {
                    input: bx(regrouped),
                    pred: Pred::cmp(
                        Expr::call(Func::Count, vec![Expr::input()]),
                        CmpOp::Gt,
                        Expr::int(0),
                    ),
                });
            }
        }
        // Reverse: σ_{count>0}(SET_APPLY_σ(GRP(A))) → GRP(σ(A)).
        if let Expr::Select {
            input: outer_in,
            pred: outer_pred,
        } = e
        {
            let count_gt0 = Pred::cmp(
                Expr::call(Func::Count, vec![Expr::input()]),
                CmpOp::Gt,
                Expr::int(0),
            );
            if *outer_pred == count_gt0 {
                if let Expr::SetApply {
                    input,
                    body,
                    only_types: None,
                } = &**outer_in
                {
                    if let (
                        Expr::Group { input: a, by },
                        Expr::Select {
                            input: sel_in,
                            pred,
                        },
                    ) = (&**input, &**body)
                    {
                        if **sel_in == Expr::input()
                            && !pred.exprs().iter().any(|x| x.mentions_input(1))
                        {
                            // Moving the σ out from under the SET_APPLY
                            // binder: free references shift down by one.
                            // (A pred that actually mentions the group
                            // binder cannot be moved — guarded above.)
                            let p_down = pred.map_exprs(&mut |x| x.shift_inputs(1, -1));
                            out.push(Expr::Group {
                                input: bx(Expr::Select {
                                    input: a.clone(),
                                    pred: p_down,
                                }),
                                by: by.clone(),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rule 11 — distribute SET_COLLAPSE over ⊎ (both directions):
/// `SET_COLLAPSE(A ⊎ B) = SET_COLLAPSE(A) ⊎ SET_COLLAPSE(B)`.
pub struct R11CollapseUnion;

impl Rule for R11CollapseUnion {
    fn name(&self) -> &'static str {
        "rule11-collapse-over-union"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::SetCollapse(inner) = e {
            if let Expr::AddUnion(a, b) = &**inner {
                out.push(Expr::AddUnion(
                    bx(Expr::SetCollapse(a.clone())),
                    bx(Expr::SetCollapse(b.clone())),
                ));
            }
        }
        if let Expr::AddUnion(l, r) = e {
            if let (Expr::SetCollapse(a), Expr::SetCollapse(b)) = (&**l, &**r) {
                out.push(Expr::SetCollapse(bx(Expr::AddUnion(a.clone(), b.clone()))));
            }
        }
        out
    }
}

/// Rule 12 — distribute SET_APPLY over ⊎ (both directions):
/// `SET_APPLY_E(A ⊎ B) = SET_APPLY_E(A) ⊎ SET_APPLY_E(B)`.
pub struct R12ApplyOverUnion;

impl Rule for R12ApplyOverUnion {
    fn name(&self) -> &'static str {
        "rule12-apply-over-union"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::SetApply {
            input,
            body,
            only_types,
        } = e
        {
            if let Expr::AddUnion(a, b) = &**input {
                out.push(Expr::AddUnion(
                    bx(Expr::SetApply {
                        input: a.clone(),
                        body: body.clone(),
                        only_types: only_types.clone(),
                    }),
                    bx(Expr::SetApply {
                        input: b.clone(),
                        body: body.clone(),
                        only_types: only_types.clone(),
                    }),
                ));
            }
        }
        if let Expr::AddUnion(l, r) = e {
            if let (
                Expr::SetApply {
                    input: a,
                    body: b1,
                    only_types: t1,
                },
                Expr::SetApply {
                    input: b,
                    body: b2,
                    only_types: t2,
                },
            ) = (&**l, &**r)
            {
                if b1 == b2 && t1 == t2 {
                    out.push(Expr::SetApply {
                        input: bx(Expr::AddUnion(a.clone(), b.clone())),
                        body: b1.clone(),
                        only_types: t1.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Rule 13 — distribute SET_APPLY over ×:
/// `SET_APPLY_E(A × B) = SET_APPLY_{E1}(A) × SET_APPLY_{E2}(B)` when
/// `E = (fst: E1(fst INPUT), snd: E2(snd INPUT))` — i.e. the body rebuilds
/// a pair whose components depend only on the respective sides.
pub struct R13ApplyOverCross;

impl Rule for R13ApplyOverCross {
    fn name(&self) -> &'static str {
        "rule13-apply-over-cross"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = e
        else {
            return vec![];
        };
        let Expr::Cross(a, b) = &**input else {
            return vec![];
        };
        // body must be TUP_CAT(TUP[fst](E1), TUP[snd](E2)).
        let Expr::TupCat(l, r) = &**body else {
            return vec![];
        };
        let (Expr::MakeTup(e1, f1), Expr::MakeTup(e2, f2)) = (&**l, &**r) else {
            return vec![];
        };
        if f1 != "fst" || f2 != "snd" {
            return vec![];
        }
        if !input_only_via_extract(e1, 0, "fst") || !input_only_via_extract(e2, 0, "snd") {
            return vec![];
        }
        if e1.mints_oids() || e2.mints_oids() {
            // Per-pair application (|A|·|B| mints) versus per-element
            // (|A| + |B| mints): observable, skip.
            return vec![];
        }
        let e1s = strip_extract(e1, 0, "fst");
        let e2s = strip_extract(e2, 0, "snd");
        vec![Expr::Cross(
            bx(a.as_ref().clone().set_apply(e1s)),
            bx(b.as_ref().clone().set_apply(e2s)),
        )]
    }
}

/// Rule 14 — push SET_APPLY inside a SET_COLLAPSE (both directions):
/// `SET_APPLY_E(SET_COLLAPSE(A)) =
///  SET_COLLAPSE(SET_APPLY_{SET_APPLY_E(INPUT)}(A))`.
pub struct R14ApplyIntoCollapse;

impl Rule for R14ApplyIntoCollapse {
    fn name(&self) -> &'static str {
        "rule14-apply-into-collapse"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::SetApply {
            input,
            body,
            only_types: None,
        } = e
        {
            if let Expr::SetCollapse(a) = &**input {
                // Inner body gains one binder level: shift its outer refs.
                let inner = Expr::SetApply {
                    input: bx(Expr::input()),
                    body: bx(body.shift_inputs(1, 1)),
                    only_types: None,
                };
                out.push(Expr::SetCollapse(bx(a.as_ref().clone().set_apply(inner))));
            }
        }
        if let Expr::SetCollapse(outer) = e {
            if let Expr::SetApply {
                input: a,
                body,
                only_types: None,
            } = &**outer
            {
                if let Expr::SetApply {
                    input: ii,
                    body: inner_body,
                    only_types: None,
                } = &**body
                {
                    if **ii == Expr::input() && !inner_body.mentions_input(1) {
                        out.push(Expr::SetApply {
                            input: bx(Expr::SetCollapse(a.clone())),
                            body: bx(inner_body.shift_inputs(1, -1)),
                            only_types: None,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Rule 15 — combine successive SET_APPLYs (the Figure 10 move):
/// `SET_APPLY_{E1}(SET_APPLY_{E2}(A)) = SET_APPLY_{E1(E2)}(A)`.
pub struct R15CombineApplys;

impl Rule for R15CombineApplys {
    fn name(&self) -> &'static str {
        "rule15-combine-set-applys"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SetApply {
            input,
            body: e1,
            only_types: None,
        } = e
        else {
            return vec![];
        };
        let Expr::SetApply {
            input: a,
            body: e2,
            only_types: None,
        } = &**input
        else {
            return vec![];
        };
        // Fused body: E1 with its element variable replaced by E2's body
        // (both now live under the single remaining binder).
        let fused = e1.substitute_input(0, e2);
        vec![Expr::SetApply {
            input: a.clone(),
            body: bx(fused),
            only_types: None,
        }]
    }
}

/// All §2 rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(R1Associativity),
        Box::new(R2DistributeCrossUnion),
        Box::new(R3RelCrossCommute),
        Box::new(R4DisjunctiveSelect),
        Box::new(R5EliminateCross),
        Box::new(R6GroupIsDupFree),
        Box::new(R7DistributeDeCross),
        Box::new(R8DeThroughGroup),
        Box::new(R9GroupCrossOneSide),
        Box::new(R10GroupThroughSelect),
        Box::new(R11CollapseUnion),
        Box::new(R12ApplyOverUnion),
        Box::new(R13ApplyOverCross),
        Box::new(R14ApplyIntoCollapse),
        Box::new(R15CombineApplys),
    ]
}
