//! Appendix §3: transformation rules for array operators (rules 16–22).
//!
//! "Many of the multiset rules carry over to arrays"; the engine realises
//! that through [`crate::rules::relational`]'s array variants where
//! worthwhile.  Bounds arithmetic uses 1-based indices throughout; where
//! the paper's subscript arithmetic is written base-agnostically (`m+p` in
//! rule 18, `j+m` in rule 20) we use the 1-based-correct `m+p−1` form.

use crate::rule::{Rule, RuleCtx};
use excess_core::expr::{Bound, Expr};
use excess_types::Value;

fn bx(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// Does this expression contain a COMP (or derived selection) node?
/// Rules 19 and 22 require "E is not COMP_P for some P": an `ARR_APPLY`
/// whose body can return `dne` *filters* (positions shift), so extraction
/// and subarray no longer commute with it.
pub fn contains_filter(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Comp { .. } | Expr::Select { .. } | Expr::ArrSelect { .. } | Expr::RelJoin { .. }
    ) || e.children().iter().any(|c| contains_filter(c))
}

/// Rule 16 — concatenation associativity (both directions):
/// `ARR_CAT(A, ARR_CAT(B, C)) = ARR_CAT(ARR_CAT(A, B), C)`.
pub struct R16CatAssoc;

impl Rule for R16CatAssoc {
    fn name(&self) -> &'static str {
        "rule16-arr-cat-assoc"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::ArrCat(a, bc) = e {
            if let Expr::ArrCat(b, c) = &**bc {
                out.push(Expr::ArrCat(
                    bx(Expr::ArrCat(a.clone(), b.clone())),
                    c.clone(),
                ));
            }
            if let Expr::ArrCat(a2, b2) = &**a {
                out.push(Expr::ArrCat(
                    a2.clone(),
                    bx(Expr::ArrCat(b2.clone(), bc.clone())),
                ));
            }
        }
        out
    }
}

/// The statically-known length of an expression, when determinable: a
/// constant array literal, or `ARR(x)` (length 1).  Rules 17 and 21 need
/// `|A|` to resolve which side of a concatenation an index falls in.
fn static_len(e: &Expr) -> Option<usize> {
    match e {
        Expr::Const(Value::Array(a)) => Some(a.len()),
        Expr::MakeArr(_) => Some(1),
        Expr::ArrCat(a, b) => Some(static_len(a)? + static_len(b)?),
        _ => None,
    }
}

/// Rule 17 — extracting an element from a concatenation:
/// `ARR_EXTRACT_n(ARR_CAT(A,B)) = ARR_EXTRACT_n(A)` if `n ≤ |A|`, else
/// `ARR_EXTRACT_{n−|A|}(B)`.  Applies when `|A|` is statically known.
pub struct R17ExtractFromCat;

impl Rule for R17ExtractFromCat {
    fn name(&self) -> &'static str {
        "rule17-extract-from-cat"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::ArrExtract(inner, Bound::At(n)) = e else {
            return vec![];
        };
        let Expr::ArrCat(a, b) = &**inner else {
            return vec![];
        };
        let Some(la) = static_len(a) else {
            return vec![];
        };
        if *n <= la {
            vec![Expr::ArrExtract(a.clone(), Bound::At(*n))]
        } else {
            vec![Expr::ArrExtract(b.clone(), Bound::At(n - la))]
        }
    }
}

/// Rule 18 — extracting from a subarray:
/// `ARR_EXTRACT_p(SUBARR_{m,n}(A)) = ARR_EXTRACT_{m+p−1}(A)` when
/// `p ≤ n−m+1` (inside the subarray's extent); out-of-extent extractions
/// are `dne` on both sides only if the rewrite is *not* applied, so the
/// side condition is required.
pub struct R18ExtractFromSubarr;

impl Rule for R18ExtractFromSubarr {
    fn name(&self) -> &'static str {
        "rule18-extract-from-subarr"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::ArrExtract(inner, Bound::At(p)) = e else {
            return vec![];
        };
        let Expr::SubArr(a, Bound::At(m), n) = &**inner else {
            return vec![];
        };
        if *p == 0 || *m == 0 {
            return vec![];
        }
        match n {
            Bound::At(n) => {
                if *p <= n.saturating_sub(*m) + 1 && *n >= *m {
                    vec![Expr::ArrExtract(a.clone(), Bound::At(m + p - 1))]
                } else {
                    vec![]
                }
            }
            // SUBARR_{m,last}: extent is the array tail, so any p maps to
            // m+p−1 (both sides dne when past the end).
            Bound::Last => vec![Expr::ArrExtract(a.clone(), Bound::At(m + p - 1))],
        }
    }
}

/// Rule 19 — extracting from an ARR_APPLY:
/// `ARR_EXTRACT_n(ARR_APPLY_E(A)) = E(ARR_EXTRACT_n(A))`, provided `E` is
/// not a filter (`COMP`) — filters drop elements and shift positions.
///
/// Caveat (documented): out-of-range extraction makes the left side `dne`
/// and feeds `dne` into `E` on the right; because every structural operator
/// propagates `dne`, both sides still agree unless `E` *constructs* around
/// its input without inspecting it (`SET`, `ARR`, `TUP`) — those bodies
/// are excluded.
pub struct R19ExtractFromApply;

impl Rule for R19ExtractFromApply {
    fn name(&self) -> &'static str {
        "rule19-extract-from-apply"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::ArrExtract(inner, n) = e else {
            return vec![];
        };
        let Expr::ArrApply { input, body } = &**inner else {
            return vec![];
        };
        if contains_filter(body) || contains_constructor(body) {
            return vec![];
        }
        let arg = Expr::ArrExtract(input.clone(), *n);
        vec![Expr::beta_apply(body, &arg)]
    }
}

/// Does the body contain a node that swallows `dne` into a container
/// (`SET(dne) = {}`, `ARR(dne) = []`, `TUP` keeps it) — those change the
/// dne-propagation argument rule 19 relies on.
fn contains_constructor(e: &Expr) -> bool {
    matches!(e, Expr::MakeSet(_) | Expr::MakeArr(_) | Expr::MakeTup(..))
        || e.children().iter().any(|c| contains_constructor(c))
}

/// Rule 20 — combining successive SUBARRs:
/// `SUBARR_{m,n}(SUBARR_{j,k}(A)) = SUBARR_{j+m−1, min(j+n−1, k)}(A)`.
pub struct R20CombineSubarrs;

impl Rule for R20CombineSubarrs {
    fn name(&self) -> &'static str {
        "rule20-combine-subarrs"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SubArr(inner, Bound::At(m), Bound::At(n)) = e else {
            return vec![];
        };
        let Expr::SubArr(a, Bound::At(j), k) = &**inner else {
            return vec![];
        };
        if *m == 0 || *j == 0 {
            return vec![];
        }
        let lo = j + m - 1;
        let hi_rel = j + n - 1;
        let hi = match k {
            Bound::At(k) => Bound::At(hi_rel.min(*k)),
            Bound::Last => Bound::At(hi_rel),
        };
        vec![Expr::SubArr(a.clone(), Bound::At(lo), hi)]
    }
}

/// Rule 21 — taking a subarray from a concatenation (when `|A|` is
/// statically known):
/// `SUBARR_{m,n}(ARR_CAT(A,B)) =
///    ARR_CAT(SUBARR_{m,|A|}(A), SUBARR_{1,n−|A|}(B))` if `m ≤ |A| < n`;
///    `SUBARR_{m,n}(A)` if `n ≤ |A|`;
///    `SUBARR_{m−|A|, n−|A|}(B)` if `m > |A|`.
pub struct R21SubarrFromCat;

impl Rule for R21SubarrFromCat {
    fn name(&self) -> &'static str {
        "rule21-subarr-from-cat"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::SubArr(inner, Bound::At(m), Bound::At(n)) = e else {
            return vec![];
        };
        let Expr::ArrCat(a, b) = &**inner else {
            return vec![];
        };
        let Some(la) = static_len(a) else {
            return vec![];
        };
        if *m == 0 {
            return vec![];
        }
        if *n <= la {
            vec![Expr::SubArr(a.clone(), Bound::At(*m), Bound::At(*n))]
        } else if *m > la {
            vec![Expr::SubArr(
                b.clone(),
                Bound::At(m - la),
                Bound::At(n - la),
            )]
        } else {
            vec![Expr::ArrCat(
                bx(Expr::SubArr(a.clone(), Bound::At(*m), Bound::At(la))),
                bx(Expr::SubArr(b.clone(), Bound::At(1), Bound::At(n - la))),
            )]
        }
    }
}

/// Rule 22 — commuting SUBARR with ARR_APPLY:
/// `SUBARR_{m,n}(ARR_APPLY_E(A)) = ARR_APPLY_E(SUBARR_{m,n}(A))`,
/// provided `E` is not a filter.
pub struct R22SubarrThroughApply;

impl Rule for R22SubarrThroughApply {
    fn name(&self) -> &'static str {
        "rule22-subarr-through-apply"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut out = Vec::new();
        if let Expr::SubArr(inner, m, n) = e {
            if let Expr::ArrApply { input, body } = &**inner {
                if !contains_filter(body) {
                    out.push(Expr::ArrApply {
                        input: bx(Expr::SubArr(input.clone(), *m, *n)),
                        body: body.clone(),
                    });
                }
            }
        }
        // Reverse direction — pulling the SUBARR back out.
        if let Expr::ArrApply { input, body } = e {
            if let Expr::SubArr(a, m, n) = &**input {
                if !contains_filter(body) {
                    out.push(Expr::SubArr(
                        bx(Expr::ArrApply {
                            input: a.clone(),
                            body: body.clone(),
                        }),
                        *m,
                        *n,
                    ));
                }
            }
        }
        out
    }
}

/// Bonus (carried over from rule 15, as the paper's "many of the multiset
/// rules carry over to arrays" allows): combine successive ARR_APPLYs.
pub struct RA1CombineArrApplys;

impl Rule for RA1CombineArrApplys {
    fn name(&self) -> &'static str {
        "ruleA1-combine-arr-applys"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let Expr::ArrApply { input, body: e1 } = e else {
            return vec![];
        };
        let Expr::ArrApply { input: a, body: e2 } = &**input else {
            return vec![];
        };
        // Fusing across a filtering inner body is still sound for arrays?
        // No: the inner filter drops elements *before* E1 sees positions,
        // while the fused form feeds E1 the dne — E1 propagates it and the
        // outer array drops it, so order and content agree.  Fusing a
        // filtering *outer* body is likewise fine.  However, an inner
        // filter composed with an outer *constructor* (SET/ARR/TUP of the
        // dne) would capture the dne — exclude that case.
        if contains_filter(e2) && super::array::contains_constructor_pub(e1) {
            return vec![];
        }
        let fused = e1.substitute_input(0, e2);
        vec![Expr::ArrApply {
            input: a.clone(),
            body: bx(fused),
        }]
    }
}

/// Public wrapper so sibling rules can reuse the constructor check.
pub fn contains_constructor_pub(e: &Expr) -> bool {
    contains_constructor(e)
}

/// All §3 rules, boxed.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(R16CatAssoc),
        Box::new(R17ExtractFromCat),
        Box::new(R18ExtractFromSubarr),
        Box::new(R19ExtractFromApply),
        Box::new(R20CombineSubarrs),
        Box::new(R21SubarrFromCat),
        Box::new(R22SubarrThroughApply),
        Box::new(RA1CombineArrApplys),
    ]
}
