//! # excess-optimizer — algebraic transformations and plan search
//!
//! The optimizer half of the paper's contribution: the Appendix's
//! transformation rules (1–28) as a [`rule::Rule`] catalogue, an
//! exploration/greedy rewrite engine ([`engine::Optimizer`]), a statistics
//! and cost model making the paper's Section 6 "future work" concrete, and
//! the Section 4 overridden-method dispatch strategies
//! ([`dispatch::choose`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dispatch;
pub mod engine;
pub mod lower;
pub mod memo;
pub mod properties;
pub mod rule;
pub mod rules;
pub mod stats;

pub use cost::{
    cost_of, estimate, estimate_nodes, estimate_parallel, estimate_physical, Estimate,
    ParallelEstimate, COLUMNAR_DISCOUNT,
};
pub use dispatch::{build_switch, build_union, choose, DispatchStrategy, MethodImpl};
pub use engine::{
    apply_extent_indexes, apply_extent_indexes_journaled, soundness_violation, JournalStep,
    Neighbor, Optimized, Optimizer, RefusedStep, RewriteJournal, TraceStep, EXTENT_INDEX_RULE,
};
pub use memo::{
    GroupSummary, MemoRun, MemoSnapshot, OptimizerMode, MEMO_EXTRACT_RULE, OPTIMIZER_ENV,
    REOPTIMIZE_RULE,
};

pub use lower::{
    annotate_columnar, elide_proven_guards, lower, lower_journaled, COLUMNAR_RULE,
    HASH_JOIN_MIN_PAIRS, LOWERING_RULE,
};
pub use properties::{apply_property_rewrites, apply_property_rewrites_journaled, PROPERTY_RULE};
pub use rule::{Rule, RuleCtx};
pub use stats::{ObjectStats, Statistics};
