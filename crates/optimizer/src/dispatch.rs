//! Section 4: algebraic treatments for overridden methods.
//!
//! Given a method `f` with (possibly overridden) implementations on a
//! sub-hierarchy, a query `retrieve (P.f(...))` can be processed two ways:
//!
//! 1. **Switch table** — one scan; at each element the run-time exact type
//!    selects the stored query tree ([`build_switch`]).  No compile-time
//!    optimization across method bodies.
//! 2. **⊎-based** ([`build_union`], Figure 5) — one type-filtered
//!    `SET_APPLY` per *distinct implementation*, results combined with ⊎.
//!    Each arm is a plain query tree the optimizer can rewrite with
//!    everything else.
//!
//! [`choose`] implements the paper's cost guidance: prefer the switch when
//!  method bodies are trivial ("at most a DEREF and a TUP_EXTRACT"); prefer
//! ⊎ when the body scans large nested collections (the sub_ords example) or
//! when per-type extent indexes eliminate the repeated scans.

use crate::cost::{cost_of, SWITCH_COST, TYPE_TEST_COST};
use crate::stats::Statistics;
use excess_core::expr::Expr;
use excess_types::{TypeId, TypeRegistry};

/// One method implementation: the type that declares (or overrides) the
/// body, and the body itself (binding `Input(0)` to the receiver).
#[derive(Debug, Clone)]
pub struct MethodImpl {
    /// Owning type name.
    pub owner: String,
    /// The stored query tree.
    pub body: Expr,
}

/// Which §4 strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchStrategy {
    /// Run-time switch table (single scan, opaque bodies).
    SwitchTable,
    /// Compile-time ⊎ of type-filtered SET_APPLYs (Figure 5).
    UnionPerType,
}

/// Build the switch-table plan: `SET_APPLY_SWITCH[owner→body; …](input)`.
pub fn build_switch(input: Expr, impls: &[MethodImpl]) -> Expr {
    Expr::SetApplySwitch {
        input: Box::new(input),
        table: impls
            .iter()
            .map(|m| (m.owner.clone(), m.body.clone()))
            .collect(),
    }
}

/// The exact types each implementation covers: the owner plus every
/// descendant that does *not* have a more specific implementation ("only
/// as many SET_APPLYs as there are distinct method implementations").
pub fn coverage(reg: &TypeRegistry, impls: &[MethodImpl]) -> Vec<(MethodImpl, Vec<String>)> {
    let owner_ids: Vec<(TypeId, &MethodImpl)> = impls
        .iter()
        .filter_map(|m| reg.lookup(&m.owner).ok().map(|id| (id, m)))
        .collect();
    let mut out = Vec::new();
    for (owner_id, m) in &owner_ids {
        let mut covered = vec![m.owner.clone()];
        for d in reg.descendants(*owner_id) {
            // d resolves to this implementation iff no other owner is a
            // strictly more specific ancestor-or-self of d.
            let resolves_here = owner_ids.iter().all(|(other, _)| {
                other == owner_id
                    || !reg.is_subtype_or_self(d, *other)
                    || reg.is_subtype_or_self(*owner_id, *other)
            });
            if resolves_here {
                covered.push(reg.name_of(d).to_string());
            }
        }
        out.push(((*m).clone(), covered));
    }
    out
}

/// Build the Figure 5 plan: `⊎` over one `SET_APPLY[T…; body]` per
/// implementation, each filtered to the exact types that implementation
/// covers.
pub fn build_union(reg: &TypeRegistry, input: Expr, impls: &[MethodImpl]) -> Expr {
    let mut arms = coverage(reg, impls)
        .into_iter()
        .map(|(m, covered)| input.clone().set_apply_only(covered, m.body));
    let first = arms.next().expect("at least one implementation");
    arms.fold(first, |acc, arm| acc.add_union(arm))
}

/// Cost-based strategy choice for `retrieve (P.f(...))` over object `set
/// name`.  Mirrors the paper's discussion:
///
/// * all arms extent-indexed → ⊎ (re-scans are free);
/// * expensive bodies (≫ scan cost) → ⊎ (compile-time optimization of the
///   dominant term pays for the extra scans);
/// * trivial bodies → switch table (one scan wins).
pub fn choose(
    reg: &TypeRegistry,
    stats: &Statistics,
    set_name: &str,
    impls: &[MethodImpl],
) -> DispatchStrategy {
    let all_indexed = coverage(reg, impls)
        .iter()
        .flat_map(|(_, covered)| covered.iter())
        .all(|t| stats.has_extent_index(set_name, t));
    if all_indexed {
        return DispatchStrategy::UnionPerType;
    }
    let n = impls.len().max(1) as f64;
    let avg_body_cost: f64 = impls.iter().map(|m| cost_of(&m.body, stats)).sum::<f64>() / n;
    // Per element: switch pays type-test + switch overhead, once.
    // ⊎ pays (n − 1) extra scans + n type tests per element of the set.
    let switch_per_elem = TYPE_TEST_COST + SWITCH_COST + 1.0 + avg_body_cost;
    let union_per_elem = n * (TYPE_TEST_COST + 1.0) + avg_body_cost;
    if union_per_elem < switch_per_elem || avg_body_cost > 16.0 * n {
        // The second disjunct: when bodies are expensive, the ⊎ plan's
        // compile-time optimization opportunities dominate (the paper's
        // sub_ords argument) even if raw scan arithmetic is close.
        DispatchStrategy::UnionPerType
    } else {
        DispatchStrategy::SwitchTable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_types::SchemaType;

    fn university() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
            .unwrap();
        r.define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
        r.define_with_supertypes(
            "Student",
            SchemaType::tuple([("gpa", SchemaType::float4())]),
            &["Person"],
        )
        .unwrap();
        r
    }

    fn boss_impls() -> Vec<MethodImpl> {
        vec![
            MethodImpl {
                owner: "Person".into(),
                body: Expr::input().extract("name"),
            },
            MethodImpl {
                owner: "Employee".into(),
                body: Expr::input().extract("salary"),
            },
            MethodImpl {
                owner: "Student".into(),
                body: Expr::input().extract("gpa"),
            },
        ]
    }

    #[test]
    fn coverage_respects_overrides() {
        let reg = university();
        // Only Person and Employee implement f: Person's arm covers
        // Person and Student; Employee's covers Employee.
        let impls = vec![
            MethodImpl {
                owner: "Person".into(),
                body: Expr::input(),
            },
            MethodImpl {
                owner: "Employee".into(),
                body: Expr::input(),
            },
        ];
        let cov = coverage(&reg, &impls);
        let person_cov: Vec<_> = cov
            .iter()
            .find(|(m, _)| m.owner == "Person")
            .unwrap()
            .1
            .clone();
        assert!(person_cov.contains(&"Person".to_string()));
        assert!(person_cov.contains(&"Student".to_string()));
        assert!(!person_cov.contains(&"Employee".to_string()));
        let emp_cov: Vec<_> = cov
            .iter()
            .find(|(m, _)| m.owner == "Employee")
            .unwrap()
            .1
            .clone();
        assert_eq!(emp_cov, vec!["Employee".to_string()]);
    }

    #[test]
    fn union_plan_shape_matches_figure5() {
        let reg = university();
        let plan = build_union(&reg, Expr::named("P"), &boss_impls());
        // ⊎ of three SET_APPLYs (binary ⊎, twice).
        let s = plan.to_string();
        assert_eq!(s.matches("SET_APPLY").count(), 3);
        assert_eq!(s.matches('⊎').count(), 2);
    }

    #[test]
    fn switch_plan_has_one_scan() {
        let plan = build_switch(Expr::named("P"), &boss_impls());
        assert_eq!(plan.to_string().matches("SET_APPLY_SWITCH").count(), 1);
    }

    #[test]
    fn trivial_bodies_prefer_switch() {
        // The "boss" example: bodies are at most a DEREF + TUP_EXTRACT.
        let reg = university();
        let stats = Statistics::new();
        assert_eq!(
            choose(&reg, &stats, "P", &boss_impls()),
            DispatchStrategy::SwitchTable
        );
    }

    #[test]
    fn expensive_bodies_prefer_union() {
        // The sub_ords example: each body scans a large nested set.
        let reg = university();
        let mut stats = Statistics::new();
        stats.default_avg_nested = 500.0;
        let big_body = Expr::input()
            .extract("sub_ords")
            .set_apply(Expr::input().deref().extract("name"));
        let impls = vec![
            MethodImpl {
                owner: "Person".into(),
                body: big_body.clone(),
            },
            MethodImpl {
                owner: "Employee".into(),
                body: big_body,
            },
        ];
        assert_eq!(
            choose(&reg, &stats, "P", &impls),
            DispatchStrategy::UnionPerType
        );
    }

    #[test]
    fn indexed_extents_prefer_union() {
        let reg = university();
        let mut stats = Statistics::new();
        for t in ["Person", "Employee", "Student"] {
            stats.add_extent_index("P", t);
        }
        assert_eq!(
            choose(&reg, &stats, "P", &boss_impls()),
            DispatchStrategy::UnionPerType
        );
    }
}
