//! Property-licensed rewrites: simplifications a cost model cannot
//! justify and a syntactic rule cannot see, licensed instead by the
//! abstract-interpretation pass (`excess_core::analysis`).
//!
//! The greedy engine's 35-rule catalogue rewrites *shapes*; this pass
//! rewrites on *proofs*: a `DE` whose input is proven duplicate-free is
//! the identity, a `⊎`/`∪` branch proven to be the empty multiset
//! contributes nothing, `A − ∅ = A`.  Every step re-analyses the current
//! plan (properties are positional and earlier steps change positions),
//! passes the same rewrite-soundness gate as the rule catalogue, and is
//! journaled under the rule name [`PROPERTY_RULE`].
//!
//! The pass is deliberately *not* part of `Optimizer::standard()` — the
//! figure-convergence suite pins the exact greedy rule sequences — and is
//! opt-in from `Database` (`property_rewrites`), the REPL, and the
//! benchmark report's section H.

use crate::cost::cost_of;
use crate::engine::{
    replace_nth_child, soundness_violation, JournalStep, RefusedStep, RewriteJournal,
};
use crate::rule::RuleCtx;
use crate::stats::Statistics;
use excess_core::analysis::{analyze, Analysis, CollKind, Props};
use excess_core::catalog::Catalog;
use excess_core::expr::Expr;
use excess_core::profile::NodePath;
use std::collections::HashSet;

/// Journal rule name for every rewrite this pass performs.
pub const PROPERTY_RULE: &str = "property-licensed";

fn props_at(a: &Analysis, path: &[usize], child: usize) -> Props {
    let mut p = path.to_vec();
    p.push(child);
    a.props_at(&p).cloned().unwrap_or_else(Props::unknown)
}

/// The single-site rewrite this pass proposes at `e` (already positioned
/// at `path`), if its licence is proven.  Returns the replacement and a
/// short justification.
fn proposal(e: &Expr, path: &[usize], a: &Analysis) -> Option<(Expr, String)> {
    match e {
        // DE over a proven duplicate-free multiset is the identity.  The
        // collection-sort proof makes the licence unconditional: the
        // input *is* a multiset, and it has no duplicate occurrence.
        Expr::DupElim(inner) => {
            let p = props_at(a, path, 0);
            (p.dup_free && p.coll == Some(CollKind::Set)).then(|| {
                (
                    (**inner).clone(),
                    "input proven duplicate-free multiset — DE is the identity".to_string(),
                )
            })
        }
        Expr::ArrDupElim(inner) => {
            let p = props_at(a, path, 0);
            (p.dup_free && p.coll == Some(CollKind::Array)).then(|| {
                (
                    (**inner).clone(),
                    "input proven duplicate-free array — ARR_DE is the identity".to_string(),
                )
            })
        }
        // A union branch proven to be the empty multiset contributes
        // nothing; the other operand passes through unchanged (`∅ ⊎ B =
        // B` for every multiset-or-null `B`).
        Expr::AddUnion(l, r) | Expr::Union(l, r) => {
            let (pl, pr) = (props_at(a, path, 0), props_at(a, path, 1));
            if pl.is_empty_coll() && pl.coll == Some(CollKind::Set) {
                Some((
                    (**r).clone(),
                    "left branch proven empty — union branch pruned".to_string(),
                ))
            } else if pr.is_empty_coll() && pr.coll == Some(CollKind::Set) {
                Some((
                    (**l).clone(),
                    "right branch proven empty — union branch pruned".to_string(),
                ))
            } else {
                None
            }
        }
        // `A − ∅ = A`.
        Expr::Diff(l, _r) => {
            let pr = props_at(a, path, 1);
            (pr.is_empty_coll() && pr.coll == Some(CollKind::Set)).then(|| {
                (
                    (**l).clone(),
                    "subtrahend proven empty — difference is the identity".to_string(),
                )
            })
        }
        // `ARR_CAT(∅, B) = B` and symmetrically.
        Expr::ArrCat(l, r) => {
            let (pl, pr) = (props_at(a, path, 0), props_at(a, path, 1));
            if pl.is_empty_coll() && pl.coll == Some(CollKind::Array) {
                Some((
                    (**r).clone(),
                    "left array proven empty — concatenation branch pruned".to_string(),
                ))
            } else if pr.is_empty_coll() && pr.coll == Some(CollKind::Array) {
                Some((
                    (**l).clone(),
                    "right array proven empty — concatenation branch pruned".to_string(),
                ))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// First licensed site in preorder not in `skip`: the node path, the
/// whole plan after rewriting that site only, and the justification.
fn find_site(
    e: &Expr,
    path: &mut NodePath,
    a: &Analysis,
    skip: &HashSet<NodePath>,
) -> Option<(NodePath, Expr, String)> {
    if !skip.contains(path) {
        if let Some((new, why)) = proposal(e, path, a) {
            return Some((path.clone(), new, why));
        }
    }
    for (n, child) in e.children().into_iter().enumerate() {
        path.push(n);
        let hit = find_site(child, path, a, skip);
        path.pop();
        if let Some((at, new_child, why)) = hit {
            return Some((at, replace_nth_child(e, n, &new_child), why));
        }
    }
    None
}

/// Apply every property-licensed rewrite the analysis can prove, one site
/// at a time, re-analysing after each accepted step (accepted steps
/// shrink the tree, so the loop terminates).  Each step passes
/// [`soundness_violation`]; refusals are journaled under
/// [`PROPERTY_RULE`] like any refused rule application.
pub fn apply_property_rewrites_journaled(
    e: &Expr,
    data: &dyn Catalog,
    stats: &Statistics,
    ctx: &RuleCtx<'_>,
    journal: &mut RewriteJournal,
) -> Expr {
    let mut cur = e.clone();
    let mut skip: HashSet<NodePath> = HashSet::new();
    loop {
        let analysis = analyze(&cur, data);
        let Some((path, next, _why)) = find_site(&cur, &mut NodePath::new(), &analysis, &skip)
        else {
            return cur;
        };
        if let Some(reason) = soundness_violation(&cur, &next, ctx) {
            journal.refused.push(RefusedStep {
                rule: PROPERTY_RULE,
                path: path.clone(),
                reason,
            });
            // Refused paths stay skipped until the next accepted rewrite
            // invalidates positions.
            skip.insert(path);
            continue;
        }
        let cost_before = cost_of(&cur, stats);
        let cost_after = cost_of(&next, stats);
        journal.steps.push(JournalStep {
            rule: PROPERTY_RULE,
            path,
            cost_before,
            cost_after,
            plan: next.clone(),
        });
        journal.final_cost = cost_after;
        journal.plans_enumerated += 1;
        // Accepted rewrites move nodes, so previously refused paths no
        // longer address the same sites.
        skip.clear();
        cur = next;
    }
}

/// [`apply_property_rewrites_journaled`] without journaling.
pub fn apply_property_rewrites(
    e: &Expr,
    data: &dyn Catalog,
    stats: &Statistics,
    ctx: &RuleCtx<'_>,
) -> Expr {
    let mut journal = RewriteJournal {
        steps: Vec::new(),
        refused: Vec::new(),
        plans_enumerated: 0,
        max_plans: 0,
        initial_cost: 0.0,
        final_cost: 0.0,
    };
    apply_property_rewrites_journaled(e, data, stats, ctx, &mut journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::{CmpOp, Pred};
    use excess_types::{SchemaType, TypeRegistry, Value};
    use std::collections::HashMap;

    fn people() -> Value {
        Value::set([
            Value::tuple([("id".to_string(), Value::int(1))]),
            Value::tuple([("id".to_string(), Value::int(2))]),
        ])
    }

    fn fixtures() -> (
        TypeRegistry,
        HashMap<String, SchemaType>,
        HashMap<String, Value>,
    ) {
        let reg = TypeRegistry::new();
        let mut schemas = HashMap::new();
        schemas.insert(
            "P".to_string(),
            SchemaType::set(SchemaType::tuple([("id", SchemaType::int4())])),
        );
        let mut data = HashMap::new();
        data.insert("P".to_string(), people());
        (reg, schemas, data)
    }

    #[test]
    fn de_over_proven_duplicate_free_data_is_dropped_and_journaled() {
        let (reg, schemas, data) = fixtures();
        let ctx = RuleCtx {
            registry: &reg,
            schemas: &schemas,
        };
        let stats = Statistics::default();
        let e = Expr::named("P").dup_elim();
        let mut journal = RewriteJournal {
            steps: Vec::new(),
            refused: Vec::new(),
            plans_enumerated: 0,
            max_plans: 0,
            initial_cost: 0.0,
            final_cost: 0.0,
        };
        let out = apply_property_rewrites_journaled(&e, &data, &stats, &ctx, &mut journal);
        assert_eq!(out, Expr::named("P"));
        assert_eq!(journal.steps.len(), 1);
        assert_eq!(journal.steps[0].rule, PROPERTY_RULE);
        assert!(journal.refused.is_empty());
    }

    #[test]
    fn without_data_the_same_de_survives() {
        let (reg, schemas, _) = fixtures();
        let ctx = RuleCtx {
            registry: &reg,
            schemas: &schemas,
        };
        let e = Expr::named("P").dup_elim();
        let out = apply_property_rewrites(
            &e,
            &excess_core::catalog::EmptyCatalog,
            &Statistics::default(),
            &ctx,
        );
        assert_eq!(out, e);
    }

    #[test]
    fn empty_union_branch_is_pruned() {
        let (reg, schemas, data) = fixtures();
        let ctx = RuleCtx {
            registry: &reg,
            schemas: &schemas,
        };
        // σ[1=2](P) ⊎ P — the left branch is provably empty.
        let dead = Expr::named("P").select(Pred::cmp(Expr::int(1), CmpOp::Eq, Expr::int(2)));
        let e = dead.add_union(Expr::named("P"));
        let out = apply_property_rewrites(&e, &data, &Statistics::default(), &ctx);
        assert_eq!(out, Expr::named("P"));
    }
}
