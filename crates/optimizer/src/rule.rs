//! The transformation-rule abstraction.
//!
//! A rule examines the *root* of an expression and proposes zero or more
//! equivalent replacements; the rewrite engine ([`crate::engine`]) applies
//! every rule at every subtree position.  Rules are named after the
//! Appendix numbering so EXPERIMENTS.md and the ablation bench can refer to
//! them directly.

use excess_core::expr::Expr;
use excess_core::infer::SchemaCatalog;
use excess_types::{SchemaType, TypeRegistry};

/// Context rules may consult: the type hierarchy and the schemas of named
/// top-level objects (several rules need to know tuple field provenance).
pub struct RuleCtx<'a> {
    /// Named-type registry.
    pub registry: &'a TypeRegistry,
    /// Schemas of named top-level objects.
    pub schemas: &'a dyn SchemaCatalog,
}

impl<'a> RuleCtx<'a> {
    /// Infer the schema of `e` in an empty binder environment.
    pub fn infer(&self, e: &Expr) -> Option<SchemaType> {
        excess_core::infer::infer_closed(e, self.schemas, self.registry).ok()
    }

    /// Field names of the tuple elements of a set-valued expression, if
    /// statically known (used by field-provenance side conditions).
    pub fn set_elem_fields(&self, e: &Expr) -> Option<Vec<String>> {
        let t = self.infer(e)?;
        let elem = match t {
            SchemaType::Set(e) => *e,
            _ => return None,
        };
        let elem = match elem {
            SchemaType::Named(n) => {
                let id = self.registry.lookup(&n).ok()?;
                self.registry.full_body(id).ok()?
            }
            other => other,
        };
        match elem {
            SchemaType::Tup(fs) => Some(fs.into_iter().map(|(n, _)| n).collect()),
            _ => None,
        }
    }

    /// Field names of a tuple-valued expression, if statically known.
    pub fn tuple_fields(&self, e: &Expr) -> Option<Vec<String>> {
        let t = self.infer(e)?;
        let t = match t {
            SchemaType::Named(n) => {
                let id = self.registry.lookup(&n).ok()?;
                self.registry.full_body(id).ok()?
            }
            other => other,
        };
        match t {
            SchemaType::Tup(fs) => Some(fs.into_iter().map(|(n, _)| n).collect()),
            _ => None,
        }
    }
}

/// A semantics-preserving transformation.
pub trait Rule {
    /// Stable identifier, e.g. `"rule15-combine-set-applys"`.
    fn name(&self) -> &'static str;
    /// Propose replacements for `e` (matching at the root only).
    fn apply(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr>;
    /// `true` for rules that are sound only modulo object identity (rule 28
    /// second form) — the engine can exclude them when exact OID identity
    /// must be preserved.
    fn modulo_identity(&self) -> bool {
        false
    }
    /// `true` for rules whose equivalence assumes null-free data (the
    /// paper's rules are stated without addressing `unk` interactions —
    /// see the Appendix caveats in each rule's documentation).
    fn assumes_null_free(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Shared side-condition helpers
// ---------------------------------------------------------------------

/// `true` iff every use of the binder variable at `depth` inside `e` has
/// the form `TUP_EXTRACT_field(Input(depth))` — the precise meaning we give
/// to the paper's side condition "E applies only to A" for pair-shaped
/// inputs (`field = "fst"`), and to field-provenance checks in rules 24–26.
pub fn input_only_via_extract(e: &Expr, depth: usize, field: &str) -> bool {
    match e {
        Expr::TupExtract(inner, f) => {
            if let Expr::Input(d) = **inner {
                if d == depth {
                    return f == field;
                }
            }
            input_only_via_extract(inner, depth, field)
        }
        Expr::Input(d) => *d != depth,
        Expr::SetApply { input, body, .. } => {
            input_only_via_extract(input, depth, field)
                && input_only_via_extract(body, depth + 1, field)
        }
        Expr::ArrApply { input, body } => {
            input_only_via_extract(input, depth, field)
                && input_only_via_extract(body, depth + 1, field)
        }
        Expr::Group { input, by } => {
            input_only_via_extract(input, depth, field)
                && input_only_via_extract(by, depth + 1, field)
        }
        Expr::Comp { input, pred } => {
            input_only_via_extract(input, depth, field)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract(x, depth + 1, field))
        }
        Expr::Select { input, pred } | Expr::ArrSelect { input, pred } => {
            input_only_via_extract(input, depth, field)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract(x, depth + 1, field))
        }
        Expr::RelJoin { left, right, pred } => {
            input_only_via_extract(left, depth, field)
                && input_only_via_extract(right, depth, field)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract(x, depth + 1, field))
        }
        Expr::SetApplySwitch { input, table } => {
            input_only_via_extract(input, depth, field)
                && table
                    .iter()
                    .all(|(_, b)| input_only_via_extract(b, depth + 1, field))
        }
        _ => e
            .children()
            .iter()
            .all(|c| input_only_via_extract(c, depth, field)),
    }
}

/// Like [`input_only_via_extract`] but allows extraction of *any* field in
/// `fields` (rules 24 and the join-pushdown need "uses only A's fields").
pub fn input_only_via_extract_of(e: &Expr, depth: usize, fields: &[String]) -> bool {
    match e {
        Expr::TupExtract(inner, f) => {
            if let Expr::Input(d) = **inner {
                if d == depth {
                    return fields.iter().any(|x| x == f);
                }
            }
            input_only_via_extract_of(inner, depth, fields)
        }
        Expr::Input(d) => *d != depth,
        Expr::SetApply { input, body, .. } => {
            input_only_via_extract_of(input, depth, fields)
                && input_only_via_extract_of(body, depth + 1, fields)
        }
        Expr::ArrApply { input, body } => {
            input_only_via_extract_of(input, depth, fields)
                && input_only_via_extract_of(body, depth + 1, fields)
        }
        Expr::Group { input, by } => {
            input_only_via_extract_of(input, depth, fields)
                && input_only_via_extract_of(by, depth + 1, fields)
        }
        Expr::Comp { input, pred } => {
            input_only_via_extract_of(input, depth, fields)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract_of(x, depth + 1, fields))
        }
        Expr::Select { input, pred } | Expr::ArrSelect { input, pred } => {
            input_only_via_extract_of(input, depth, fields)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract_of(x, depth + 1, fields))
        }
        Expr::RelJoin { left, right, pred } => {
            input_only_via_extract_of(left, depth, fields)
                && input_only_via_extract_of(right, depth, fields)
                && pred
                    .exprs()
                    .iter()
                    .all(|x| input_only_via_extract_of(x, depth + 1, fields))
        }
        Expr::SetApplySwitch { input, table } => {
            input_only_via_extract_of(input, depth, fields)
                && table
                    .iter()
                    .all(|(_, b)| input_only_via_extract_of(b, depth + 1, fields))
        }
        _ => e
            .children()
            .iter()
            .all(|c| input_only_via_extract_of(c, depth, fields)),
    }
}

/// Rewrite every `TUP_EXTRACT_field(Input(depth))` into `Input(depth)` —
/// the body adjustment when a pair projection is eliminated (rules 5, 9,
/// 13) or when a COMP is pushed below a `TUP_EXTRACT` (rule 26).
pub fn strip_extract(e: &Expr, depth: usize, field: &str) -> Expr {
    if let Expr::TupExtract(inner, f) = e {
        if let Expr::Input(d) = **inner {
            if d == depth && f == field {
                return Expr::Input(depth);
            }
        }
    }
    match e {
        Expr::SetApply {
            input,
            body,
            only_types,
        } => Expr::SetApply {
            input: Box::new(strip_extract(input, depth, field)),
            body: Box::new(strip_extract(body, depth + 1, field)),
            only_types: only_types.clone(),
        },
        Expr::ArrApply { input, body } => Expr::ArrApply {
            input: Box::new(strip_extract(input, depth, field)),
            body: Box::new(strip_extract(body, depth + 1, field)),
        },
        Expr::Group { input, by } => Expr::Group {
            input: Box::new(strip_extract(input, depth, field)),
            by: Box::new(strip_extract(by, depth + 1, field)),
        },
        Expr::Comp { input, pred } => Expr::Comp {
            input: Box::new(strip_extract(input, depth, field)),
            pred: pred.map_exprs(&mut |x| strip_extract(x, depth + 1, field)),
        },
        Expr::Select { input, pred } => Expr::Select {
            input: Box::new(strip_extract(input, depth, field)),
            pred: pred.map_exprs(&mut |x| strip_extract(x, depth + 1, field)),
        },
        Expr::ArrSelect { input, pred } => Expr::ArrSelect {
            input: Box::new(strip_extract(input, depth, field)),
            pred: pred.map_exprs(&mut |x| strip_extract(x, depth + 1, field)),
        },
        Expr::RelJoin { left, right, pred } => Expr::RelJoin {
            left: Box::new(strip_extract(left, depth, field)),
            right: Box::new(strip_extract(right, depth, field)),
            pred: pred.map_exprs(&mut |x| strip_extract(x, depth + 1, field)),
        },
        Expr::SetApplySwitch { input, table } => Expr::SetApplySwitch {
            input: Box::new(strip_extract(input, depth, field)),
            table: table
                .iter()
                .map(|(t, b)| (t.clone(), strip_extract(b, depth + 1, field)))
                .collect(),
        },
        _ => e.map_children(&mut |c| strip_extract(c, depth, field)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::Pred;

    #[test]
    fn only_via_extract_accepts_projection_chains() {
        // COMP[fst.x = 1](INPUT) uses INPUT only via fst.
        let body = Expr::input().comp(Pred::eq(
            Expr::input_at(1).extract("fst").extract("x"),
            Expr::int(1),
        ));
        // Hmm — the COMP's input is Input(0) itself, which is a bare use.
        assert!(!input_only_via_extract(&body, 0, "fst"));
        // TUP_EXTRACT_fst(INPUT) alone qualifies.
        let e = Expr::input().extract("fst").extract("x");
        assert!(input_only_via_extract(&e, 0, "fst"));
        assert!(!input_only_via_extract(&e, 0, "snd"));
    }

    #[test]
    fn only_via_extract_tracks_binder_depth() {
        // SET_APPLY[TUP_EXTRACT_fst(INPUT^1)](B): the INPUT^1 refers to the
        // outer binder, extracted via fst — allowed.
        let e = Expr::named("B").set_apply(Expr::input_at(1).extract("fst"));
        assert!(input_only_via_extract(&e, 0, "fst"));
        // Bare INPUT^1 is not.
        let e2 = Expr::named("B").set_apply(Expr::input_at(1));
        assert!(!input_only_via_extract(&e2, 0, "fst"));
    }

    #[test]
    fn strip_extract_rewrites_at_depth() {
        let e = Expr::input().extract("fst").extract("x");
        assert_eq!(strip_extract(&e, 0, "fst"), Expr::input().extract("x"));
        // Under a binder the index is adjusted.
        let e2 = Expr::named("B").set_apply(Expr::input_at(1).extract("fst"));
        assert_eq!(
            strip_extract(&e2, 0, "fst"),
            Expr::named("B").set_apply(Expr::input_at(1))
        );
    }

    #[test]
    fn extract_of_many_fields() {
        let e = Expr::input()
            .extract("a")
            .tup_cat(Expr::input().extract("b"));
        assert!(input_only_via_extract_of(&e, 0, &["a".into(), "b".into()]));
        assert!(!input_only_via_extract_of(&e, 0, &["a".into()]));
    }
}
