//! Statistics for cost estimation.
//!
//! Section 6 lists "an investigation of cost functions and useful
//! statistics for complex object data models" as future work; this module
//! is our concrete take, scoped to what the paper's examples need: per
//! top-level-object cardinalities and duplication factors, per-attribute
//! numbers of distinct values (NDV — the ingredient that lets the cost
//! model credit duplicate elimination, Figures 6–8), average nested
//! collection sizes, predicate selectivities, per-exact-type fractions of
//! heterogeneous sets, and the presence of per-type extent indexes
//! (Section 4: "if we have an index on all the Students in P … the need to
//! scan P three times … disappears").

use std::collections::{BTreeMap, HashMap, HashSet};

/// Statistics about one named top-level object.
#[derive(Debug, Clone)]
pub struct ObjectStats {
    /// Total occurrences (for arrays: length).
    pub rows: f64,
    /// Distinct elements (`rows / distinct` is the duplication factor).
    pub distinct: f64,
    /// Average size of set/array-valued attributes of the elements.
    pub avg_nested: f64,
    /// Number of distinct values per tuple attribute, when the elements
    /// are tuples and the collector has seen the data.  Empty means
    /// unknown — the cost model then falls back to shape heuristics.
    pub attr_ndv: BTreeMap<String, f64>,
}

impl Default for ObjectStats {
    fn default() -> Self {
        ObjectStats {
            rows: 1000.0,
            distinct: 1000.0,
            avg_nested: 8.0,
            attr_ndv: BTreeMap::new(),
        }
    }
}

/// The statistics catalog handed to the cost model.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    /// Per-object statistics.
    pub objects: HashMap<String, ObjectStats>,
    /// Selectivity assumed for predicates with no better information.
    pub default_selectivity: f64,
    /// Nested-collection size assumed when the object is unknown.
    pub default_avg_nested: f64,
    /// Fraction of a heterogeneous set whose exact type is the named type
    /// (keyed by type name; missing types share the remainder).
    pub type_fractions: HashMap<String, f64>,
    /// `(object, type)` pairs for which a per-exact-type extent index
    /// exists (enables the Section 4 index-assisted ⊎ plan).
    pub extent_indexes: HashSet<(String, String)>,
}

impl Statistics {
    /// Reasonable defaults (uniform 10% selectivity, nested size 8).
    pub fn new() -> Self {
        Statistics {
            objects: HashMap::new(),
            default_selectivity: 0.1,
            default_avg_nested: 8.0,
            type_fractions: HashMap::new(),
            extent_indexes: HashSet::new(),
        }
    }

    /// Record statistics for an object (per-attribute NDVs unknown; use
    /// [`Statistics::set_attr_ndv`] to add them).
    pub fn set_object(&mut self, name: &str, rows: f64, distinct: f64, avg_nested: f64) {
        let attr_ndv = self
            .objects
            .remove(name)
            .map(|o| o.attr_ndv)
            .unwrap_or_default();
        self.objects.insert(
            name.to_string(),
            ObjectStats {
                rows,
                distinct,
                avg_nested,
                attr_ndv,
            },
        );
    }

    /// Record the number of distinct values of one attribute of an
    /// object's tuple elements.
    pub fn set_attr_ndv(&mut self, name: &str, attr: &str, ndv: f64) {
        self.objects
            .entry(name.to_string())
            .or_default()
            .attr_ndv
            .insert(attr.to_string(), ndv);
    }

    /// Statistics for an object (defaults when unknown).
    pub fn object(&self, name: &str) -> ObjectStats {
        self.objects.get(name).cloned().unwrap_or_default()
    }

    /// Fraction of elements whose exact type is `ty` (default: uniform
    /// among `n_known` types, or 0.34 when nothing is known).
    pub fn type_fraction(&self, ty: &str) -> f64 {
        self.type_fractions.get(ty).copied().unwrap_or(0.34)
    }

    /// Is there an extent index on `(object, ty)`?
    pub fn has_extent_index(&self, object: &str, ty: &str) -> bool {
        self.extent_indexes
            .contains(&(object.to_string(), ty.to_string()))
    }

    /// Declare an extent index.
    pub fn add_extent_index(&mut self, object: &str, ty: &str) {
        self.extent_indexes
            .insert((object.to_string(), ty.to_string()));
    }

    /// Fold an observed cardinality from the feedback loop back into the
    /// statistics for `name`: rows snap to the observation while the
    /// distinct count and every per-attribute NDV rescale proportionally
    /// (floored at 1, capped at the new row count), so duplicate-credit
    /// and equi-join selectivities move with the correction instead of
    /// waiting for a full re-`analyze`.  Returns the previous row
    /// estimate.
    pub fn observe_extent_rows(&mut self, name: &str, actual_rows: f64) -> f64 {
        let entry = self.objects.entry(name.to_string()).or_default();
        let before = entry.rows;
        let actual = actual_rows.max(1.0);
        let scale = actual / entry.rows.max(1.0);
        entry.rows = actual;
        entry.distinct = (entry.distinct * scale).clamp(1.0, actual);
        for ndv in entry.attr_ndv.values_mut() {
            *ndv = (*ndv * scale).clamp(1.0, actual);
        }
        before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = Statistics::new();
        assert!(s.default_selectivity > 0.0 && s.default_selectivity < 1.0);
        let o = s.object("nope");
        assert!(o.rows > 0.0);
        assert!(o.attr_ndv.is_empty());
    }

    #[test]
    fn object_stats_round_trip() {
        let mut s = Statistics::new();
        s.set_object("Employees", 5000.0, 4800.0, 12.0);
        assert_eq!(s.object("Employees").rows, 5000.0);
        assert_eq!(s.object("Employees").avg_nested, 12.0);
    }

    #[test]
    fn attr_ndv_round_trip_and_survives_set_object() {
        let mut s = Statistics::new();
        s.set_attr_ndv("S", "dept", 10.0);
        s.set_object("S", 1000.0, 100.0, 8.0);
        s.set_attr_ndv("S", "adv", 25.0);
        let o = s.object("S");
        assert_eq!(o.rows, 1000.0);
        assert_eq!(o.attr_ndv.get("dept"), Some(&10.0));
        assert_eq!(o.attr_ndv.get("adv"), Some(&25.0));
    }

    #[test]
    fn observed_rows_rescale_distinct_and_ndvs() {
        let mut s = Statistics::new();
        s.set_object("E", 24.0, 24.0, 8.0);
        s.set_attr_ndv("E", "ename", 6.0);
        let before = s.observe_extent_rows("E", 240.0);
        assert_eq!(before, 24.0);
        let o = s.object("E");
        assert_eq!(o.rows, 240.0);
        assert_eq!(o.distinct, 240.0);
        assert_eq!(o.attr_ndv.get("ename"), Some(&60.0));
        // Shrinking caps NDVs at the new row count and floors at 1.
        s.observe_extent_rows("E", 2.0);
        let o = s.object("E");
        assert_eq!(o.rows, 2.0);
        assert!(o.distinct >= 1.0 && o.distinct <= 2.0);
        assert!(*o.attr_ndv.get("ename").unwrap() <= 2.0);
        // Unknown objects start from the defaults.
        s.observe_extent_rows("new", 50.0);
        assert_eq!(s.object("new").rows, 50.0);
    }

    #[test]
    fn extent_indexes() {
        let mut s = Statistics::new();
        assert!(!s.has_extent_index("P", "Student"));
        s.add_extent_index("P", "Student");
        assert!(s.has_extent_index("P", "Student"));
    }
}
