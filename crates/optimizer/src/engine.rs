//! The rewrite engine: exhaustive exploration with a seen-set, plus a
//! greedy heuristic pass.
//!
//! "The many-sortedness ensures that only a subset of the operators (and
//! thus of the transformation rules) will be applicable at any point during
//! query optimization" (Section 3.2) — rules here self-select by pattern
//! matching, which realises the same pruning: a rule over multisets simply
//! fails to match an array node.

use crate::cost::cost_of;
use crate::rule::{Rule, RuleCtx};
use crate::stats::Statistics;
use excess_core::expr::Expr;
use excess_core::infer::infer_closed;
use excess_core::profile::NodePath;
use excess_core::verify::{resolve_deep, verify};
use std::collections::HashSet;

/// The rule name under which extent-index substitutions are journaled —
/// the substitution phase is not a catalogue [`Rule`], but it goes through
/// the same soundness gate and journal as one.
pub const EXTENT_INDEX_RULE: &str = "extent-index-substitution";

/// Check whether replacing `before` with `after` is statically sound: the
/// deep-resolved inferred output schema must be unchanged and the rewrite
/// must not introduce any new error-severity diagnostic.  Returns a
/// human-readable reason when the rewrite must be refused, `None` when it
/// is sound.  Lints are deliberately not gated — rewrites routinely create
/// and destroy suspicious-but-legal shapes (that is what the lint
/// catalogue describes).
pub fn soundness_violation(before: &Expr, after: &Expr, ctx: &RuleCtx<'_>) -> Option<String> {
    match (
        infer_closed(before, ctx.schemas, ctx.registry),
        infer_closed(after, ctx.schemas, ctx.registry),
    ) {
        (Ok(tb), Ok(ta)) => {
            let (rb, ra) = (
                resolve_deep(&tb, ctx.registry),
                resolve_deep(&ta, ctx.registry),
            );
            if rb != ra {
                return Some(format!(
                    "rewrite changes the inferred output schema: {tb} → {ta}"
                ));
            }
        }
        (Ok(_), Err(e)) => {
            return Some(format!("rewrite breaks type inference: {e}"));
        }
        // An ill-typed starting plan cannot get *worse*; let the rewrite
        // through and leave the diagnostic check to catch regressions.
        (Err(_), _) => {}
    }
    let before_errs: HashSet<(&'static str, String)> = verify(before, ctx.schemas, ctx.registry)
        .errors()
        .map(|d| (d.code, d.message.clone()))
        .collect();
    for d in verify(after, ctx.schemas, ctx.registry).errors() {
        let key = (d.code, d.message.clone());
        if !before_errs.contains(&key) {
            return Some(format!("rewrite introduces a new diagnostic: {d}"));
        }
    }
    None
}

/// Engine configuration.
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
    /// Allow rules that are only sound modulo object identity (rule 28's
    /// `REF(DEREF(A)) → A`).
    pub allow_modulo_identity: bool,
    /// Allow rules stated for null-free data (the paper's own stance).
    pub allow_null_sensitive: bool,
    /// Exploration budget: maximum number of distinct plans enumerated.
    pub max_plans: usize,
    /// Seed the memo search ([`Optimizer::optimize_memo_journaled`]) with
    /// the greedy trajectory, guaranteeing memo cost ≤ greedy cost.  Turn
    /// off to measure what memo search finds entirely on its own.
    pub seed_greedy: bool,
}

impl Optimizer {
    /// The full catalogue with default settings.
    pub fn standard() -> Self {
        Optimizer {
            rules: crate::rules::all(),
            allow_modulo_identity: true,
            allow_null_sensitive: true,
            max_plans: 512,
            seed_greedy: true,
        }
    }

    /// An engine with a chosen rule set.
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Self {
        Optimizer {
            rules,
            allow_modulo_identity: true,
            allow_null_sensitive: true,
            max_plans: 512,
            seed_greedy: true,
        }
    }

    fn rule_enabled(&self, r: &dyn Rule) -> bool {
        (self.allow_modulo_identity || !r.modulo_identity())
            && (self.allow_null_sensitive || !r.assumes_null_free())
    }

    /// The currently enabled rules, as the memo search consumes them.
    pub(crate) fn enabled_rules(&self) -> Vec<&dyn Rule> {
        self.rules
            .iter()
            .map(|r| r.as_ref())
            .filter(|r| self.rule_enabled(*r))
            .collect()
    }

    /// Single-step rewrites of `e` (at every position), tagged with the
    /// rule that produced each.
    pub fn neighbors(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<(&'static str, Expr)> {
        self.neighbors_at(e, ctx)
            .into_iter()
            .map(|n| (n.rule, n.plan))
            .collect()
    }

    /// [`Optimizer::neighbors`] with each rewrite tagged by the path of the
    /// node it fired at (child indices from the root, [`Expr::children`]
    /// order) — the position information the rewrite journal records.
    pub fn neighbors_at(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.collect(e, ctx, &mut path, &mut |rule, path, rewritten| {
            out.push(Neighbor {
                rule,
                path,
                plan: rewritten,
            })
        });
        out
    }

    fn collect(
        &self,
        e: &Expr,
        ctx: &RuleCtx<'_>,
        path: &mut NodePath,
        sink: &mut dyn FnMut(&'static str, NodePath, Expr),
    ) {
        for r in &self.rules {
            if !self.rule_enabled(r.as_ref()) {
                continue;
            }
            for alt in r.apply(e, ctx) {
                sink(r.name(), path.clone(), alt);
            }
        }
        for (n, child) in e.children().into_iter().enumerate() {
            let mut child_alts: Vec<(&'static str, NodePath, Expr)> = Vec::new();
            path.push(n);
            self.collect(child, ctx, path, &mut |rule, at, alt| {
                child_alts.push((rule, at, alt))
            });
            path.pop();
            for (rule, at, alt) in child_alts {
                sink(rule, at, replace_nth_child(e, n, &alt));
            }
        }
    }

    /// Enumerate the plan space reachable from `e` (breadth-first, bounded
    /// by `max_plans`), including `e` itself.
    pub fn explore(&self, e: &Expr, ctx: &RuleCtx<'_>) -> Vec<Expr> {
        let mut seen: HashSet<Expr> = HashSet::new();
        let mut queue: Vec<Expr> = vec![e.clone()];
        seen.insert(e.clone());
        let mut i = 0;
        while i < queue.len() && seen.len() < self.max_plans {
            let cur = queue[i].clone();
            i += 1;
            for (_, alt) in self.neighbors(&cur, ctx) {
                if seen.len() >= self.max_plans {
                    break;
                }
                if seen.insert(alt.clone()) {
                    queue.push(alt);
                }
            }
        }
        queue
    }

    /// Exhaustively explore and return the cheapest plan under `stats`
    /// (ties broken toward the original).
    pub fn optimize(&self, e: &Expr, ctx: &RuleCtx<'_>, stats: &Statistics) -> Optimized {
        let plans = self.explore(e, ctx);
        let explored = plans.len();
        let mut best = e.clone();
        let mut best_cost = cost_of(e, stats);
        for p in plans {
            let c = cost_of(&p, stats);
            if c < best_cost {
                best_cost = c;
                best = p;
            }
        }
        Optimized {
            plan: best,
            cost: best_cost,
            explored,
        }
    }

    /// Greedy hill-climbing: repeatedly take the single best cost-improving
    /// neighbor until none improves.  Much cheaper than [`Self::optimize`]
    /// and sufficient for the always-beneficial heuristics ("some of the
    /// trees are obtained using heuristics that are always beneficial",
    /// Section 5).
    pub fn optimize_greedy(&self, e: &Expr, ctx: &RuleCtx<'_>, stats: &Statistics) -> Optimized {
        let mut cur = e.clone();
        let mut cur_cost = cost_of(&cur, stats);
        let mut explored = 1;
        loop {
            let mut improved = false;
            for (rule, alt) in self.neighbors(&cur, ctx) {
                explored += 1;
                let c = cost_of(&alt, stats);
                if c < cur_cost {
                    // Fast path: soundness is a rule-catalogue invariant, so
                    // the full gate runs only under debug assertions here
                    // (the journaled pass gates unconditionally).
                    debug_assert!(
                        soundness_violation(&cur, &alt, ctx).is_none(),
                        "rule `{rule}` proposed an unsound rewrite: {}",
                        soundness_violation(&cur, &alt, ctx).unwrap_or_default()
                    );
                    let _ = rule;
                    cur = alt;
                    cur_cost = c;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return Optimized {
                    plan: cur,
                    cost: cur_cost,
                    explored,
                };
            }
        }
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen plan.
    pub plan: Expr,
    /// Its estimated cost.
    pub cost: f64,
    /// Number of plans (or neighbor evaluations, for greedy) examined.
    pub explored: usize,
}

/// A single-step rewrite: the rule, the position it fired at, and the
/// whole-plan result.
#[derive(Debug, Clone)]
pub struct Neighbor {
    /// The rule that fired.
    pub rule: &'static str,
    /// Path of the node the rule fired at (empty = root).
    pub path: NodePath,
    /// The rewritten plan (with the rewrite spliced in at `path`).
    pub plan: Expr,
}

/// One step of a traced greedy run.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The rule that fired.
    pub rule: &'static str,
    /// Estimated cost before the step.
    pub cost_before: f64,
    /// Estimated cost after the step.
    pub cost_after: f64,
    /// The plan after the step.
    pub plan: Expr,
}

/// A rewrite the soundness gate turned down: the rule proposed a
/// cost-improving plan that changed the inferred output schema or
/// introduced a new error diagnostic (see [`soundness_violation`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RefusedStep {
    /// The rule whose proposal was refused.
    pub rule: &'static str,
    /// Path of the node the rule fired at (empty = root).
    pub path: NodePath,
    /// Why the gate refused it.
    pub reason: String,
}

/// One accepted rewrite in a [`RewriteJournal`].
#[derive(Debug, Clone)]
pub struct JournalStep {
    /// The rule that fired.
    pub rule: &'static str,
    /// Path of the node the rule fired at (empty = root).
    pub path: NodePath,
    /// Estimated cost before the step.
    pub cost_before: f64,
    /// Estimated cost after the step.
    pub cost_after: f64,
    /// The plan after the step.
    pub plan: Expr,
}

/// The full story of one optimization run: every rule firing with its
/// node position and cost delta, the enumeration effort against the
/// `max_plans` budget, and the best-cost trajectory.
#[derive(Debug, Clone)]
pub struct RewriteJournal {
    /// Accepted rewrites, in order.
    pub steps: Vec<JournalStep>,
    /// Cost-improving rewrites the soundness gate refused, in order of
    /// first refusal (each distinct (rule, path, reason) recorded once).
    pub refused: Vec<RefusedStep>,
    /// Neighbor plans enumerated (cost-model evaluations), including the
    /// starting plan.
    pub plans_enumerated: usize,
    /// The engine's exploration budget at the time of the run.
    pub max_plans: usize,
    /// Estimated cost of the starting plan.
    pub initial_cost: f64,
    /// Estimated cost of the final plan.
    pub final_cost: f64,
}

impl RewriteJournal {
    /// Best cost after each accepted step, starting with the initial plan —
    /// the trajectory a cost-over-time plot wants.
    pub fn cost_trajectory(&self) -> Vec<f64> {
        let mut t = Vec::with_capacity(self.steps.len() + 1);
        t.push(self.initial_cost);
        t.extend(self.steps.iter().map(|s| s.cost_after));
        t
    }

    /// The names of the rules that fired, in order.
    pub fn rule_sequence(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.rule).collect()
    }
}

impl Optimizer {
    /// [`Optimizer::optimize_greedy`] with a per-step trace — which rule
    /// fired, and how much estimated cost it removed.  This is the
    /// instrumentation the paper's Section 6 asks for when studying which
    /// operators are "amenable to optimization".
    pub fn optimize_greedy_traced(
        &self,
        e: &Expr,
        ctx: &RuleCtx<'_>,
        stats: &Statistics,
    ) -> (Optimized, Vec<TraceStep>) {
        let (best, journal) = self.optimize_greedy_journaled(e, ctx, stats);
        let trace = journal
            .steps
            .into_iter()
            .map(|s| TraceStep {
                rule: s.rule,
                cost_before: s.cost_before,
                cost_after: s.cost_after,
                plan: s.plan,
            })
            .collect();
        (best, trace)
    }

    /// [`Optimizer::optimize_greedy`] with a full [`RewriteJournal`]:
    /// every accepted rule firing with the node path it fired at, plus the
    /// enumeration effort against the `max_plans` budget.
    pub fn optimize_greedy_journaled(
        &self,
        e: &Expr,
        ctx: &RuleCtx<'_>,
        stats: &Statistics,
    ) -> (Optimized, RewriteJournal) {
        let mut cur = e.clone();
        let mut cur_cost = cost_of(&cur, stats);
        let initial_cost = cur_cost;
        let mut explored = 1;
        let mut steps = Vec::new();
        let mut refused: Vec<RefusedStep> = Vec::new();
        let mut refused_seen: HashSet<(&'static str, NodePath, String)> = HashSet::new();
        loop {
            let mut improved = false;
            for n in self.neighbors_at(&cur, ctx) {
                explored += 1;
                let c = cost_of(&n.plan, stats);
                if c < cur_cost {
                    // Rewrite-soundness gate: re-verify the candidate and
                    // refuse (journaling the refusal) instead of accepting
                    // a schema-changing or diagnostic-introducing step.
                    if let Some(reason) = soundness_violation(&cur, &n.plan, ctx) {
                        if refused_seen.insert((n.rule, n.path.clone(), reason.clone())) {
                            refused.push(RefusedStep {
                                rule: n.rule,
                                path: n.path,
                                reason,
                            });
                        }
                        continue;
                    }
                    steps.push(JournalStep {
                        rule: n.rule,
                        path: n.path,
                        cost_before: cur_cost,
                        cost_after: c,
                        plan: n.plan.clone(),
                    });
                    cur = n.plan;
                    cur_cost = c;
                    improved = true;
                    break;
                }
            }
            if !improved {
                let journal = RewriteJournal {
                    steps,
                    refused,
                    plans_enumerated: explored,
                    max_plans: self.max_plans,
                    initial_cost,
                    final_cost: cur_cost,
                };
                return (
                    Optimized {
                        plan: cur,
                        cost: cur_cost,
                        explored,
                    },
                    journal,
                );
            }
        }
    }
}

/// Rebuild `e` with its `n`-th child (in [`Expr::children`] order) replaced.
pub fn replace_nth_child(e: &Expr, n: usize, new: &Expr) -> Expr {
    let mut i = 0usize;
    e.map_children(&mut |c| {
        let r = if i == n { new.clone() } else { c.clone() };
        i += 1;
        r
    })
}

/// Rewrite Section 4 type-filtered scans to use per-type extent indexes
/// where `stats` says one exists:
/// `SET_APPLY[T1/…;E](Named(P))` → `SET_APPLY[E](Named("P::exact::T1") ⊎ …)`
/// — the "need to scan P three times … disappears" move.  The catalog
/// (in `excess-db`) maintains the `P::exact::T` virtual objects.
pub fn apply_extent_indexes(e: &Expr, stats: &Statistics) -> Expr {
    let rebuilt = e.map_children(&mut |c| apply_extent_indexes(c, stats));
    if let Expr::SetApply {
        input,
        body,
        only_types: Some(ts),
    } = &rebuilt
    {
        if let Expr::Named(obj) = &**input {
            if !ts.is_empty() && ts.iter().all(|t| stats.has_extent_index(obj, t)) {
                let mut parts = ts.iter().map(|t| Expr::named(format!("{obj}::exact::{t}")));
                let first = parts.next().expect("non-empty");
                let unioned = parts.fold(first, |acc, p| acc.add_union(p));
                return Expr::SetApply {
                    input: Box::new(unioned),
                    body: body.clone(),
                    only_types: None,
                };
            }
        }
    }
    rebuilt
}

/// One extent-index substitution site: the node path of the matching
/// `SET_APPLY[T1/…;E](Named(P))` and the whole plan after substituting at
/// that site only, skipping sites in `skip` (preorder, first match wins).
fn substitute_one_extent(
    e: &Expr,
    stats: &Statistics,
    path: &mut NodePath,
    skip: &HashSet<NodePath>,
) -> Option<(NodePath, Expr)> {
    if let Expr::SetApply {
        input,
        body,
        only_types: Some(ts),
    } = e
    {
        if let Expr::Named(obj) = &**input {
            if !ts.is_empty()
                && ts.iter().all(|t| stats.has_extent_index(obj, t))
                && !skip.contains(path)
            {
                let mut parts = ts.iter().map(|t| Expr::named(format!("{obj}::exact::{t}")));
                let first = parts.next().expect("non-empty");
                let unioned = parts.fold(first, |acc, p| acc.add_union(p));
                let new = Expr::SetApply {
                    input: Box::new(unioned),
                    body: body.clone(),
                    only_types: None,
                };
                return Some((path.clone(), new));
            }
        }
    }
    for (n, child) in e.children().into_iter().enumerate() {
        path.push(n);
        let hit = substitute_one_extent(child, stats, path, skip);
        path.pop();
        if let Some((at, new_child)) = hit {
            return Some((at, replace_nth_child(e, n, &new_child)));
        }
    }
    None
}

/// [`apply_extent_indexes`] with the soundness gate and the rewrite
/// journal covering the substitution phase too: each site is rewritten one
/// at a time, re-verified, and either journaled as an accepted
/// [`JournalStep`] (rule [`EXTENT_INDEX_RULE`]) or refused — a substitution
/// whose extent objects are missing from the catalog, say, changes the
/// inferred schema and is rejected rather than silently producing a plan
/// that cannot evaluate.
pub fn apply_extent_indexes_journaled(
    e: &Expr,
    stats: &Statistics,
    ctx: &RuleCtx<'_>,
    journal: &mut RewriteJournal,
) -> Expr {
    let mut cur = e.clone();
    let mut skip: HashSet<NodePath> = HashSet::new();
    while let Some((path, next)) = substitute_one_extent(&cur, stats, &mut NodePath::new(), &skip) {
        // Substitution keeps node arity and positions intact, so refused
        // paths stay valid across later substitutions elsewhere.
        if let Some(reason) = soundness_violation(&cur, &next, ctx) {
            journal.refused.push(RefusedStep {
                rule: EXTENT_INDEX_RULE,
                path: path.clone(),
                reason,
            });
            skip.insert(path);
            continue;
        }
        let cost_before = cost_of(&cur, stats);
        let cost_after = cost_of(&next, stats);
        journal.steps.push(JournalStep {
            rule: EXTENT_INDEX_RULE,
            path,
            cost_before,
            cost_after,
            plan: next.clone(),
        });
        journal.final_cost = cost_after;
        journal.plans_enumerated += 1;
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::Pred;
    use excess_core::infer::SchemaCatalog;
    use excess_types::{SchemaType, TypeRegistry};
    use std::collections::HashMap;

    fn ctx_fixtures() -> (TypeRegistry, HashMap<String, SchemaType>) {
        let mut reg = TypeRegistry::new();
        reg.define(
            "Emp",
            SchemaType::tuple([("name", SchemaType::chars()), ("floor", SchemaType::int4())]),
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert("S".to_string(), SchemaType::set(SchemaType::named("Emp")));
        (reg, schemas)
    }

    fn ctx<'a>(reg: &'a TypeRegistry, schemas: &'a HashMap<String, SchemaType>) -> RuleCtx<'a> {
        RuleCtx {
            registry: reg,
            schemas,
        }
    }

    #[test]
    fn neighbors_fire_at_nested_positions() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        // DE nested under a SET: DE(DE(S)) inside MakeSet.
        let e = Expr::named("S").dup_elim().dup_elim().make_set();
        let ns = opt.neighbors(&e, &ctx(&reg, &schemas));
        assert!(ns.iter().any(
            |(r, p)| *r == "rel4-de-idempotent" && *p == Expr::named("S").dup_elim().make_set()
        ));
    }

    #[test]
    fn greedy_fuses_set_applys() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let best = opt.optimize_greedy(&e, &ctx(&reg, &schemas), &stats);
        // One SET_APPLY, fused body.
        assert_eq!(
            best.plan,
            Expr::named("S").set_apply(Expr::input().extract("name").make_tup("n"))
        );
    }

    #[test]
    fn traced_greedy_records_each_improving_step() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let (best, trace) = opt.optimize_greedy_traced(&e, &ctx(&reg, &schemas), &stats);
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|s| s.rule == "rule15-combine-set-applys"));
        // Costs strictly decrease along the trace and end at the result.
        for w in trace.windows(2) {
            assert!(w[1].cost_before <= w[0].cost_after + 1e-9);
        }
        assert_eq!(trace.last().unwrap().plan, best.plan);
    }

    #[test]
    fn neighbors_at_reports_firing_positions() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        // DE(DE(S)) inside MakeSet: the idempotence rule fires at the
        // outer DE, which is child 0 of the root SET node.
        let e = Expr::named("S").dup_elim().dup_elim().make_set();
        let ns = opt.neighbors_at(&e, &ctx(&reg, &schemas));
        let hit = ns
            .iter()
            .find(|n| {
                n.rule == "rel4-de-idempotent" && n.plan == Expr::named("S").dup_elim().make_set()
            })
            .expect("idempotence rewrite offered");
        assert_eq!(hit.path, vec![0]);
    }

    #[test]
    fn journal_records_rules_paths_and_costs() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let (best, journal) = opt.optimize_greedy_journaled(&e, &ctx(&reg, &schemas), &stats);
        assert!(!journal.steps.is_empty());
        assert!(journal
            .rule_sequence()
            .contains(&"rule15-combine-set-applys"));
        assert_eq!(journal.initial_cost, journal.steps[0].cost_before);
        assert_eq!(journal.final_cost, best.cost);
        assert_eq!(journal.plans_enumerated, best.explored);
        assert_eq!(journal.max_plans, opt.max_plans);
        // Trajectory: initial cost, then strictly decreasing accepted costs.
        let traj = journal.cost_trajectory();
        assert_eq!(traj.len(), journal.steps.len() + 1);
        assert!(traj.windows(2).all(|w| w[1] < w[0]));
        assert_eq!(journal.steps.last().unwrap().plan, best.plan);
    }

    #[test]
    fn traced_and_journaled_greedy_agree() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let (plain, _) = (opt.optimize_greedy(&e, &ctx(&reg, &schemas), &stats), ());
        let (journaled, _) = opt.optimize_greedy_journaled(&e, &ctx(&reg, &schemas), &stats);
        assert_eq!(plain.plan, journaled.plan);
        assert_eq!(plain.explored, journaled.explored);
    }

    #[test]
    fn explore_is_bounded_and_contains_original() {
        let (reg, schemas) = ctx_fixtures();
        let mut opt = Optimizer::standard();
        opt.max_plans = 16;
        let pred = Pred::eq(Expr::input().extract("floor"), Expr::int(5));
        let e = Expr::named("S").select(pred.clone()).select(pred);
        let plans = opt.explore(&e, &ctx(&reg, &schemas));
        assert!(plans.len() <= 16);
        assert!(plans.contains(&e));
    }

    #[test]
    fn extent_index_rewrite() {
        let mut stats = Statistics::new();
        stats.add_extent_index("P", "Student");
        stats.add_extent_index("P", "Person");
        let e =
            Expr::named("P").set_apply_only(["Person", "Student"], Expr::input().extract("name"));
        let rewritten = apply_extent_indexes(&e, &stats);
        let expected = Expr::named("P::exact::Person")
            .add_union(Expr::named("P::exact::Student"))
            .set_apply(Expr::input().extract("name"));
        assert_eq!(rewritten, expected);
        // Without the index nothing changes.
        let none = apply_extent_indexes(&e, &Statistics::new());
        assert_eq!(none, e);
    }

    #[test]
    fn with_no_rules_nothing_rewrites() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::with_rules(vec![]);
        let e = Expr::named("S").dup_elim().dup_elim();
        assert!(opt.neighbors(&e, &ctx(&reg, &schemas)).is_empty());
        let best = opt.optimize(&e, &ctx(&reg, &schemas), &Statistics::new());
        assert_eq!(best.plan, e);
        assert_eq!(best.explored, 1);
    }

    #[test]
    fn disabling_rule_classes_prunes_neighbors() {
        let (reg, schemas) = ctx_fixtures();
        let mut opt = Optimizer::standard();
        let e = Expr::named("S").make_ref("Emp").deref();
        let with = opt.neighbors(&e, &ctx(&reg, &schemas)).len();
        opt.allow_modulo_identity = false;
        let without = opt.neighbors(&e, &ctx(&reg, &schemas)).len();
        // rule28 (modulo-identity) is excluded; rule28a (sound) remains.
        assert!(without < with, "{without} vs {with}");
        assert!(without >= 1);
    }

    #[test]
    fn schema_catalog_is_object_safe() {
        let (_, schemas) = ctx_fixtures();
        let dynref: &dyn SchemaCatalog = &schemas;
        assert!(dynref.object_schema("S").is_some());
    }
}
