//! Cascades-style memoized plan search over the rule catalogue.
//!
//! The greedy pass ([`Optimizer::optimize_greedy_journaled`]) walks the
//! catalogue in a fixed order and keeps only cost-improving steps, so it
//! finds the paper's Figure 6 → Figure 8 derivation partly by luck: the
//! DE-through-GROUP push must happen to be the first improving neighbor.
//! The memo search removes the luck.  Every logical subtree is interned
//! into a *group* (structural hashing modulo group references — two
//! subtrees land in the same group exactly when their root operators match
//! and their children are, recursively, the same groups), rules fire at
//! group roots regardless of whether they improve cost, sound alternatives
//! accumulate as extra members, and the cheapest plan is extracted by a
//! bottom-up group-costing fixpoint.  The soundness gate and rewrite
//! journal carry over per group: each candidate is re-verified against the
//! member it was derived from, and refusals are journaled exactly as in
//! the greedy pass (deduplicated per rule/group/reason, with the group id
//! standing in for the node path).
//!
//! Group invariants:
//!
//! * every member of a group, reconstructed with any choice of member for
//!   each child group, denotes the same value as the group's exemplar
//!   (enforced by the soundness gate at insertion);
//! * a group's `best_cost` never increases, and after the costing
//!   fixpoint it equals the cheapest reconstruction reachable from its
//!   members with best children;
//! * merged groups forward to their union-find root; member keys always
//!   store canonical (root) child ids at creation time.
//!
//! Subtree-level verification is weaker than whole-plan verification —
//! `infer_closed` cannot type an open subtree (free [`Expr::Input`]s), and
//! the gate deliberately lets ill-typed *before* plans through — so the
//! extracted winner is re-gated against the original whole plan; a
//! violation there is journaled under [`MEMO_EXTRACT_RULE`] and the search
//! falls back to the cheapest sound whole-plan candidate.

use crate::cost::{cost_of, estimate, Estimate};
use crate::engine::{
    soundness_violation, JournalStep, Optimized, Optimizer, RefusedStep, RewriteJournal,
};
use crate::rule::RuleCtx;
use crate::stats::Statistics;
use excess_core::analysis;
use excess_core::catalog::EmptyCatalog;
use excess_core::expr::Expr;
use std::collections::{HashMap, HashSet};

/// The journal rule name for the final whole-plan gate on the extracted
/// winner (only ever appears in `refused` — extraction itself is not a
/// rewrite).
pub const MEMO_EXTRACT_RULE: &str = "memo-extract";

/// The journal rule name under which a feedback-driven re-optimization is
/// recorded (the step's `plan` is the re-optimized logical plan).
pub const REOPTIMIZE_RULE: &str = "reoptimize";

/// Environment variable selecting the plan-search strategy.
pub const OPTIMIZER_ENV: &str = "EXCESS_OPTIMIZER";

/// Exploration rounds: each round reconstructs every member with the
/// current best children and fires the catalogue once at each group root.
const MAX_ROUNDS: usize = 6;

/// Which plan-search strategy the pipeline should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerMode {
    /// Memoized group search (the default).
    #[default]
    Memo,
    /// The legacy greedy hill-climbing pass, kept for differential
    /// testing.
    Greedy,
}

impl OptimizerMode {
    /// Parse a setting string (the value of [`OPTIMIZER_ENV`]).  Returns
    /// the mode plus a warning when the value was not recognized (the
    /// default mode is used in that case).
    pub fn from_setting(setting: Option<&str>) -> (Self, Option<String>) {
        match setting.map(str::trim) {
            None | Some("") | Some("memo") => (OptimizerMode::Memo, None),
            Some("greedy") => (OptimizerMode::Greedy, None),
            Some(other) => (
                OptimizerMode::Memo,
                Some(format!(
                    "{OPTIMIZER_ENV}={other:?} not recognized (expected `memo` or `greedy`); \
                     using memo"
                )),
            ),
        }
    }

    /// [`OptimizerMode::from_setting`] on the process environment.
    pub fn from_env() -> (Self, Option<String>) {
        Self::from_setting(std::env::var(OPTIMIZER_ENV).ok().as_deref())
    }
}

/// A member: the node's operator skeleton (children replaced by a fixed
/// placeholder) plus the canonical ids of the child groups, in
/// [`Expr::children`] order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemberKey {
    skeleton: Expr,
    children: Vec<usize>,
}

/// The placeholder spliced in for children when hashing a node's skeleton.
/// De Bruijn indices this deep cannot occur in real plans.
const PLACEHOLDER: Expr = Expr::Input(usize::MAX);

fn skeleton_of(e: &Expr) -> Expr {
    e.map_children(&mut |_| PLACEHOLDER)
}

/// The leading token of an expression's debug form — a compact operator
/// label for group summaries (`SetApply`, `RelJoin`, `Named`, …).
fn op_label(e: &Expr) -> String {
    let d = format!("{e:?}");
    d.split(['(', ' ', '{'])
        .next()
        .unwrap_or("?")
        .to_string()
}

struct Group {
    /// The concrete expression that created the group — used for one-time
    /// property/estimate derivation and as the initial best.
    exemplar: Expr,
    members: Vec<MemberKey>,
    best_expr: Expr,
    best_cost: f64,
    est: Estimate,
    props: String,
}

/// The memo: groups of structurally-equal-modulo-groups subtrees, with a
/// union-find over group ids so a rewrite landing in an existing group
/// merges rather than forks.
pub struct Memo {
    groups: Vec<Group>,
    parent: Vec<usize>,
    index: HashMap<MemberKey, usize>,
    total_members: usize,
}

impl Memo {
    fn new() -> Self {
        Memo {
            groups: Vec::new(),
            parent: Vec::new(),
            index: HashMap::new(),
            total_members: 0,
        }
    }

    fn find(&self, mut g: usize) -> usize {
        while self.parent[g] != g {
            g = self.parent[g];
        }
        g
    }

    /// Intern `e` (recursively — every subtree becomes a group) and return
    /// its canonical group id.  Per-group properties and estimates are
    /// derived once, at group creation: the estimate via the cost model,
    /// the properties via the data-free `excess_core::analysis` pass.
    fn intern(&mut self, e: &Expr, stats: &Statistics) -> usize {
        let children: Vec<usize> = e
            .children()
            .into_iter()
            .map(|c| self.intern(c, stats))
            .collect();
        let key = MemberKey {
            skeleton: skeleton_of(e),
            children,
        };
        if let Some(&g) = self.index.get(&key) {
            return self.find(g);
        }
        let id = self.groups.len();
        let est = estimate(e, &mut Vec::new(), stats);
        let props = analysis::analyze(e, &EmptyCatalog)
            .props_at(&[])
            .map(|p| p.render())
            .unwrap_or_default();
        self.groups.push(Group {
            exemplar: e.clone(),
            members: vec![key.clone()],
            best_expr: e.clone(),
            best_cost: cost_of(e, stats),
            est,
            props,
        });
        self.parent.push(id);
        self.index.insert(key, id);
        self.total_members += 1;
        id
    }

    /// Intern `e` and merge its group with `g` — how an accepted rewrite
    /// of a member of `g` records that both denote the same value.
    fn intern_into(&mut self, e: &Expr, g: usize, stats: &Statistics) -> usize {
        let ge = self.intern(e, stats);
        self.union(g, ge)
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        // Keep the older id: the root group stays group 0 forever.
        let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
        let moved = std::mem::take(&mut self.groups[drop].members);
        for m in moved {
            if !self.groups[keep].members.contains(&m) {
                self.groups[keep].members.push(m);
            }
        }
        if self.groups[drop].best_cost < self.groups[keep].best_cost {
            self.groups[keep].best_cost = self.groups[drop].best_cost;
            self.groups[keep].best_expr = self.groups[drop].best_expr.clone();
        }
        self.parent[drop] = keep;
        keep
    }

    fn live_groups(&self) -> Vec<usize> {
        (0..self.groups.len())
            .filter(|&g| self.find(g) == g)
            .collect()
    }

    /// Rebuild a member into a concrete expression using each child
    /// group's current best.
    fn reconstruct(&self, key: &MemberKey) -> Expr {
        let mut i = 0usize;
        key.skeleton.map_children(&mut |_| {
            let g = self.find(key.children[i]);
            i += 1;
            self.groups[g].best_expr.clone()
        })
    }

    /// Bottom-up group costing: repeatedly re-reconstruct every member
    /// with best children and keep any strict improvement, until no
    /// group's best changes.  Costs only ever decrease, so this
    /// terminates; the pass cap is a safety net.
    fn cost_fixpoint(&mut self, stats: &Statistics) {
        for _ in 0..64 {
            let mut changed = false;
            for g in self.live_groups() {
                let mut best_cost = self.groups[g].best_cost;
                let mut best_expr: Option<Expr> = None;
                for key in &self.groups[g].members {
                    let cand = self.reconstruct(key);
                    let c = cost_of(&cand, stats);
                    if c + 1e-9 < best_cost {
                        best_cost = c;
                        best_expr = Some(cand);
                    }
                }
                if let Some(e) = best_expr {
                    self.groups[g].best_cost = best_cost;
                    self.groups[g].best_expr = e;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// One group in a [`MemoSnapshot`].
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Canonical group id.
    pub id: usize,
    /// Root operator of the group's exemplar.
    pub op: String,
    /// Number of distinct members (alternative shapes).
    pub members: usize,
    /// Cheapest reconstruction cost after the fixpoint.
    pub best_cost: f64,
    /// Estimated output rows (derived once from the exemplar).
    pub est_rows: f64,
    /// Data-free property analysis one-liner for the exemplar.
    pub props: String,
}

/// A rendered picture of one memo run — what the REPL/server `.memo`
/// command shows for the last optimized query.
#[derive(Debug, Clone)]
pub struct MemoSnapshot {
    /// Live (unmerged) groups, root first.
    pub groups: Vec<GroupSummary>,
    /// Total members across all groups.
    pub members: usize,
    /// Exploration rounds run.
    pub rounds: usize,
    /// Whether the greedy trajectory seeded the root group.
    pub seeded: bool,
    /// Cost of the original plan.
    pub initial_cost: f64,
    /// Cost of the extracted winner.
    pub winner_cost: f64,
    /// The extracted winner, rendered.
    pub winner: String,
}

impl MemoSnapshot {
    /// Multi-line human rendering (the REPL's `.memo` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "memo: {} groups, {} members, {} rounds{}\n",
            self.groups.len(),
            self.members,
            self.rounds,
            if self.seeded { ", greedy-seeded" } else { "" }
        ));
        for g in &self.groups {
            out.push_str(&format!(
                "  g{}: {} ({} member{}), best cost {:.1}, est rows {:.1}",
                g.id,
                g.op,
                g.members,
                if g.members == 1 { "" } else { "s" },
                g.best_cost,
                g.est_rows
            ));
            if !g.props.is_empty() {
                out.push_str(&format!(" — {}", g.props));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "winner: cost {:.1} (initial {:.1})\n  {}",
            self.winner_cost, self.initial_cost, self.winner
        ));
        out
    }
}

/// The result of a memo run: the chosen plan, the rewrite journal
/// (accepted per-group rule firings and gate refusals), and the snapshot
/// for `.memo`.
#[derive(Debug, Clone)]
pub struct MemoRun {
    /// The journal, shaped exactly like the greedy journal (paths hold the
    /// group id a rule fired in).
    pub journal: RewriteJournal,
    /// The group picture for rendering.
    pub snapshot: MemoSnapshot,
}

impl Optimizer {
    /// Memoized plan search: intern the plan into groups, fire the
    /// catalogue at every group root for a bounded number of rounds (soundness
    /// gate per candidate, refusals journaled), and extract the cheapest
    /// plan by bottom-up group costing.  When [`Optimizer::seed_greedy`]
    /// is set (the default) the greedy trajectory is interned into the
    /// root group first, so the extracted cost is never worse than
    /// greedy's.
    pub fn optimize_memo(&self, e: &Expr, ctx: &RuleCtx<'_>, stats: &Statistics) -> Optimized {
        self.optimize_memo_journaled(e, ctx, stats).0
    }

    /// [`Optimizer::optimize_memo`] with the full journal and memo
    /// snapshot.
    pub fn optimize_memo_journaled(
        &self,
        e: &Expr,
        ctx: &RuleCtx<'_>,
        stats: &Statistics,
    ) -> (Optimized, MemoRun) {
        let initial_cost = cost_of(e, stats);
        let mut memo = Memo::new();
        let root = memo.intern(e, stats);
        let mut steps: Vec<JournalStep> = Vec::new();
        let mut refused: Vec<RefusedStep> = Vec::new();
        let mut refused_seen: HashSet<(&'static str, usize, String)> = HashSet::new();
        let mut explored = 1usize;

        // Whole-plan candidates: always sound to compare against the
        // original as complete plans (no free inputs), so they back the
        // final extraction.  Order matters only for ties.
        let mut whole: Vec<Expr> = vec![e.clone()];

        let desugared = e.desugar();
        if desugared != *e && soundness_violation(e, &desugared, ctx).is_none() {
            memo.intern_into(&desugared, root, stats);
            whole.push(desugared);
            explored += 1;
        }

        if self.seed_greedy {
            let (g, gj) = self.optimize_greedy_journaled(e, ctx, stats);
            explored += g.explored;
            for s in &gj.steps {
                memo.intern_into(&s.plan, root, stats);
                whole.push(s.plan.clone());
            }
            memo.intern_into(&g.plan, root, stats);
            whole.push(g.plan);
        }

        memo.cost_fixpoint(stats);

        let mut seen: HashSet<Expr> = HashSet::new();
        let mut rounds = 0usize;
        let rules = self.enabled_rules();
        'search: while rounds < MAX_ROUNDS {
            rounds += 1;
            let mut grew = false;
            for g in memo.live_groups() {
                // Members appended this round are re-reconstructed next
                // round; iterate a stable snapshot of the current ones.
                let n_members = memo.groups[g].members.len();
                for mi in 0..n_members {
                    if memo.total_members >= self.max_plans {
                        break 'search;
                    }
                    // A rewrite elsewhere may have merged this group away
                    // (its members move to the union-find root, which a
                    // later round revisits).
                    if memo.find(g) != g || mi >= memo.groups[g].members.len() {
                        break;
                    }
                    let key = memo.groups[g].members[mi].clone();
                    let cur = memo.reconstruct(&key);
                    let cur_cost = cost_of(&cur, stats);
                    for r in &rules {
                        for alt in r.apply(&cur, ctx) {
                            explored += 1;
                            if !seen.insert(alt.clone()) {
                                continue;
                            }
                            if let Some(reason) = soundness_violation(&cur, &alt, ctx) {
                                if refused_seen.insert((r.name(), g, reason.clone())) {
                                    refused.push(RefusedStep {
                                        rule: r.name(),
                                        path: vec![g],
                                        reason,
                                    });
                                }
                                continue;
                            }
                            steps.push(JournalStep {
                                rule: r.name(),
                                path: vec![g],
                                cost_before: cur_cost,
                                cost_after: cost_of(&alt, stats),
                                plan: alt.clone(),
                            });
                            memo.intern_into(&alt, g, stats);
                            grew = true;
                        }
                    }
                }
            }
            memo.cost_fixpoint(stats);
            if !grew {
                break;
            }
        }
        memo.cost_fixpoint(stats);

        // Extraction: the root group's best, backed by the whole-plan
        // candidates.  Strictly-lower cost wins; ties keep the earlier
        // candidate (the original plan first).
        let root = memo.find(root);
        let mut candidates: Vec<(Expr, f64)> = Vec::with_capacity(whole.len() + 1);
        for w in whole {
            let c = cost_of(&w, stats);
            candidates.push((w, c));
        }
        candidates.push((
            memo.groups[root].best_expr.clone(),
            memo.groups[root].best_cost,
        ));
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
        // Final whole-plan gate: subtree-level soundness cannot always see
        // through open subtrees, so re-verify the winner end to end.
        let (mut best, mut best_cost) = (e.clone(), initial_cost);
        for (cand, c) in candidates {
            if c >= best_cost {
                break;
            }
            if let Some(reason) = soundness_violation(e, &cand, ctx) {
                if refused_seen.insert((MEMO_EXTRACT_RULE, root, reason.clone())) {
                    refused.push(RefusedStep {
                        rule: MEMO_EXTRACT_RULE,
                        path: Vec::new(),
                        reason,
                    });
                }
                continue;
            }
            best = cand;
            best_cost = c;
            break;
        }

        let snapshot = MemoSnapshot {
            groups: memo
                .live_groups()
                .into_iter()
                .map(|g| {
                    let gr = &memo.groups[g];
                    GroupSummary {
                        id: g,
                        op: op_label(&gr.exemplar),
                        members: gr.members.len(),
                        best_cost: gr.best_cost,
                        est_rows: gr.est.rows,
                        props: gr.props.clone(),
                    }
                })
                .collect(),
            members: memo.total_members,
            rounds,
            seeded: self.seed_greedy,
            initial_cost,
            winner_cost: best_cost,
            winner: best.to_string(),
        };
        let journal = RewriteJournal {
            steps,
            refused,
            plans_enumerated: explored,
            max_plans: self.max_plans,
            initial_cost,
            final_cost: best_cost,
        };
        (
            Optimized {
                plan: best,
                cost: best_cost,
                explored,
            },
            MemoRun { journal, snapshot },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleCtx;
    use excess_core::expr::Pred;
    use excess_types::{SchemaType, TypeRegistry};
    use std::collections::HashMap;

    fn ctx_fixtures() -> (TypeRegistry, HashMap<String, SchemaType>) {
        let mut reg = TypeRegistry::new();
        reg.define(
            "Emp",
            SchemaType::tuple([("name", SchemaType::chars()), ("floor", SchemaType::int4())]),
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert("S".to_string(), SchemaType::set(SchemaType::named("Emp")));
        (reg, schemas)
    }

    fn ctx<'a>(reg: &'a TypeRegistry, schemas: &'a HashMap<String, SchemaType>) -> RuleCtx<'a> {
        RuleCtx {
            registry: reg,
            schemas,
        }
    }

    #[test]
    fn mode_parses_and_warns_on_unknown() {
        assert_eq!(OptimizerMode::from_setting(None).0, OptimizerMode::Memo);
        assert_eq!(
            OptimizerMode::from_setting(Some("memo")).0,
            OptimizerMode::Memo
        );
        assert_eq!(
            OptimizerMode::from_setting(Some("greedy")).0,
            OptimizerMode::Greedy
        );
        let (mode, warn) = OptimizerMode::from_setting(Some("fancy"));
        assert_eq!(mode, OptimizerMode::Memo);
        assert!(warn.unwrap().contains("fancy"));
    }

    #[test]
    fn memo_fuses_set_applys_like_greedy() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let best = opt.optimize_memo(&e, &ctx(&reg, &schemas), &stats);
        assert_eq!(
            best.plan,
            Expr::named("S").set_apply(Expr::input().extract("name").make_tup("n"))
        );
    }

    #[test]
    fn unseeded_memo_still_finds_the_fusion() {
        let (reg, schemas) = ctx_fixtures();
        let mut opt = Optimizer::standard();
        opt.seed_greedy = false;
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let (best, run) = opt.optimize_memo_journaled(&e, &ctx(&reg, &schemas), &stats);
        assert_eq!(
            best.plan,
            Expr::named("S").set_apply(Expr::input().extract("name").make_tup("n"))
        );
        assert!(!run.snapshot.seeded);
        assert!(run
            .journal
            .rule_sequence()
            .contains(&"rule15-combine-set-applys"));
    }

    #[test]
    fn memo_never_costs_more_than_greedy() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let pred = Pred::eq(Expr::input().extract("floor"), Expr::int(5));
        let plans = [
            Expr::named("S").dup_elim().dup_elim().make_set(),
            Expr::named("S")
                .select(pred.clone())
                .select(pred)
                .set_apply(Expr::input().extract("name")),
            Expr::named("S")
                .set_apply(Expr::input().extract("name"))
                .set_apply(Expr::input().make_tup("n"))
                .dup_elim(),
        ];
        for e in plans {
            let rctx = ctx(&reg, &schemas);
            let greedy = opt.optimize_greedy(&e, &rctx, &stats);
            let memo = opt.optimize_memo(&e, &rctx, &stats);
            assert!(
                memo.cost <= greedy.cost + 1e-9,
                "memo {} > greedy {} on {e:?}",
                memo.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn snapshot_groups_cover_every_subtree() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S").dup_elim().make_set();
        let (_, run) = opt.optimize_memo_journaled(&e, &ctx(&reg, &schemas), &stats);
        // At least Named(S), DE, SET — rewrites may merge some.
        assert!(run.snapshot.groups.len() >= 2, "{:?}", run.snapshot.groups);
        assert!(run.snapshot.members >= run.snapshot.groups.len());
        let rendered = run.snapshot.render();
        assert!(rendered.contains("memo:"), "{rendered}");
        assert!(rendered.contains("winner:"), "{rendered}");
    }

    #[test]
    fn journal_shape_matches_greedy_conventions() {
        let (reg, schemas) = ctx_fixtures();
        let opt = Optimizer::standard();
        let stats = Statistics::new();
        let e = Expr::named("S")
            .set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n"));
        let (best, run) = opt.optimize_memo_journaled(&e, &ctx(&reg, &schemas), &stats);
        let j = &run.journal;
        assert_eq!(j.final_cost, best.cost);
        assert_eq!(j.plans_enumerated, best.explored);
        assert!(j.initial_cost >= j.final_cost);
        assert!(j.max_plans == opt.max_plans);
    }

    #[test]
    fn memo_respects_the_member_budget() {
        let (reg, schemas) = ctx_fixtures();
        let mut opt = Optimizer::standard();
        opt.max_plans = 8;
        let stats = Statistics::new();
        let pred = Pred::eq(Expr::input().extract("floor"), Expr::int(5));
        let e = Expr::named("S").select(pred.clone()).select(pred);
        let (_, run) = opt.optimize_memo_journaled(&e, &ctx(&reg, &schemas), &stats);
        assert!(run.snapshot.members <= 8 + 1, "{}", run.snapshot.members);
    }
}
