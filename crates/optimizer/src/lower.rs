//! Lowering: pick a physical operator for every spine node of a logical
//! plan, using the duplication-aware statistics the cost model already
//! threads.
//!
//! The output [`PhysicalPlan`] keeps the logical tree verbatim (see
//! `excess_core::physical`); lowering only *annotates*.  That makes the
//! soundness story short: the one invariant the gate checks is that the
//! lowered plan's logical tree is structurally identical to the input —
//! any deviation refuses the whole lowering and falls back to a
//! pass-through plan.  Everything beyond structure (the hash kernel's
//! occurrence-exactness) is enforced at run time by the kernel's own
//! guard, which re-verifies the key side conditions on the materialised
//! inputs and falls back to the nested loop; statistics can therefore
//! only make a plan slower, never wrong.
//!
//! # Kernel selection policy
//!
//! * `rel_join` → [`PhysOp::HashEquiJoin`] when the predicate has a
//!   hashable equi conjunct (`INPUT.f = INPUT.g`), the estimated pair
//!   count clears [`HASH_JOIN_MIN_PAIRS`] (a hash build is not free), and
//!   the key's NDV — when known — exceeds 1 (a single bucket hashes to
//!   the nested loop plus overhead).  Otherwise
//!   [`PhysOp::NestedLoopJoin`], with the reason recorded both in the
//!   choice and as a refused journal step.
//! * `DE` → [`PhysOp::HashDistinct`], `GRP` → [`PhysOp::HashGroup`]:
//!   honest names for what the count-map evaluator and the parallel
//!   repartition exchange already do.
//! * `Named` → [`PhysOp::IndexScan`] for extent-index objects
//!   (`…::exact::T`, the optimizer's own materialisation naming),
//!   [`PhysOp::Scan`] otherwise.
//! * every other spine node → [`PhysOp::PassThrough`].
//!
//! Binder bodies and predicates are never annotated: kernels apply to
//! closed spine positions only, where inputs are whole materialised
//! multisets.

use std::collections::{BTreeMap, BTreeSet};

use crate::cost::{cost_of, estimate_nodes, estimate_physical, Estimate};
use crate::engine::{JournalStep, RefusedStep, RewriteJournal};
use crate::stats::Statistics;
use excess_core::expr::{Expr, Pred};
use excess_core::physical::{
    equi_key_candidates, spine_children, PhysChoice, PhysOp, PhysicalPlan,
};
use excess_core::profile::NodePath;

/// Journal rule name for the lowering step (and its refusals).
pub const LOWERING_RULE: &str = "physical-lowering";

/// Minimum estimated pair count before a hash join is worth its build
/// side: below this the nested loop's simplicity wins.
pub const HASH_JOIN_MIN_PAIRS: f64 = 64.0;

/// Lower a logical plan to a physical plan under `stats`.
pub fn lower(plan: &Expr, stats: &Statistics) -> PhysicalPlan {
    lower_with(plan, stats).0
}

/// [`lower`], journaled like a rewrite: one accepted step (rule
/// [`LOWERING_RULE`], root path) recording the logical cost before and
/// the physical cost after, plus one refused step per join that fell
/// back to the nested loop and why.  The soundness gate for lowering is
/// the structural invariant — the lowered plan must carry the logical
/// tree unchanged; if it ever did not, the lowering would be refused
/// wholesale and a pass-through plan returned.
pub fn lower_journaled(
    plan: &Expr,
    stats: &Statistics,
    journal: &mut RewriteJournal,
) -> PhysicalPlan {
    let (pp, refused) = lower_with(plan, stats);
    if pp.logical != *plan {
        // Unreachable by construction (lowering clones the input), but
        // this is the invariant the whole layer rests on, so gate it
        // like any other rewrite rather than trusting the construction.
        journal.refused.push(RefusedStep {
            rule: LOWERING_RULE,
            path: Vec::new(),
            reason: "lowered plan altered the logical tree".to_string(),
        });
        return PhysicalPlan::passthrough(plan.clone());
    }
    let cost_before = cost_of(plan, stats);
    let cost_after = estimate_physical(&pp, stats).cost;
    journal.steps.push(JournalStep {
        rule: LOWERING_RULE,
        path: Vec::new(),
        cost_before,
        cost_after,
        plan: plan.clone(),
    });
    journal.final_cost = cost_after;
    journal.plans_enumerated += 1;
    journal.refused.extend(refused);
    pp
}

/// Elide the runtime [`key_pair_usable`] guard on every `HashEquiJoin`
/// choice whose side conditions the property analysis proves against
/// `data`: both join inputs proven multisets of tuples with exhaustive
/// attribute maps, the chosen key fields present and `dne`/`unk`-free on
/// every row of their own side, provably *absent* from the other side
/// (so `TUP_CAT` renames nothing), and of one proven kind shared across
/// sides — exactly the conditions the guard re-checks per occurrence.
/// Returns the elided paths with the proof summary, for journaling and
/// telemetry.
///
/// [`key_pair_usable`]: excess_core::physical::key_pair_usable
pub fn elide_proven_guards(
    pp: &mut PhysicalPlan,
    data: &dyn excess_core::catalog::Catalog,
) -> Vec<(NodePath, String)> {
    use excess_core::analysis::{analyze, CollKind};
    let hash_joins: Vec<(NodePath, String, String)> = pp
        .choices
        .iter()
        .filter_map(|(path, c)| match &c.op {
            PhysOp::HashEquiJoin {
                left_key,
                right_key,
            } => Some((path.clone(), left_key.clone(), right_key.clone())),
            _ => None,
        })
        .collect();
    if hash_joins.is_empty() {
        return Vec::new();
    }
    let analysis = analyze(&pp.logical, data);
    let mut elided = Vec::new();
    for (path, lf, rf) in hash_joins {
        let side = |i: usize| {
            let mut p = path.clone();
            p.push(i);
            analysis.props_at(&p).cloned()
        };
        let (Some(left), Some(right)) = (side(0), side(1)) else {
            continue;
        };
        let sides_proven = |p: &excess_core::analysis::Props| {
            p.coll == Some(CollKind::Set) && p.tuple_only && p.attrs_exhaustive
        };
        if !(sides_proven(&left) && sides_proven(&right)) {
            continue;
        }
        // The kernel's orientation: `lf` keys the left side, `rf` the
        // right, and neither appears on the opposite side.
        let (la, ra) = (left.attr(&lf), right.attr(&rf));
        let disjoint = !left.attrs.contains_key(&rf) && !right.attrs.contains_key(&lf);
        let kinds_match = la.kind.is_some() && la.kind == ra.kind;
        if la.is_definite_key() && ra.is_definite_key() && disjoint && kinds_match {
            pp.elided_guards.insert(path.clone());
            elided.push((
                path,
                format!(
                    "keys {lf}/{rf} proven present and non-null on every row, absent \
                     opposite, kind {}",
                    la.kind.unwrap_or("?")
                ),
            ));
        }
    }
    elided
}

/// Journal rule name for the columnar annotation pass (and its refusals).
pub const COLUMNAR_RULE: &str = "columnar-lowering";

/// Upgrade a lowered plan's choices to batched chunk kernels wherever
/// the plan is provably **chunk-safe**, consulting the catalog's actual
/// chunks.  Returns the accepted upgrades (path + reason) and one
/// journaled refusal per candidate node that must stay on the row path.
///
/// The chunk-safety rule, applied per candidate:
///
/// * the whole plan must not mint OIDs (a chunk kernel never runs the
///   store-mutating row evaluator, so OID-minting plans are refused
///   wholesale — order of minting is observable through the store);
/// * the operator's input must be a bare `Named` extent with a column
///   chunk in the catalog;
/// * `σ` predicates must compile against the chunk's columns (atomic
///   conjuncts over `INPUT.f`/literals, no `in`, no `¬`);
/// * joins must be pure equi-joins (no residual) whose key columns pass
///   the typed null-free/disjointness guard;
/// * `GRP` keys must be bare attribute extracts backed by a column.
///
/// Array-order-sensitive operators never reach here: chunks encode
/// multisets only, and the candidates below are the multiset ops.  Like
/// the row-hash lowering, every acceptance is still re-verified by the
/// kernel at run time, so a stale annotation degrades to the row path
/// instead of miscomputing.
pub fn annotate_columnar(
    pp: &mut PhysicalPlan,
    data: &dyn excess_core::catalog::Catalog,
) -> (Vec<(NodePath, String)>, Vec<RefusedStep>) {
    use excess_core::columnar::{join_keys_usable, scan_pred_compiles};
    use excess_core::physical::split_residual;

    let mut accepted = Vec::new();
    let mut refused = Vec::new();
    if pp.logical.mints_oids() {
        refused.push(RefusedStep {
            rule: COLUMNAR_RULE,
            path: Vec::new(),
            reason: "columnar kernels refused wholesale: the plan mints OIDs".to_string(),
        });
        return (accepted, refused);
    }

    let candidates: Vec<NodePath> = pp.choices.keys().cloned().collect();
    for path in candidates {
        let Some(node) = pp.node_at(&path) else {
            continue;
        };
        let choice = pp.choices.get(&path).expect("iterating the key set");
        let refuse = |reason: String, refused: &mut Vec<RefusedStep>| {
            refused.push(RefusedStep {
                rule: COLUMNAR_RULE,
                path: path.clone(),
                reason,
            });
        };
        let upgrade: Option<(PhysOp, String)> = match (node, &choice.op) {
            (Expr::Select { input, pred }, _) => match &**input {
                Expr::Named(n) => match data.get_chunk(n) {
                    None => {
                        refuse(
                            format!("ColumnarScan refused: no column chunk for {n}"),
                            &mut refused,
                        );
                        None
                    }
                    Some(chunk) if !chunk.is_empty() && !scan_pred_compiles(pred, chunk) => {
                        refuse(
                            "ColumnarScan refused: predicate not chunk-compilable \
                             (non-atomic conjunct, `in`, or non-column operand)"
                                .to_string(),
                            &mut refused,
                        );
                        None
                    }
                    Some(chunk) => Some((
                        PhysOp::ColumnarScan { object: n.clone() },
                        format!(
                            "fused σ over {n}'s chunk ({} rows, {} columns)",
                            chunk.len(),
                            chunk.columns().len()
                        ),
                    )),
                },
                _ => {
                    refuse(
                        "ColumnarScan refused: input is not a base extent scan".to_string(),
                        &mut refused,
                    );
                    None
                }
            },
            (
                Expr::RelJoin { left, right, pred },
                PhysOp::HashEquiJoin {
                    left_key,
                    right_key,
                },
            ) => {
                let (Expr::Named(ln), Expr::Named(rn)) = (&**left, &**right) else {
                    refuse(
                        "ColumnarHashEquiJoin refused: join input is not a base extent scan"
                            .to_string(),
                        &mut refused,
                    );
                    continue;
                };
                let (Some(lc), Some(rc)) = (data.get_chunk(ln), data.get_chunk(rn)) else {
                    refuse(
                        format!("ColumnarHashEquiJoin refused: no column chunk for {ln} or {rn}"),
                        &mut refused,
                    );
                    continue;
                };
                if !matches!(split_residual(pred, left_key, right_key), Some(r) if r.is_empty()) {
                    refuse(
                        "ColumnarHashEquiJoin refused: residual predicate on the join".to_string(),
                        &mut refused,
                    );
                    continue;
                }
                let oriented = if lc.is_empty() || rc.is_empty() {
                    // Empty side: the kernel answers trivially either way.
                    Some((left_key.clone(), right_key.clone()))
                } else if join_keys_usable(lc, rc, left_key, right_key) {
                    Some((left_key.clone(), right_key.clone()))
                } else if join_keys_usable(lc, rc, right_key, left_key) {
                    Some((right_key.clone(), left_key.clone()))
                } else {
                    None
                };
                match oriented {
                    Some((lk, rk)) => Some((
                        PhysOp::ColumnarHashEquiJoin {
                            left: ln.clone(),
                            right: rn.clone(),
                            left_key: lk.clone(),
                            right_key: rk.clone(),
                        },
                        format!("typed build/probe on {ln}.{lk} = {rn}.{rk}"),
                    )),
                    None => {
                        refuse(
                            "ColumnarHashEquiJoin refused: key columns not chunk-hashable \
                             (nullable, unsupported type, or overlapping attributes)"
                                .to_string(),
                            &mut refused,
                        );
                        None
                    }
                }
            }
            (Expr::Group { input, by }, PhysOp::HashGroup) => {
                let Expr::Named(n) = &**input else {
                    refuse(
                        "ColumnarHashGroup refused: input is not a base extent scan".to_string(),
                        &mut refused,
                    );
                    continue;
                };
                let Some(chunk) = data.get_chunk(n) else {
                    refuse(
                        format!("ColumnarHashGroup refused: no column chunk for {n}"),
                        &mut refused,
                    );
                    continue;
                };
                let key = match &**by {
                    Expr::TupExtract(inner, f) if matches!(&**inner, Expr::Input(0)) => f.clone(),
                    _ => {
                        refuse(
                            "ColumnarHashGroup refused: grouping key is not a bare attribute \
                             extract"
                                .to_string(),
                            &mut refused,
                        );
                        continue;
                    }
                };
                if !chunk.is_empty() && chunk.col(&key).is_none() {
                    refuse(
                        format!("ColumnarHashGroup refused: no {key} column in {n}'s chunk"),
                        &mut refused,
                    );
                    continue;
                }
                Some((
                    PhysOp::ColumnarHashGroup {
                        object: n.clone(),
                        key: key.clone(),
                    },
                    format!("grouped {n}'s chunk by the {key} column"),
                ))
            }
            (Expr::DupElim(input), PhysOp::HashDistinct) => match &**input {
                Expr::Named(n) => match data.get_chunk(n) {
                    Some(_) => Some((
                        PhysOp::ColumnarHashDistinct { object: n.clone() },
                        format!("DE over {n}'s chunk: rows are distinct by construction"),
                    )),
                    None => {
                        refuse(
                            format!("ColumnarHashDistinct refused: no column chunk for {n}"),
                            &mut refused,
                        );
                        None
                    }
                },
                _ => {
                    refuse(
                        "ColumnarHashDistinct refused: input is not a base extent scan".to_string(),
                        &mut refused,
                    );
                    None
                }
            },
            _ => None,
        };
        if let Some((op, why)) = upgrade {
            let prior = pp.choices.get(&path).expect("candidate has a choice");
            let est_rows = prior.est_rows;
            let why = format!("{why}; was {}", prior.op);
            accepted.push((path.clone(), why.clone()));
            pp.choices.insert(path, PhysChoice { op, why, est_rows });
        }
    }
    (accepted, refused)
}

fn lower_with(plan: &Expr, stats: &Statistics) -> (PhysicalPlan, Vec<RefusedStep>) {
    let nodes: BTreeMap<NodePath, Estimate> = estimate_nodes(plan, stats).into_iter().collect();
    let mut choices = BTreeMap::new();
    let mut refused = Vec::new();
    let mut path = Vec::new();
    assign(plan, &mut path, &nodes, &mut choices, &mut refused);
    (
        PhysicalPlan {
            logical: plan.clone(),
            choices,
            elided_guards: BTreeSet::new(),
        },
        refused,
    )
}

fn assign(
    e: &Expr,
    path: &mut NodePath,
    nodes: &BTreeMap<NodePath, Estimate>,
    choices: &mut BTreeMap<NodePath, PhysChoice>,
    refused: &mut Vec<RefusedStep>,
) {
    let est_rows = nodes.get(path).map(|est| est.rows);
    let choice = match e {
        Expr::Named(n) if n.contains("::exact::") => PhysChoice {
            op: PhysOp::IndexScan,
            why: "extent-index object".to_string(),
            est_rows,
        },
        Expr::Named(_) => PhysChoice {
            op: PhysOp::Scan,
            why: "named top-level object".to_string(),
            est_rows,
        },
        Expr::DupElim(_) => PhysChoice {
            op: PhysOp::HashDistinct,
            why: "count-map bucketing".to_string(),
            est_rows,
        },
        Expr::Group { .. } => PhysChoice {
            op: PhysOp::HashGroup,
            why: "hash grouping by key".to_string(),
            est_rows,
        },
        Expr::RelJoin { pred, .. } => join_choice(pred, path, nodes, refused),
        _ => PhysChoice {
            op: PhysOp::PassThrough,
            why: String::new(),
            est_rows,
        },
    };
    choices.insert(path.clone(), choice);
    let spine = spine_children(e);
    for (i, child) in e.children().into_iter().enumerate() {
        if !spine.contains(&i) {
            continue;
        }
        path.push(i);
        assign(child, path, nodes, choices, refused);
        path.pop();
    }
}

/// NDV of `field` in either side's attribute statistics, if known.
fn known_ndv(est: Option<&Estimate>, field: &str) -> Option<f64> {
    est?.attr_ndv.as_ref()?.get(field).copied()
}

fn join_choice(
    pred: &Pred,
    path: &NodePath,
    nodes: &BTreeMap<NodePath, Estimate>,
    refused: &mut Vec<RefusedStep>,
) -> PhysChoice {
    let est_rows = nodes.get(path).map(|est| est.rows);
    let mut lp = path.clone();
    lp.push(0);
    let mut rp = path.clone();
    rp.push(1);
    let (l, r) = (nodes.get(&lp), nodes.get(&rp));
    let pairs = match (l, r) {
        (Some(l), Some(r)) => Some(l.rows * r.rows),
        _ => None,
    };
    let mut nested = |reason: String| {
        refused.push(RefusedStep {
            rule: LOWERING_RULE,
            path: path.clone(),
            reason: format!("HashEquiJoin refused: {reason}"),
        });
        PhysChoice {
            op: PhysOp::NestedLoopJoin,
            why: reason,
            est_rows,
        }
    };
    let candidates = equi_key_candidates(pred);
    let Some((f, g)) = candidates.first().cloned() else {
        return nested("no hashable equi conjunct in the COMP predicate".to_string());
    };
    // Orient the pair by attribute provenance when the statistics know the
    // fields; the kernel's runtime guard re-checks (and can flip) anyway.
    let (left_key, right_key) = if known_ndv(l, &f).is_some() || known_ndv(r, &g).is_some() {
        (f.clone(), g.clone())
    } else if known_ndv(l, &g).is_some() || known_ndv(r, &f).is_some() {
        (g.clone(), f.clone())
    } else {
        (f.clone(), g.clone())
    };
    if let Some(pairs) = pairs {
        if pairs < HASH_JOIN_MIN_PAIRS {
            return nested(format!(
                "estimated {pairs:.0} pairs below the hash threshold ({HASH_JOIN_MIN_PAIRS:.0})"
            ));
        }
    }
    let key_ndv = known_ndv(l, &left_key)
        .into_iter()
        .chain(known_ndv(r, &right_key))
        .fold(None::<f64>, |acc, n| Some(acc.map_or(n, |a| a.max(n))));
    if let Some(ndv) = key_ndv {
        if ndv <= 1.0 {
            return nested(format!(
                "join key NDV ≈ {ndv:.0}: a single bucket degenerates to the nested loop"
            ));
        }
    }
    let why = match (pairs, key_ndv) {
        (Some(p), Some(n)) => {
            format!("equi conjunct {left_key} = {right_key}; est {p:.0} pairs, key NDV {n:.0}")
        }
        (Some(p), None) => format!("equi conjunct {left_key} = {right_key}; est {p:.0} pairs"),
        _ => format!("equi conjunct {left_key} = {right_key}"),
    };
    PhysChoice {
        op: PhysOp::HashEquiJoin {
            left_key,
            right_key,
        },
        why,
        est_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::expr::CmpOp;

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_object("S", 1000.0, 100.0, 8.0);
        s.set_object("E", 2000.0, 2000.0, 8.0);
        s.set_attr_ndv("S", "adv", 50.0);
        s.set_attr_ndv("E", "name", 2000.0);
        s
    }

    fn equi_join() -> Expr {
        Expr::named("S").rel_join(
            Expr::named("E"),
            Pred::cmp(
                Expr::input().extract("adv"),
                CmpOp::Eq,
                Expr::input().extract("name"),
            ),
        )
    }

    #[test]
    fn equi_join_lowers_to_hash_kernel() {
        let pp = lower(&equi_join(), &stats());
        let root = pp
            .choices
            .get(&Vec::new() as &NodePath)
            .expect("root choice");
        assert!(
            matches!(
                &root.op,
                PhysOp::HashEquiJoin { left_key, right_key }
                    if left_key == "adv" && right_key == "name"
            ),
            "{root:?}"
        );
        assert!(root.why.contains("est"), "{}", root.why);
        // Scans annotated below.
        assert_eq!(pp.choices.get(&vec![0]).map(|c| &c.op), Some(&PhysOp::Scan));
    }

    #[test]
    fn non_equi_predicate_refuses_hash_join() {
        let plan = Expr::named("S").rel_join(
            Expr::named("E"),
            Pred::cmp(
                Expr::input().extract("adv"),
                CmpOp::Lt,
                Expr::input().extract("name"),
            ),
        );
        let mut journal = RewriteJournal {
            steps: Vec::new(),
            refused: Vec::new(),
            plans_enumerated: 0,
            max_plans: 0,
            initial_cost: 0.0,
            final_cost: 0.0,
        };
        let pp = lower_journaled(&plan, &stats(), &mut journal);
        let root = pp
            .choices
            .get(&Vec::new() as &NodePath)
            .expect("root choice");
        assert_eq!(root.op, PhysOp::NestedLoopJoin);
        assert!(
            root.why.contains("no hashable equi conjunct"),
            "{}",
            root.why
        );
        assert_eq!(journal.steps.len(), 1);
        assert_eq!(journal.steps[0].rule, LOWERING_RULE);
        assert_eq!(journal.refused.len(), 1);
        assert!(journal.refused[0].reason.contains("HashEquiJoin refused"));
    }

    #[test]
    fn tiny_inputs_stay_nested_loop() {
        let mut s = Statistics::new();
        s.set_object("S", 4.0, 4.0, 8.0);
        s.set_object("E", 4.0, 4.0, 8.0);
        let pp = lower(&equi_join(), &s);
        let root = pp
            .choices
            .get(&Vec::new() as &NodePath)
            .expect("root choice");
        assert_eq!(root.op, PhysOp::NestedLoopJoin);
        assert!(
            root.why.contains("below the hash threshold"),
            "{}",
            root.why
        );
    }

    #[test]
    fn single_bucket_key_stays_nested_loop() {
        let mut s = stats();
        s.set_attr_ndv("S", "adv", 1.0);
        s.set_attr_ndv("E", "name", 1.0);
        let pp = lower(&equi_join(), &s);
        let root = pp
            .choices
            .get(&Vec::new() as &NodePath)
            .expect("root choice");
        assert_eq!(root.op, PhysOp::NestedLoopJoin);
        assert!(root.why.contains("NDV"), "{}", root.why);
    }

    #[test]
    fn lowering_never_alters_the_logical_tree() {
        let plan = equi_join().group_by(Expr::input().extract("sdept"));
        let pp = lower(&plan, &stats());
        assert_eq!(pp.logical, plan);
        // GRP annotated HashGroup; binder bodies not annotated.
        assert_eq!(
            pp.choices.get(&Vec::new() as &NodePath).map(|c| &c.op),
            Some(&PhysOp::HashGroup)
        );
        assert!(!pp.choices.contains_key(&vec![1]), "binder body annotated");
    }

    #[test]
    fn extent_index_objects_get_index_scans() {
        let plan = Expr::named("Emps::exact::Prof").dup_elim();
        let pp = lower(&plan, &Statistics::new());
        assert_eq!(
            pp.choices.get(&vec![0]).map(|c| &c.op),
            Some(&PhysOp::IndexScan)
        );
        assert_eq!(
            pp.choices.get(&Vec::new() as &NodePath).map(|c| &c.op),
            Some(&PhysOp::HashDistinct)
        );
    }

    #[test]
    fn columnar_annotation_upgrades_chunk_safe_nodes() {
        use excess_core::catalog::ChunkedCatalog;
        use excess_types::Value;
        let mut cat = ChunkedCatalog::default();
        let mut s = excess_types::MultiSet::new();
        let mut e = excess_types::MultiSet::new();
        for i in 0..20i32 {
            s.insert(Value::tuple([
                ("adv", Value::str(format!("n{i}"))),
                ("sdept", Value::int(i % 4)),
            ]));
            e.insert(Value::tuple([
                ("name", Value::str(format!("n{i}"))),
                ("esal", Value::int(1000 + i)),
            ]));
        }
        cat.put("S", Value::Set(s));
        cat.put("E", Value::Set(e));

        let mut pp = lower(&equi_join(), &stats());
        let (accepted, refused) = annotate_columnar(&mut pp, &cat);
        assert_eq!(refused, Vec::new());
        assert!(
            accepted.iter().any(|(p, _)| p.is_empty()),
            "join not upgraded: {accepted:?}"
        );
        assert!(matches!(
            &pp.choices.get(&Vec::new() as &NodePath).unwrap().op,
            PhysOp::ColumnarHashEquiJoin { left, right, .. } if left == "S" && right == "E"
        ));

        // σ over a base extent with a compilable predicate upgrades; GRP
        // and DE over base extents upgrade too.
        let scan = Expr::named("S").select(Pred::cmp(
            Expr::input().extract("sdept"),
            CmpOp::Eq,
            Expr::int(2),
        ));
        let mut pp = lower(&scan, &stats());
        let (accepted, refused) = annotate_columnar(&mut pp, &cat);
        assert_eq!(refused, Vec::new());
        assert_eq!(accepted.len(), 1);
        assert!(matches!(
            &pp.choices.get(&Vec::new() as &NodePath).unwrap().op,
            PhysOp::ColumnarScan { object } if object == "S"
        ));

        let grp = Expr::named("S").group_by(Expr::input().extract("sdept"));
        let mut pp = lower(&grp, &stats());
        let (accepted, _) = annotate_columnar(&mut pp, &cat);
        assert_eq!(accepted.len(), 1);
        let de = Expr::named("S").dup_elim();
        let mut pp = lower(&de, &stats());
        let (accepted, _) = annotate_columnar(&mut pp, &cat);
        assert_eq!(accepted.len(), 1);
    }

    #[test]
    fn chunk_unsafe_plans_refuse_with_journaled_reasons() {
        use excess_core::catalog::{ChunkedCatalog, EmptyCatalog};
        use excess_types::Value;

        // No chunks at all: every candidate refuses with a reason.
        let mut pp = lower(&equi_join(), &stats());
        let (accepted, refused) = annotate_columnar(&mut pp, &EmptyCatalog);
        assert!(accepted.is_empty());
        assert!(
            refused.iter().any(|r| r.reason.contains("no column chunk")),
            "{refused:?}"
        );
        assert!(refused.iter().all(|r| r.rule == COLUMNAR_RULE));

        // OID-minting plans refuse wholesale.
        let minting = Expr::named("S").set_apply(Expr::input().make_ref("T"));
        let mut pp = lower(&minting, &stats());
        let (_, refused) = annotate_columnar(&mut pp, &EmptyCatalog);
        assert_eq!(refused.len(), 1);
        assert!(refused[0].reason.contains("mints OIDs"), "{refused:?}");

        // A join with a residual conjunct keeps the row hash kernel.
        let mut cat = ChunkedCatalog::default();
        let mut s = excess_types::MultiSet::new();
        let mut e = excess_types::MultiSet::new();
        for i in 0..20i32 {
            s.insert(Value::tuple([("adv", Value::str(format!("n{i}")))]));
            e.insert(Value::tuple([
                ("name", Value::str(format!("n{i}"))),
                ("esal", Value::int(i)),
            ]));
        }
        cat.put("S", Value::Set(s));
        cat.put("E", Value::Set(e));
        let residual = Expr::named("S").rel_join(
            Expr::named("E"),
            Pred::cmp(
                Expr::input().extract("adv"),
                CmpOp::Eq,
                Expr::input().extract("name"),
            )
            .and(Pred::cmp(
                Expr::input().extract("esal"),
                CmpOp::Ge,
                Expr::int(5),
            )),
        );
        let mut pp = lower(&residual, &stats());
        let (accepted, refused) = annotate_columnar(&mut pp, &cat);
        assert!(accepted.is_empty());
        assert!(
            refused
                .iter()
                .any(|r| r.reason.contains("residual predicate")),
            "{refused:?}"
        );
        assert!(matches!(
            pp.choices.get(&Vec::new() as &NodePath).unwrap().op,
            PhysOp::HashEquiJoin { .. }
        ));
    }

    #[test]
    fn columnar_choices_price_below_their_row_counterparts() {
        use excess_core::catalog::ChunkedCatalog;
        use excess_types::Value;
        let mut cat = ChunkedCatalog::default();
        let mut s = excess_types::MultiSet::new();
        let mut e = excess_types::MultiSet::new();
        for i in 0..20i32 {
            s.insert(Value::tuple([("adv", Value::str(format!("n{i}")))]));
            e.insert(Value::tuple([("name", Value::str(format!("n{i}")))]));
        }
        cat.put("S", Value::Set(s));
        cat.put("E", Value::Set(e));
        let st = stats();
        let row = lower(&equi_join(), &st);
        let mut col = row.clone();
        let (accepted, _) = annotate_columnar(&mut col, &cat);
        assert!(!accepted.is_empty());
        assert!(
            estimate_physical(&col, &st).cost < estimate_physical(&row, &st).cost,
            "columnar must price below the row hash join"
        );
    }

    #[test]
    fn physical_estimate_is_cheaper_for_hash_joins() {
        let plan = equi_join();
        let s = stats();
        let pp = lower(&plan, &s);
        let logical = cost_of(&plan, &s);
        let physical = estimate_physical(&pp, &s).cost;
        assert!(
            physical < logical,
            "hash join should be cheaper: {physical} vs {logical}"
        );
        // A pass-through plan costs exactly the logical estimate.
        let pt = PhysicalPlan::passthrough(plan.clone());
        assert_eq!(estimate_physical(&pt, &s).cost, logical);
    }
}
