//! Hand-rolled JSON serializers for the observability types.
//!
//! The workspace deliberately has no serialization dependency, so —
//! matching the spirit of [`format`](crate::format)'s hand-rolled table
//! renderer — profiles, rewrite journals, and session metrics are turned
//! into JSON with plain string building.  Output is deterministic
//! (field order fixed, maps iterated in `BTreeMap` order) so benchmark
//! artifacts diff cleanly across runs.

use crate::metrics::SessionMetrics;
use excess_core::counters::Counters;
use excess_core::profile::Profile;
use excess_core::verify::Report;
use excess_exec::{ExecEvent, ExecReport};
use excess_optimizer::RewriteJournal;

// One implementation of each primitive for the whole workspace: the
// canonical copies live in `excess_core::json` (escaping re-exported here
// so existing `excess::db::escape_json` callers keep working).
pub use excess_core::json::escape_json;
use excess_core::json::{millis, number, path_json, quote_json as quoted};

/// Serialize a query-result [`Value`](excess_types::Value) for the wire.
///
/// Scalars map to JSON primitives, dates to `"YYYY-MM-DD"` strings,
/// tuples to objects, arrays to JSON arrays, and multisets to
/// `{"set":[…]}` with duplicates expanded in canonical (sorted) order —
/// `MultiSet` iterates a `BTreeMap`, so the rendering is deterministic.
/// The two nulls stay distinguishable (`{"null":"dne"}` / `{"null":"unk"}`).
/// References serialize as `{"ref":"<oid>"}`; since OIDs have no
/// client-visible meaning, callers that send results off-process should
/// first resolve identity with
/// [`canonical_form`](excess_core::canon::canonical_form), which rewrites
/// every `Ref` into a value tree (the server does exactly this).
pub fn value_json(v: &excess_types::Value) -> String {
    use excess_types::{Null, Scalar, Value};
    match v {
        Value::Scalar(Scalar::Int4(i)) => i.to_string(),
        Value::Scalar(Scalar::Float4(x)) => number(*x),
        Value::Scalar(Scalar::Char(s)) => quoted(s),
        Value::Scalar(Scalar::Bool(b)) => b.to_string(),
        Value::Scalar(Scalar::Date(d)) => quoted(&d.to_string()),
        Value::Null(Null::Dne) => "{\"null\":\"dne\"}".to_string(),
        Value::Null(Null::Unk) => "{\"null\":\"unk\"}".to_string(),
        Value::Tuple(t) => {
            let fields: Vec<String> = t
                .iter()
                .map(|(n, fv)| format!("{}:{}", quoted(n), value_json(fv)))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        Value::Set(s) => {
            let elems: Vec<String> = s.iter_occurrences().map(value_json).collect();
            format!("{{\"set\":[{}]}}", elems.join(","))
        }
        Value::Array(a) => {
            let elems: Vec<String> = a.iter().map(value_json).collect();
            format!("[{}]", elems.join(","))
        }
        Value::Ref(oid) => format!("{{\"ref\":{}}}", quoted(&oid.to_string())),
    }
}

/// `{"occurrences_scanned":…,…}` — every counter field by name, driven by
/// [`Counters::named_fields`] so the serializer cannot drift from the
/// struct.
pub fn counters_json(c: &Counters) -> String {
    let fields: Vec<String> = c
        .named_fields()
        .iter()
        .map(|(name, v)| format!("\"{name}\":{v}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Serialize an execution [`Profile`]: per-node statistics in preorder
/// plus the global totals they sum to.
pub fn profile_json(p: &Profile) -> String {
    let mut nodes = Vec::with_capacity(p.nodes.len());
    for n in &p.nodes {
        nodes.push(format!(
            "{{\"path\":{},\"op\":{},\"calls\":{},\"rows_in\":{},\"rows_out\":{},\
             \"self_ms\":{},\"total_ms\":{},\"self\":{},\"total\":{}}}",
            path_json(&n.path),
            quoted(&n.label),
            n.calls,
            n.rows_in,
            n.rows_out,
            millis(n.self_wall),
            millis(n.total_wall),
            counters_json(&n.self_counters),
            counters_json(&n.total_counters)
        ));
    }
    format!(
        "{{\"total_ms\":{},\"total\":{},\"nodes\":[{}]}}",
        millis(p.total_wall),
        counters_json(&p.total),
        nodes.join(",")
    )
}

/// Serialize a [`RewriteJournal`]: every accepted rule firing with its
/// position and cost delta, plus the search totals.
pub fn journal_json(j: &RewriteJournal) -> String {
    let mut steps = Vec::with_capacity(j.steps.len());
    for s in &j.steps {
        steps.push(format!(
            "{{\"rule\":{},\"path\":{},\"cost_before\":{},\"cost_after\":{},\"plan\":{}}}",
            quoted(s.rule),
            path_json(&s.path),
            number(s.cost_before),
            number(s.cost_after),
            quoted(&s.plan.to_string())
        ));
    }
    let mut refused = Vec::with_capacity(j.refused.len());
    for r in &j.refused {
        refused.push(format!(
            "{{\"rule\":{},\"path\":{},\"reason\":{}}}",
            quoted(r.rule),
            path_json(&r.path),
            quoted(&r.reason)
        ));
    }
    format!(
        "{{\"initial_cost\":{},\"final_cost\":{},\"plans_enumerated\":{},\
         \"max_plans\":{},\"rule_sequence\":[{}],\"steps\":[{}],\"refused\":[{}]}}",
        number(j.initial_cost),
        number(j.final_cost),
        j.plans_enumerated,
        j.max_plans,
        j.rule_sequence()
            .iter()
            .map(|r| quoted(r))
            .collect::<Vec<_>>()
            .join(","),
        steps.join(","),
        refused.join(",")
    )
}

/// Serialize a verifier [`Report`]: totals plus every diagnostic with its
/// severity, class, node path, and message.
pub fn verify_json(r: &Report) -> String {
    let mut diags = Vec::with_capacity(r.diagnostics.len());
    for d in &r.diagnostics {
        diags.push(format!(
            "{{\"severity\":{},\"code\":{},\"path\":{},\"message\":{}}}",
            quoted(&d.severity.to_string()),
            quoted(d.code),
            path_json(&d.path),
            quoted(&d.message)
        ));
    }
    format!(
        "{{\"clean\":{},\"errors\":{},\"lints\":{},\"diagnostics\":[{}]}}",
        r.is_clean(),
        r.error_count(),
        r.lint_count(),
        diags.join(",")
    )
}

/// Serialize the cumulative [`SessionMetrics`] registry.
pub fn metrics_json(m: &SessionMetrics) -> String {
    let rules: Vec<String> = m
        .rules_fired
        .iter()
        .map(|(rule, n)| format!("{}:{}", quoted(rule), n))
        .collect();
    let warnings: Vec<String> = m.warnings.iter().map(|w| quoted(w)).collect();
    format!(
        "{{\"queries\":{},\"serial_queries\":{},\"parallel_queries\":{},\"workers\":{},\
         \"eval_ms\":{},\"counters\":{},\"optimizations\":{},\
         \"rewrites_applied\":{},\"rewrites_refused\":{},\"plans_enumerated\":{},\
         \"cost_removed\":{},\"rules_fired\":{{{}}},\"warnings\":[{}]}}",
        m.queries,
        m.serial_queries,
        m.parallel_queries,
        m.workers,
        millis(m.eval_wall),
        counters_json(&m.counters),
        m.optimizations,
        m.rewrites_applied,
        m.rewrites_refused,
        m.plans_enumerated,
        number(m.cost_removed),
        rules.join(","),
        warnings.join(",")
    )
}

/// Serialize a parallel-execution [`ExecReport`]: worker count, skew,
/// the per-node decision journal, and per-worker accounting.
pub fn exec_report_json(r: &ExecReport) -> String {
    let mut events = Vec::with_capacity(r.events.len());
    for e in &r.events {
        events.push(match e {
            ExecEvent::Parallel {
                path,
                op,
                strategy,
                partitions,
                empty,
            } => format!(
                "{{\"kind\":\"parallel\",\"path\":{},\"op\":{},\"strategy\":{},\
                 \"partitions\":{},\"empty\":{}}}",
                path_json(path),
                quoted(op),
                quoted(&strategy.to_string()),
                partitions,
                empty
            ),
            ExecEvent::Exchange {
                path,
                op,
                keys,
                partitions,
                empty,
            } => format!(
                "{{\"kind\":\"exchange\",\"path\":{},\"op\":{},\"keys\":{},\
                 \"partitions\":{},\"empty\":{}}}",
                path_json(path),
                quoted(op),
                quoted(keys),
                partitions,
                empty
            ),
            ExecEvent::SerialFallback { path, op, reason } => format!(
                "{{\"kind\":\"serial\",\"path\":{},\"op\":{},\"reason\":{}}}",
                path_json(path),
                quoted(op),
                quoted(reason)
            ),
        });
    }
    let mut workers = Vec::with_capacity(r.worker_stats.len());
    for w in &r.worker_stats {
        workers.push(format!(
            "{{\"worker\":{},\"tasks\":{},\"occurrences\":{},\"busy_ms\":{},\"counters\":{}}}",
            w.worker,
            w.tasks,
            w.occurrences,
            millis(w.busy),
            counters_json(&w.counters)
        ));
    }
    format!(
        "{{\"workers\":{},\"skew\":{},\"events\":[{}],\"worker_stats\":[{}]}}",
        r.workers,
        r.skew().map_or("null".to_string(), number),
        events.join(","),
        workers.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn counters_json_names_every_field() {
        let c = Counters {
            derefs: 7,
            ..Counters::new()
        };
        let j = counters_json(&c);
        assert!(j.contains("\"derefs\":7"), "{j}");
        assert!(j.contains("\"pairs_formed\":0"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn non_finite_costs_become_null() {
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let mut m = SessionMetrics::new();
        m.record_query(Counters::new(), Duration::from_millis(1));
        let j = metrics_json(&m);
        assert!(j.contains("\"queries\":1"), "{j}");
        assert!(j.contains("\"rules_fired\":{}"), "{j}");
    }
}
