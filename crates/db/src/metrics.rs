//! Cumulative per-session query metrics.
//!
//! Every `run_plan` (and its profiled variant) and every journaled
//! optimization folds into one [`SessionMetrics`] registry hung off the
//! [`Database`](crate::Database), so a session — a REPL, a benchmark
//! binary, a test — can ask "how much work happened here, and which
//! rewrite rules earned their keep" without instrumenting call sites.

use excess_core::counters::Counters;
use excess_optimizer::RewriteJournal;
use std::collections::BTreeMap;
use std::time::Duration;

/// Cumulative counters for one database session.
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// Plans evaluated (`run_plan` / `run_plan_profiled` calls).
    pub queries: u64,
    /// Queries that ran through the serial evaluator.
    pub serial_queries: u64,
    /// Queries that ran through the partition-parallel engine.
    pub parallel_queries: u64,
    /// Worker count of the most recent parallel execution (0 until one
    /// runs).
    pub workers: usize,
    /// Journaled optimization runs.
    pub optimizations: u64,
    /// Accepted rewrite steps across all journaled optimizations.
    pub rewrites_applied: u64,
    /// Rewrites the soundness gate refused across all journaled
    /// optimizations.
    pub rewrites_refused: u64,
    /// Neighbor plans enumerated across all journaled optimizations.
    pub plans_enumerated: u64,
    /// Times each rewrite rule fired (accepted steps only).
    pub rules_fired: BTreeMap<String, u64>,
    /// Total estimated cost removed by optimization (Σ initial − final).
    pub cost_removed: f64,
    /// Work counters summed over every evaluation.
    pub counters: Counters,
    /// Wall time summed over every evaluation.
    pub eval_wall: Duration,
    /// Configuration warnings surfaced during the session (bad
    /// `EXCESS_THREADS` values, `set_threads(0)` clamps, …), in order.
    pub warnings: Vec<String>,
}

impl SessionMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one (serial) evaluation into the session totals.
    pub fn record_query(&mut self, counters: Counters, wall: Duration) {
        self.record_query_mode(counters, wall, 1);
    }

    /// Fold one evaluation into the session totals, recording whether it
    /// ran serially (`workers <= 1`) or through the parallel engine.
    pub fn record_query_mode(&mut self, counters: Counters, wall: Duration, workers: usize) {
        self.queries += 1;
        self.counters += counters;
        self.eval_wall += wall;
        if workers > 1 {
            self.parallel_queries += 1;
            self.workers = workers;
        } else {
            self.serial_queries += 1;
        }
    }

    /// Fold one journaled optimization run into the session totals.
    pub fn record_journal(&mut self, journal: &RewriteJournal) {
        self.optimizations += 1;
        self.rewrites_applied += journal.steps.len() as u64;
        self.rewrites_refused += journal.refused.len() as u64;
        self.plans_enumerated += journal.plans_enumerated as u64;
        self.cost_removed += journal.initial_cost - journal.final_cost;
        for step in &journal.steps {
            *self.rules_fired.entry(step.rule.to_string()).or_insert(0) += 1;
        }
    }

    /// Record a configuration warning (also counts as session state — the
    /// JSON snapshot and the REPL's `.metrics` both render these).
    pub fn record_warning(&mut self, warning: impl Into<String>) {
        self.warnings.push(warning.into());
    }

    /// Fold another registry into this one — how a closing
    /// [`Session`](crate::session::Session)'s per-connection metrics merge
    /// into the database-wide totals.  Counts and counters add; `workers`
    /// takes the other side's value when it ever ran parallel (most-recent
    /// semantics); warnings append in order.
    pub fn merge(&mut self, other: &SessionMetrics) {
        self.queries += other.queries;
        self.serial_queries += other.serial_queries;
        self.parallel_queries += other.parallel_queries;
        if other.workers > 0 {
            self.workers = other.workers;
        }
        self.optimizations += other.optimizations;
        self.rewrites_applied += other.rewrites_applied;
        self.rewrites_refused += other.rewrites_refused;
        self.plans_enumerated += other.plans_enumerated;
        self.cost_removed += other.cost_removed;
        for (rule, n) in &other.rules_fired {
            *self.rules_fired.entry(rule.clone()).or_insert(0) += n;
        }
        self.counters += other.counters;
        self.eval_wall += other.eval_wall;
        self.warnings.extend(other.warnings.iter().cloned());
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl std::fmt::Display for SessionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries: {} ({:.1} ms total eval time)",
            self.queries,
            self.eval_wall.as_secs_f64() * 1e3
        )?;
        writeln!(f, "work:    {}", self.counters)?;
        if self.parallel_queries > 0 {
            writeln!(
                f,
                "execution: {} serial, {} parallel ({} workers)",
                self.serial_queries, self.parallel_queries, self.workers
            )?;
        }
        writeln!(
            f,
            "optimizer: {} runs, {} rewrites accepted, {} refused, {} plans enumerated, est. cost removed {:.0}",
            self.optimizations,
            self.rewrites_applied,
            self.rewrites_refused,
            self.plans_enumerated,
            self.cost_removed
        )?;
        if !self.warnings.is_empty() {
            writeln!(f, "warnings:")?;
            for w in &self.warnings {
                writeln!(f, "  ! {w}")?;
            }
        }
        if !self.rules_fired.is_empty() {
            // Most-fired first; name breaks ties for determinism.
            let mut by_count: Vec<(&String, &u64)> = self.rules_fired.iter().collect();
            by_count.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            writeln!(f, "rules fired:")?;
            for (rule, n) in by_count {
                writeln!(f, "  {n:>4} × {rule}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_query_accumulates() {
        let mut m = SessionMetrics::new();
        let c = Counters {
            derefs: 3,
            ..Counters::new()
        };
        m.record_query(c, Duration::from_millis(2));
        m.record_query(c, Duration::from_millis(3));
        assert_eq!(m.queries, 2);
        assert_eq!(m.counters.derefs, 6);
        assert_eq!(m.eval_wall, Duration::from_millis(5));
    }

    #[test]
    fn record_query_mode_splits_serial_and_parallel() {
        let mut m = SessionMetrics::new();
        m.record_query(Counters::new(), Duration::ZERO);
        m.record_query_mode(Counters::new(), Duration::ZERO, 4);
        assert_eq!(m.queries, 2);
        assert_eq!(m.serial_queries, 1);
        assert_eq!(m.parallel_queries, 1);
        assert_eq!(m.workers, 4);
        let s = m.to_string();
        assert!(
            s.contains("execution: 1 serial, 1 parallel (4 workers)"),
            "{s}"
        );
    }

    #[test]
    fn merge_adds_counts_and_rule_tallies() {
        let mut a = SessionMetrics::new();
        a.record_query(Counters::new(), Duration::from_millis(1));
        *a.rules_fired.entry("rule8".into()).or_insert(0) += 2;
        let mut b = SessionMetrics::new();
        b.record_query_mode(Counters::new(), Duration::from_millis(2), 4);
        *b.rules_fired.entry("rule8".into()).or_insert(0) += 1;
        *b.rules_fired.entry("rel5".into()).or_insert(0) += 1;
        b.record_warning("w1");
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.serial_queries, 1);
        assert_eq!(a.parallel_queries, 1);
        assert_eq!(a.workers, 4);
        assert_eq!(a.rules_fired["rule8"], 3);
        assert_eq!(a.rules_fired["rel5"], 1);
        assert_eq!(a.eval_wall, Duration::from_millis(3));
        assert_eq!(a.warnings, vec!["w1".to_string()]);
    }

    #[test]
    fn display_mentions_queries_and_work() {
        let mut m = SessionMetrics::new();
        m.record_query(Counters::new(), Duration::ZERO);
        let s = m.to_string();
        assert!(s.contains("queries: 1"), "{s}");
        assert!(s.contains("optimizer: 0 runs"), "{s}");
    }
}
