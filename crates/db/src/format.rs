//! Human-friendly rendering of query results: multisets of tuples become
//! aligned tables (duplicates shown with a cardinality column), everything
//! else falls back to the value's display form.

use excess_types::Value;

/// Render a result for terminal display.
pub fn format_result(v: &Value) -> String {
    match try_table(v) {
        Some(t) => t,
        None => v.to_string(),
    }
}

/// Render a multiset of same-shaped tuples as a table; `None` when the
/// value is not that shape.
pub fn try_table(v: &Value) -> Option<String> {
    let set = v.as_set()?;
    if set.is_empty() {
        return Some("(empty)".to_string());
    }
    // All distinct elements must be tuples with identical field names.
    let mut header: Option<Vec<String>> = None;
    for (e, _) in set.iter_counted() {
        let t = e.as_tuple()?;
        let names: Vec<String> = t.field_names().map(str::to_owned).collect();
        match &header {
            None => header = Some(names),
            Some(h) if *h == names => {}
            _ => return None,
        }
    }
    let header = header?;
    let show_card = set.iter_counted().any(|(_, c)| c > 1);
    let mut cols: Vec<Vec<String>> = Vec::new();
    let mut head: Vec<String> = header.clone();
    if show_card {
        head.push("×".to_string());
    }
    cols.push(head);
    for (e, c) in set.iter_counted() {
        let t = e.as_tuple().expect("checked above");
        let mut row: Vec<String> = header
            .iter()
            .map(|n| t.get(n).map(cell).unwrap_or_default())
            .collect();
        if show_card {
            row.push(c.to_string());
        }
        cols.push(row);
    }
    let ncols = cols[0].len();
    let widths: Vec<usize> = (0..ncols)
        .map(|i| cols.iter().map(|r| r[i].chars().count()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (ri, row) in cols.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = *w))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if ri == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&rule.join("  "));
            out.push('\n');
        }
    }
    out.push_str(&format!("({} rows)\n", set.len()));
    Some(out)
}

fn cell(v: &Value) -> String {
    match v {
        Value::Scalar(excess_types::Scalar::Char(s)) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_become_a_table() {
        let v = Value::set([
            Value::tuple([("name", Value::str("Ada")), ("salary", Value::int(90))]),
            Value::tuple([("name", Value::str("Bo")), ("salary", Value::int(1))]),
        ]);
        let t = try_table(&v).unwrap();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "name  salary");
        assert!(lines[1].starts_with("----"));
        assert!(lines.iter().any(|l| l.starts_with("Ada   90")), "{t}");
        assert!(t.ends_with("(2 rows)\n"));
    }

    #[test]
    fn duplicates_get_a_cardinality_column() {
        let row = Value::tuple([("k", Value::int(1))]);
        let mut s = excess_types::MultiSet::new();
        s.insert_n(row, 3);
        let t = try_table(&Value::Set(s)).unwrap();
        assert!(t.lines().next().unwrap().contains('×'), "{t}");
        assert!(t.contains('3'), "{t}");
        assert!(t.ends_with("(3 rows)\n"));
    }

    #[test]
    fn non_tabular_values_fall_back() {
        assert!(try_table(&Value::int(5)).is_none());
        assert!(try_table(&Value::set([Value::int(1)])).is_none());
        // Mixed shapes fall back too.
        let mixed = Value::set([
            Value::tuple([("a", Value::int(1))]),
            Value::tuple([("b", Value::int(2))]),
        ]);
        assert!(try_table(&mixed).is_none());
        assert_eq!(format_result(&Value::int(5)), "5");
    }

    #[test]
    fn empty_sets_say_so() {
        assert_eq!(try_table(&Value::set([])).unwrap(), "(empty)");
    }
}
