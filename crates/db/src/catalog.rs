//! The catalog of named, top-level, persistent objects, including the
//! virtual per-exact-type extent objects backing Section 4's indexed
//! dispatch.

use excess_core::catalog::Catalog;
use excess_core::infer::SchemaCatalog;
use excess_types::{Chunk, SchemaType, Value};
use std::collections::HashMap;

/// One named object: its declared schema and current value.
#[derive(Debug, Clone)]
pub struct NamedObject {
    /// Declared schema.
    pub schema: SchemaType,
    /// Current value.
    pub value: Value,
}

/// All named objects plus materialised extent views (`P::exact::T`),
/// with a cache of columnar chunks for extents the columnar pipeline has
/// encoded.  Any write to an object — [`DbCatalog::put`],
/// [`DbCatalog::value_mut`], [`DbCatalog::remove`] — invalidates its
/// chunk, so a cached chunk always decodes to the current value.
#[derive(Debug, Clone, Default)]
pub struct DbCatalog {
    objects: HashMap<String, NamedObject>,
    chunks: HashMap<String, Chunk>,
}

impl DbCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register or replace an object.
    pub fn put(&mut self, name: &str, schema: SchemaType, value: Value) {
        self.chunks.remove(name);
        self.objects
            .insert(name.to_string(), NamedObject { schema, value });
    }

    /// Current value, if present.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.objects.get(name).map(|o| &o.value)
    }

    /// Mutable value access (updates).  Conservatively drops any cached
    /// chunk for the object — the caller may rewrite the value through
    /// the returned reference.
    pub fn value_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.chunks.remove(name);
        self.objects.get_mut(name).map(|o| &mut o.value)
    }

    /// Declared schema, if present.
    pub fn schema(&self, name: &str) -> Option<&SchemaType> {
        self.objects.get(name).map(|o| &o.schema)
    }

    /// Does the object exist?
    pub fn contains(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    /// Remove an object (and any of its extent views).
    pub fn remove(&mut self, name: &str) {
        self.objects.remove(name);
        self.chunks.remove(name);
        let prefix = format!("{name}::exact::");
        self.objects.retain(|k, _| !k.starts_with(&prefix));
        self.chunks.retain(|k, _| !k.starts_with(&prefix));
    }

    /// Cached columnar chunk for an extent, if one has been encoded since
    /// the object last changed.
    pub fn chunk(&self, name: &str) -> Option<&Chunk> {
        self.chunks.get(name)
    }

    /// Install a columnar chunk for an object.  The caller is responsible
    /// for the chunk decoding to the object's current value — use
    /// [`Database::ensure_chunks_for`](crate::Database::ensure_chunks_for)
    /// rather than calling this directly.
    pub fn set_chunk(&mut self, name: &str, chunk: Chunk) {
        self.chunks.insert(name.to_string(), chunk);
    }

    /// Iterate the names that currently have a cached columnar chunk
    /// (extent views included) — what the session layer's committer uses
    /// to re-warm chunks after a write batch, so published generations
    /// keep serving the columnar kernels.
    pub fn chunked_names(&self) -> impl Iterator<Item = &str> {
        self.chunks.keys().map(String::as_str)
    }

    /// Iterate user-visible object names (extent views excluded).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.objects
            .keys()
            .map(String::as_str)
            .filter(|n| !n.contains("::exact::"))
    }
}

impl Catalog for DbCatalog {
    fn get_object(&self, name: &str) -> Option<&Value> {
        self.value(name)
    }

    fn get_chunk(&self, name: &str) -> Option<&Chunk> {
        self.chunks.get(name)
    }
}

impl SchemaCatalog for DbCatalog {
    fn object_schema(&self, name: &str) -> Option<SchemaType> {
        self.schema(name).cloned()
    }
}
