//! The catalog of named, top-level, persistent objects, including the
//! virtual per-exact-type extent objects backing Section 4's indexed
//! dispatch.

use excess_core::catalog::Catalog;
use excess_core::infer::SchemaCatalog;
use excess_types::{SchemaType, Value};
use std::collections::HashMap;

/// One named object: its declared schema and current value.
#[derive(Debug, Clone)]
pub struct NamedObject {
    /// Declared schema.
    pub schema: SchemaType,
    /// Current value.
    pub value: Value,
}

/// All named objects plus materialised extent views (`P::exact::T`).
#[derive(Debug, Clone, Default)]
pub struct DbCatalog {
    objects: HashMap<String, NamedObject>,
}

impl DbCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register or replace an object.
    pub fn put(&mut self, name: &str, schema: SchemaType, value: Value) {
        self.objects
            .insert(name.to_string(), NamedObject { schema, value });
    }

    /// Current value, if present.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.objects.get(name).map(|o| &o.value)
    }

    /// Mutable value access (updates).
    pub fn value_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.objects.get_mut(name).map(|o| &mut o.value)
    }

    /// Declared schema, if present.
    pub fn schema(&self, name: &str) -> Option<&SchemaType> {
        self.objects.get(name).map(|o| &o.schema)
    }

    /// Does the object exist?
    pub fn contains(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    /// Remove an object (and any of its extent views).
    pub fn remove(&mut self, name: &str) {
        self.objects.remove(name);
        let prefix = format!("{name}::exact::");
        self.objects.retain(|k, _| !k.starts_with(&prefix));
    }

    /// Iterate user-visible object names (extent views excluded).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.objects
            .keys()
            .map(String::as_str)
            .filter(|n| !n.contains("::exact::"))
    }
}

impl Catalog for DbCatalog {
    fn get_object(&self, name: &str) -> Option<&Value> {
        self.value(name)
    }
}

impl SchemaCatalog for DbCatalog {
    fn object_schema(&self, name: &str) -> Option<SchemaType> {
        self.schema(name).cloned()
    }
}
