//! Sessions, snapshots, and the single-committer write path.
//!
//! This module turns the single-threaded [`Database`] into a concurrent,
//! multi-session engine with snapshot-isolated reads:
//!
//! * [`Generation`] — one immutable, `Arc`-shared version of the
//!   database state (registry, catalog, object store, `range of`
//!   declarations, methods, statistics).  The catalog inside a
//!   generation carries whatever columnar chunks were valid when it was
//!   published, so snapshot readers keep the vectorized kernels.
//! * [`VersionedDb`] — the shared handle: a `RwLock`'d pointer to the
//!   current generation plus a dedicated **committer thread** that owns
//!   the master [`Database`].  Taking a snapshot is an `Arc` clone under
//!   a read lock held for nanoseconds; publishing a new generation is a
//!   pointer swap under the write lock.  Readers never block on writers
//!   beyond that swap, and never see a half-applied batch.
//! * [`Session`] — one client's view: a pinned generation, a scratch
//!   object store for temporary OIDs minted during evaluation, session-
//!   local `range of` declarations, and per-session metrics/telemetry
//!   that fold into the database-wide registries when the session closes.
//!
//! # Write path
//!
//! All mutation flows through [`VersionedDb::commit`] (usually via
//! [`Session::commit`]): the statement text is sent over a channel to
//! the committer thread, which drains the channel into a batch, applies
//! each request **atomically** (the request runs against a clone of the
//! master and the clone is swapped in only when every statement
//! succeeded — a failed request leaves no partial state), then publishes
//! one new generation for the whole batch.  Components a batch did not
//! touch are shared with the previous generation by `Arc`, so a batch of
//! `range of` declarations does not copy the catalog.  After a
//! data-touching batch the committer re-collects optimizer statistics
//! and re-encodes the columnar chunks the previous generation had, so
//! new snapshots plan against fresh cardinalities and keep their
//! vectorized kernels.
//!
//! Every applied request is recorded in a commit history
//! ([`VersionedDb::history`]), which makes snapshot isolation testable:
//! replaying the history up to generation *g* on a fresh copy of the
//! initial database must be canon-identical to what a session pinned at
//! *g* observes.
//!
//! # Read path
//!
//! [`Session::query`] accepts a program of `range of` declarations and
//! `retrieve` statements (anything else must go through `commit`) and
//! runs the same pipeline as [`Database::execute`] — translate →
//! greedy-optimize (journaled, dual desugared pass, extent-index
//! substitution) → lower → execute on the serial engine — entirely
//! against the pinned generation.  Statements that mint object
//! identities during evaluation do so in the session's private scratch
//! store, leaving the shared generation untouched.

use crate::catalog::DbCatalog;
use crate::database::{extent_at, Database};
use crate::error::{DbError, DbResult};
use crate::metrics::SessionMetrics;
use excess_core::eval::EvalCtx;
use excess_core::expr::Expr;
use excess_core::physical::evaluate_physical;
use excess_lang::ast::{QExpr, Retrieve, Stmt};
use excess_lang::methods::MethodRegistry;
use excess_lang::parse_program;
use excess_lang::translate::{translate_retrieve, TranslateCtx};
use excess_optimizer::{
    apply_extent_indexes_journaled, cost_of, lower_journaled, MemoSnapshot, Optimizer,
    OptimizerMode, RewriteJournal, RuleCtx, Statistics,
};
use excess_telemetry::{fnv1a64, QueryRecord, RecorderSettings, Registry, Telemetry};
use excess_types::{ObjectStore, TypeRegistry, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// One immutable, shared version of the database state.
///
/// Every component is behind an `Arc`: generations that did not change a
/// component share it with their predecessor, so a long-lived snapshot
/// costs memory proportional to what has changed since it was taken, not
/// to the whole database.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Monotone version number; the seed database is generation 0.
    pub number: u64,
    /// Named types and the inheritance DAG.
    pub registry: Arc<TypeRegistry>,
    /// Named objects (and their cached columnar chunks) as of this
    /// generation.
    pub catalog: Arc<DbCatalog>,
    /// The object store as of this generation.
    pub store: Arc<ObjectStore>,
    /// Committed `range of` declarations.
    pub ranges: Arc<HashMap<String, QExpr>>,
    /// Stored methods.
    pub methods: Arc<MethodRegistry>,
    /// Optimizer statistics collected at publish time.
    pub stats: Arc<Statistics>,
}

impl Generation {
    fn from_database(number: u64, db: &Database) -> Self {
        Generation {
            number,
            registry: Arc::new(db.registry().clone()),
            catalog: Arc::new(db.catalog().clone()),
            store: Arc::new(db.store().clone()),
            ranges: Arc::new(db.ranges().clone()),
            methods: Arc::new(db.methods().clone()),
            stats: Arc::new(db.statistics().clone()),
        }
    }
}

/// One successfully applied commit batch: the generation it published
/// and the request sources it applied, in order.  Replaying every batch
/// with `generation <= g` onto a copy of the seed database reproduces
/// exactly what a session pinned at generation `g` observes — the
/// invariant the snapshot-isolation tests check.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The generation current after this batch (batches that touch no
    /// snapshot-visible component — e.g. procedure definitions — keep
    /// the previous number).
    pub generation: u64,
    /// Applied request sources, in application order.
    pub statements: Vec<String>,
    /// How the committer handled statistics for this batch:
    /// `"skipped: no extent data touched"`, `"incremental: a, b"`, or
    /// `"full (…)"` — the journaled record of the dirty-set decision.
    pub stats: String,
}

/// Counters describing a [`VersionedDb`]'s lifetime so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Current generation number.
    pub generation: u64,
    /// Sessions ever begun.
    pub sessions_opened: u64,
    /// Sessions closed (metrics merged into the global registry).
    pub sessions_closed: u64,
    /// Commit requests received by the committer.
    pub commit_requests: u64,
    /// Commit batches applied (each publishes at most one generation).
    pub commit_batches: u64,
    /// Batches that re-collected statistics with a full sweep.
    pub stats_full: u64,
    /// Batches whose statistics refresh was per-extent (dirty set known).
    pub stats_incremental: u64,
    /// Batches that skipped the statistics refresh entirely (no extent
    /// data touched).
    pub stats_skipped: u64,
}

struct CommitRequest {
    source: String,
    reply: Sender<CommitReply>,
}

struct CommitReply {
    result: Result<Value, String>,
    generation: u64,
}

/// Which generation components a batch of statements touched.
#[derive(Debug, Clone, Default)]
struct Dirty {
    registry: bool,
    data: bool,
    ranges: bool,
    methods: bool,
    /// Named objects the batch's data statements targeted — the dirty
    /// set that licenses an incremental statistics refresh.
    touched: BTreeSet<String>,
    /// A statement could have touched *anything* (procedure call): the
    /// dirty set is not trustworthy and only a full sweep is safe.
    data_unknown: bool,
}

impl Dirty {
    fn any(&self) -> bool {
        self.registry || self.data || self.ranges || self.methods
    }
}

fn classify(stmt: &Stmt, d: &mut Dirty) {
    match stmt {
        Stmt::DefineType { .. } => d.registry = true,
        Stmt::DefineFunction { .. } => d.methods = true,
        Stmt::RangeDecl { .. } => d.ranges = true,
        // Procedures live on the master only (calling one is a write);
        // defining one touches no snapshot-visible component.
        Stmt::DefineProcedure { .. } => {}
        // A procedure body may contain any statement: conservatively
        // republish everything.
        Stmt::Call { .. } => {
            d.registry = true;
            d.data = true;
            d.ranges = true;
            d.methods = true;
            d.data_unknown = true;
        }
        Stmt::Create { name, .. } => {
            d.data = true;
            d.touched.insert(name.clone());
        }
        Stmt::Append { target, .. }
        | Stmt::Delete { target, .. }
        | Stmt::Replace { target, .. }
        | Stmt::AssignIndex { target, .. } => {
            d.data = true;
            d.touched.insert(target.clone());
        }
        Stmt::Retrieve(r) => {
            if let Some(into) = &r.into {
                d.data = true;
                d.touched.insert(into.clone());
            }
        }
    }
}

struct SharedState {
    current: RwLock<Arc<Generation>>,
    tx: Mutex<Option<Sender<CommitRequest>>>,
    handle: Mutex<Option<JoinHandle<Database>>>,
    global_metrics: Mutex<SessionMetrics>,
    global_registry: Mutex<Registry>,
    history: Mutex<Vec<CommitBatch>>,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    commit_requests: AtomicU64,
    commit_batches: AtomicU64,
    stats_full: AtomicU64,
    stats_incremental: AtomicU64,
    stats_skipped: AtomicU64,
}

/// The shared, clonable handle to a versioned database: snapshot reads
/// through [`VersionedDb::begin_session`], writes through
/// [`VersionedDb::commit`], and a graceful [`VersionedDb::shutdown`]
/// that returns the master [`Database`].
#[derive(Clone)]
pub struct VersionedDb {
    shared: Arc<SharedState>,
}

impl VersionedDb {
    /// Take ownership of `db` as the master copy: publish it as
    /// generation 0 and start the committer thread.  Statistics are
    /// (re-)collected first so generation-0 snapshots plan against real
    /// cardinalities — the same policy the committer applies after every
    /// data-touching batch.
    pub fn new(mut db: Database) -> Self {
        db.collect_stats();
        let gen0 = Arc::new(Generation::from_database(0, &db));
        let (tx, rx) = mpsc::channel::<CommitRequest>();
        let shared = Arc::new(SharedState {
            current: RwLock::new(gen0),
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(None),
            global_metrics: Mutex::new(SessionMetrics::new()),
            global_registry: Mutex::new(Registry::new()),
            history: Mutex::new(Vec::new()),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            commit_requests: AtomicU64::new(0),
            commit_batches: AtomicU64::new(0),
            stats_full: AtomicU64::new(0),
            stats_incremental: AtomicU64::new(0),
            stats_skipped: AtomicU64::new(0),
        });
        // The committer holds only a weak reference: when every handle
        // and session is gone the channel sender inside `SharedState`
        // drops, `recv` errors, and the thread exits on its own.
        let weak = Arc::downgrade(&shared);
        let handle = std::thread::Builder::new()
            .name("excess-committer".into())
            .spawn(move || committer_loop(db, rx, weak))
            .expect("spawning the committer thread");
        *shared.handle.lock().expect("handle lock") = Some(handle);
        VersionedDb { shared }
    }

    /// The current generation (an `Arc` clone under a briefly held read
    /// lock — readers never wait on a commit in progress).
    pub fn current(&self) -> Arc<Generation> {
        self.shared.current.read().expect("generation lock").clone()
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current().number
    }

    /// Begin a session pinned to the current generation.
    pub fn begin_session(&self) -> Session {
        self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.current();
        let scratch = (*snapshot.store).clone();
        let mut telemetry = Telemetry::new();
        telemetry.recorder = RecorderSettings::from_env().build();
        let (optimizer_mode, mode_warning) = OptimizerMode::from_env();
        let mut session = Session {
            db: self.clone(),
            snapshot,
            scratch,
            local_ranges: HashMap::new(),
            optimize: true,
            optimizer_mode,
            stats_overlay: None,
            last_memo: None,
            last_plan: None,
            metrics: SessionMetrics::new(),
            telemetry,
            closed: false,
        };
        if let Some(w) = mode_warning {
            session.telemetry.registry.inc("config.warnings");
            session.metrics.record_warning(w);
        }
        session
    }

    /// Send one program to the committer and wait for it to be applied
    /// (or rejected).  Returns the value of the program's last statement
    /// and the generation current after the batch containing it.  The
    /// request is atomic: on error nothing was applied.
    pub fn commit(&self, source: &str) -> Result<(Value, u64), String> {
        let tx = self
            .shared
            .tx
            .lock()
            .expect("committer channel lock")
            .clone()
            .ok_or_else(|| "committer is shut down".to_string())?;
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(CommitRequest {
            source: source.to_string(),
            reply: reply_tx,
        })
        .map_err(|_| "committer is shut down".to_string())?;
        let reply = reply_rx
            .recv()
            .map_err(|_| "committer dropped the request".to_string())?;
        reply.result.map(|v| (v, reply.generation))
    }

    /// Every applied commit batch so far, in order.
    pub fn history(&self) -> Vec<CommitBatch> {
        self.shared.history.lock().expect("history lock").clone()
    }

    /// Snapshot of the database-wide metrics (closed sessions merged).
    pub fn global_metrics(&self) -> SessionMetrics {
        self.shared
            .global_metrics
            .lock()
            .expect("metrics lock")
            .clone()
    }

    /// Snapshot of the database-wide telemetry registry (closed sessions
    /// merged).
    pub fn global_registry(&self) -> Registry {
        self.shared
            .global_registry
            .lock()
            .expect("registry lock")
            .clone()
    }

    /// Fold one session's metrics and telemetry registry into the
    /// database-wide registries (what [`Session::close`] calls).
    pub fn merge_session(&self, metrics: &SessionMetrics, registry: &Registry) {
        self.shared
            .global_metrics
            .lock()
            .expect("metrics lock")
            .merge(metrics);
        self.shared
            .global_registry
            .lock()
            .expect("registry lock")
            .merge(registry);
    }

    /// Lifetime counters: generation, sessions, commit traffic.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            generation: self.generation(),
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.shared.sessions_closed.load(Ordering::Relaxed),
            commit_requests: self.shared.commit_requests.load(Ordering::Relaxed),
            commit_batches: self.shared.commit_batches.load(Ordering::Relaxed),
            stats_full: self.shared.stats_full.load(Ordering::Relaxed),
            stats_incremental: self.shared.stats_incremental.load(Ordering::Relaxed),
            stats_skipped: self.shared.stats_skipped.load(Ordering::Relaxed),
        }
    }

    /// Stop the committer (after the requests already queued are
    /// applied) and return the master [`Database`].  Later commits fail
    /// with "committer is shut down"; snapshots already taken — and new
    /// sessions — keep reading the last published generation.  Returns
    /// `None` when another handle already shut the committer down.
    pub fn shutdown(&self) -> Option<Database> {
        // Dropping the sender ends the committer's recv loop.
        drop(
            self.shared
                .tx
                .lock()
                .expect("committer channel lock")
                .take(),
        );
        let handle = self.shared.handle.lock().expect("handle lock").take()?;
        handle.join().ok()
    }
}

fn committer_loop(
    mut db: Database,
    rx: Receiver<CommitRequest>,
    shared: Weak<SharedState>,
) -> Database {
    while let Ok(first) = rx.recv() {
        // Drain whatever else is queued: one published generation per
        // batch amortizes the copy-on-write clones across concurrent
        // committers.
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let Some(shared) = shared.upgrade() else {
            return db;
        };
        shared
            .commit_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.commit_batches.fetch_add(1, Ordering::Relaxed);

        let mut dirty = Dirty::default();
        let mut applied: Vec<String> = Vec::new();
        let mut replies: Vec<(Sender<CommitReply>, Result<Value, String>)> = Vec::new();
        for req in batch {
            // Atomicity by clone-and-swap: a request that fails half way
            // through its program leaves the master untouched.
            let mut trial = db.clone();
            match trial.execute(&req.source) {
                Ok(v) => {
                    db = trial;
                    for stmt in parse_program(&req.source).ok().unwrap_or_default() {
                        classify(&stmt, &mut dirty);
                    }
                    applied.push(req.source.clone());
                    replies.push((req.reply, Ok(v)));
                }
                Err(e) => replies.push((req.reply, Err(e.to_string()))),
            }
        }

        let generation = publish(&mut db, &shared, dirty, applied);
        for (reply, result) in replies {
            // A committer that outlives the requester is fine: the
            // requester hung up, nobody reads the reply.
            let _ = reply.send(CommitReply { result, generation });
        }
    }
    db
}

/// Publish one generation for an applied batch (when it touched any
/// snapshot-visible component) and record the batch in the history.
/// Returns the generation current afterwards.
fn publish(db: &mut Database, shared: &SharedState, dirty: Dirty, applied: Vec<String>) -> u64 {
    let prev = shared.current.read().expect("generation lock").clone();
    if applied.is_empty() {
        return prev.number;
    }
    if !dirty.any() {
        // Nothing snapshot-visible changed (e.g. only procedure
        // definitions), but the statements still belong to the replay
        // history at the unchanged generation.
        shared.stats_skipped.fetch_add(1, Ordering::Relaxed);
        shared
            .history
            .lock()
            .expect("history lock")
            .push(CommitBatch {
                generation: prev.number,
                statements: applied,
                stats: "skipped: no extent data touched".to_string(),
            });
        return prev.number;
    }
    let stats_note = if dirty.data {
        // Fresh cardinalities for the next generation's planners.  The
        // dirty set decides how much work that is: a batch whose data
        // statements name their targets refreshes exactly those extents;
        // a procedure call (targets unknown) — or a master that has never
        // collected anything — falls back to the full sweep.
        let note = if dirty.data_unknown || db.statistics().objects.is_empty() {
            db.collect_stats();
            shared.stats_full.fetch_add(1, Ordering::Relaxed);
            if dirty.data_unknown {
                "full (procedure call)".to_string()
            } else {
                "full (first collection)".to_string()
            }
        } else {
            let names: Vec<String> = dirty.touched.iter().cloned().collect();
            for name in &names {
                db.refresh_stats_for(name);
            }
            shared.stats_incremental.fetch_add(1, Ordering::Relaxed);
            format!("incremental: {}", names.join(", "))
        };
        // Re-warmed columnar chunks for every extent the previous
        // generation had encoded (writes invalidated theirs).
        let chunked: Vec<String> = prev.catalog.chunked_names().map(str::to_string).collect();
        for name in chunked {
            db.ensure_chunks_for(&Expr::named(&name));
        }
        note
    } else {
        // Registry/range/method batches republish without touching data:
        // the statistics stand as collected.
        shared.stats_skipped.fetch_add(1, Ordering::Relaxed);
        "skipped: no extent data touched".to_string()
    };
    let next = Arc::new(Generation {
        number: prev.number + 1,
        registry: if dirty.registry {
            Arc::new(db.registry().clone())
        } else {
            prev.registry.clone()
        },
        catalog: if dirty.data {
            Arc::new(db.catalog().clone())
        } else {
            prev.catalog.clone()
        },
        store: if dirty.data {
            Arc::new(db.store().clone())
        } else {
            prev.store.clone()
        },
        ranges: if dirty.ranges {
            Arc::new(db.ranges().clone())
        } else {
            prev.ranges.clone()
        },
        methods: if dirty.methods {
            Arc::new(db.methods().clone())
        } else {
            prev.methods.clone()
        },
        stats: if dirty.data {
            Arc::new(db.statistics().clone())
        } else {
            prev.stats.clone()
        },
    });
    shared
        .history
        .lock()
        .expect("history lock")
        .push(CommitBatch {
            generation: next.number,
            statements: applied,
            stats: stats_note,
        });
    *shared.current.write().expect("generation lock") = next.clone();
    next.number
}

/// What one [`Session::query`] produced: the value plus the provenance a
/// server wants to report per response.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The program's last `retrieve` result (`true` for programs of only
    /// `range of` declarations).
    pub value: Value,
    /// Result occurrences (multiset cardinality / array length / 1).
    pub rows: u64,
    /// The generation the session was pinned to.
    pub generation: u64,
    /// Fingerprint of the lowered plan (0 for declaration-only programs).
    pub plan_hash: u64,
    /// Per-phase wall time, in order.
    pub phase_us: Vec<(&'static str, u64)>,
    /// Total wall time across the phases.
    pub total_us: u64,
}

/// One client's snapshot-isolated view of a [`VersionedDb`].
pub struct Session {
    db: VersionedDb,
    snapshot: Arc<Generation>,
    /// Private clone of the snapshot's object store: evaluation may mint
    /// temporary OIDs (`ref (...)` in a target list), and those must not
    /// leak into — or contend on — the shared generation.
    scratch: ObjectStore,
    local_ranges: HashMap<String, QExpr>,
    /// Run the rule-based optimizer on every query (default: on,
    /// matching [`Database`]).
    pub optimize: bool,
    /// Plan-search strategy, mirroring [`Database`]'s `EXCESS_OPTIMIZER`
    /// dispatch (memo by default, greedy behind the flag).
    pub optimizer_mode: OptimizerMode,
    /// Session-local corrected statistics: set by
    /// [`Session::reoptimize_last`], used in place of the pinned
    /// generation's statistics until the next [`Session::refresh`] —
    /// snapshot isolation for the feedback loop.
    stats_overlay: Option<Arc<Statistics>>,
    /// Memo picture of the last memo-mode optimization in this session.
    last_memo: Option<MemoSnapshot>,
    /// Label, optimized logical plan, and plan hash of the last query.
    last_plan: Option<(String, Expr, u64)>,
    metrics: SessionMetrics,
    telemetry: Telemetry,
    closed: bool,
}

impl Session {
    /// The generation this session reads.
    pub fn generation(&self) -> u64 {
        self.snapshot.number
    }

    /// The pinned generation itself.
    pub fn snapshot(&self) -> &Arc<Generation> {
        &self.snapshot
    }

    /// This session's cumulative metrics.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// This session's telemetry (registry + flight recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Rewrite a result's references into canonical `(@obj, @val)` value
    /// trees against this session's store (see
    /// [`canonical_form`](excess_core::canon::canonical_form)) — what a
    /// server serializes, since raw OIDs have no client-visible meaning.
    pub fn canon(&self, v: &Value) -> Value {
        excess_core::canon::canonical_form(v, &self.scratch)
    }

    /// Re-pin to the newest published generation.  Session-local
    /// `range of` declarations survive; scratch objects minted by
    /// earlier queries are discarded with the old scratch store.
    pub fn refresh(&mut self) {
        self.snapshot = self.db.current();
        self.scratch = (*self.snapshot.store).clone();
        // The new generation's statistics supersede any feedback-derived
        // corrections made against the old one.
        self.stats_overlay = None;
    }

    /// Memo picture of this session's last memo-mode optimization.
    pub fn last_memo(&self) -> Option<&MemoSnapshot> {
        self.last_memo.as_ref()
    }

    /// The statistics queries in this session currently plan against:
    /// the pinned generation's, unless a re-optimization installed a
    /// corrected overlay.
    pub fn effective_stats(&self) -> Arc<Statistics> {
        self.stats_overlay
            .clone()
            .unwrap_or_else(|| self.snapshot.stats.clone())
    }

    /// Force a feedback-driven re-optimization of this session's last
    /// query: fold its recorded misestimations into a session-local copy
    /// of the statistics (rows snap to the observed cardinalities,
    /// distinct counts and NDVs rescale proportionally), re-run the
    /// mode-dispatched search under the corrected copy, and return a
    /// human-readable report.  `None` when no query has run or nothing
    /// was observed for its plan.  The correction lives in this session
    /// only — the shared generation is immutable — and clears on
    /// [`Session::refresh`].
    pub fn reoptimize_last(&mut self) -> Option<String> {
        let (label, plan, plan_hash) = self.last_plan.clone()?;
        let mut corrected: Vec<(String, f64, f64)> = Vec::new();
        let mut trigger = 1.0f64;
        let mut stats = (*self.effective_stats()).clone();
        for e in self.telemetry.feedback.entries() {
            if e.plan_hash != plan_hash || e.max_q_error <= 1.0 {
                continue;
            }
            trigger = trigger.max(e.max_q_error);
            let Some(extent) = &e.extent else { continue };
            if corrected.iter().any(|(n, _, _)| n == extent) {
                continue;
            }
            let before = stats.object(extent).rows;
            stats.observe_extent_rows(extent, e.mean_actual());
            corrected.push((extent.clone(), before, stats.object(extent).rows));
        }
        if corrected.is_empty() {
            return None;
        }
        let stats = Arc::new(stats);
        self.stats_overlay = Some(stats.clone());
        let ctx = RuleCtx {
            registry: &self.snapshot.registry,
            schemas: &*self.snapshot.catalog,
        };
        let opt = Optimizer::standard();
        let cost_before = cost_of(&plan, &stats);
        let (new_plan, journal) = match self.optimizer_mode {
            OptimizerMode::Memo => {
                let (best, run) = opt.optimize_memo_journaled(&plan, &ctx, &stats);
                self.last_memo = Some(run.snapshot);
                (best.plan, run.journal)
            }
            OptimizerMode::Greedy => {
                let (best, journal) = opt.optimize_greedy_journaled(&plan, &ctx, &stats);
                (best.plan, journal)
            }
        };
        self.metrics.record_journal(&journal);
        self.telemetry.registry.inc("reoptimize.triggered");
        let cost_after = cost_of(&new_plan, &stats);
        let mut out = format!("re-optimization of `{label}`: worst q-error {trigger:.1}\n");
        for (name, before, after) in &corrected {
            out.push_str(&format!(
                "  corrected {name}: rows {before:.0} -> {after:.0}\n"
            ));
        }
        out.push_str(&format!("  cost {cost_before:.0} -> {cost_after:.0}\n"));
        self.last_plan = Some((label, new_plan, plan_hash));
        Some(out)
    }

    /// Run a read-only program — `range of` declarations and `retrieve`
    /// statements — against the pinned snapshot.  Any other statement
    /// (and `retrieve … into`, which stores its result) is rejected:
    /// writes go through [`Session::commit`].
    pub fn query(&mut self, source: &str) -> DbResult<QueryOutcome> {
        let parse_started = Instant::now();
        let stmts = parse_program(source)?;
        let parse_us = parse_started.elapsed().as_micros() as u64;
        if stmts.is_empty() {
            return Err(DbError::Other("empty program".into()));
        }
        // Like `Database::execute`, the first retrieve owns the parse
        // time and the program text for recorder attribution.
        let mut pending_parse = Some(parse_us);
        let mut last: Option<QueryOutcome> = None;
        for stmt in stmts {
            match stmt {
                Stmt::RangeDecl { var, source } => {
                    self.local_ranges.insert(var, source);
                }
                Stmt::Retrieve(r) if r.into.is_none() => {
                    let parse_us = pending_parse.take().unwrap_or(0);
                    last = Some(self.run_retrieve(source.trim(), &r, parse_us)?);
                }
                Stmt::Retrieve(_) => {
                    return Err(DbError::Other(
                        "snapshot sessions are read-only: `retrieve … into` \
                         stores its result — send it through commit"
                            .into(),
                    ));
                }
                _ => {
                    return Err(DbError::Other(
                        "snapshot sessions are read-only: updates, DDL, and \
                         procedure calls go through commit"
                            .into(),
                    ));
                }
            }
        }
        Ok(last.unwrap_or(QueryOutcome {
            value: Value::bool(true),
            rows: 1,
            generation: self.snapshot.number,
            plan_hash: 0,
            phase_us: vec![("parse", parse_us)],
            total_us: parse_us,
        }))
    }

    /// The snapshot query pipeline: translate → optimize (journaled,
    /// dual desugared pass + extent-index substitution, mirroring
    /// [`Database::optimize_plan_journaled`]) → lower (journaled) →
    /// execute on the serial engine against the pinned generation.
    fn run_retrieve(&mut self, label: &str, r: &Retrieve, parse_us: u64) -> DbResult<QueryOutcome> {
        let snapshot = self.snapshot.clone();
        let stats = self.effective_stats();
        let mut phases: Vec<(&'static str, u64)> = vec![("parse", parse_us)];

        // Translate under the merged range environment: committed
        // declarations from the generation, session-local ones on top.
        let started = Instant::now();
        let mut ranges = (*snapshot.ranges).clone();
        ranges.extend(self.local_ranges.clone());
        let tc = TranslateCtx {
            registry: &snapshot.registry,
            schemas: &*snapshot.catalog,
            ranges: &ranges,
            methods: &snapshot.methods,
            this_type: None,
            params: vec![],
        };
        let (plan, _ty) = translate_retrieve(r, &tc)?;
        phases.push(("translate", started.elapsed().as_micros() as u64));

        let plan = if self.optimize {
            let started = Instant::now();
            let ctx = RuleCtx {
                registry: &snapshot.registry,
                schemas: &*snapshot.catalog,
            };
            let opt = Optimizer::standard();
            let (best, mut journal) = match self.optimizer_mode {
                OptimizerMode::Memo => {
                    let (best, run) = opt.optimize_memo_journaled(&plan, &ctx, &stats);
                    self.last_memo = Some(run.snapshot);
                    (best.plan, run.journal)
                }
                OptimizerMode::Greedy => {
                    let (a, ja) = opt.optimize_greedy_journaled(&plan, &ctx, &stats);
                    let (b, jb) = opt.optimize_greedy_journaled(&plan.desugar(), &ctx, &stats);
                    if b.cost < a.cost {
                        (b.plan, jb)
                    } else {
                        (a.plan, ja)
                    }
                }
            };
            let best = apply_extent_indexes_journaled(&best, &stats, &ctx, &mut journal);
            self.metrics.record_journal(&journal);
            phases.push(("optimize", started.elapsed().as_micros() as u64));
            best
        } else {
            plan
        };

        let started = Instant::now();
        let cost = cost_of(&plan, &stats);
        let mut journal = RewriteJournal {
            steps: Vec::new(),
            refused: Vec::new(),
            plans_enumerated: 1,
            max_plans: 0,
            initial_cost: cost,
            final_cost: cost,
        };
        let physical = lower_journaled(&plan, &stats, &mut journal);
        self.metrics.record_journal(&journal);
        phases.push(("lower", started.elapsed().as_micros() as u64));
        let plan_hash = fnv1a64(format!("{physical:?}").as_bytes());
        self.last_plan = Some((label.to_string(), plan.clone(), plan_hash));

        let started = Instant::now();
        let (out, counters) = {
            let mut ctx = EvalCtx::new(&snapshot.registry, &mut self.scratch, &*snapshot.catalog);
            (evaluate_physical(&physical, &mut ctx), ctx.counters)
        };
        let wall = started.elapsed();
        self.metrics.record_query(counters, wall);
        phases.push(("execute", wall.as_micros() as u64));
        let value = out?;

        let rows = match &value {
            Value::Set(s) => s.len(),
            Value::Array(a) => a.len() as u64,
            _ => 1,
        };
        let total_us: u64 = phases.iter().map(|(_, us)| us).sum();
        self.telemetry.registry.inc("queries");
        self.telemetry.registry.inc("queries.serial");
        self.telemetry.registry.observe("query_us", total_us);
        for (name, us) in &phases {
            self.telemetry
                .registry
                .observe(&format!("phase.{name}_us"), *us);
        }
        for (name, v) in counters.named_fields() {
            self.telemetry.registry.add(&format!("work.{name}"), v);
        }
        let kernels: Vec<(String, String)> = physical
            .choices
            .iter()
            .filter(|(_, c)| !matches!(c.op, excess_core::physical::PhysOp::PassThrough))
            .map(|(path, c)| (excess_core::profile::path_string(path), c.op.to_string()))
            .collect();
        let est_rows = physical.choices.get(&Vec::new()).and_then(|c| c.est_rows);
        // Root-level misestimation feeds the session feedback log — the
        // signal `.reoptimize` acts on.
        if let Some(est) = est_rows {
            let op = physical
                .choices
                .get(&Vec::new())
                .map(|c| c.op.to_string())
                .unwrap_or_else(|| "root".to_string());
            self.telemetry.feedback.observe(
                plan_hash,
                "root",
                &op,
                extent_at(&plan, &[]).as_deref(),
                est,
                rows as f64,
            );
        }
        self.telemetry.recorder.record(QueryRecord {
            query: label.to_string(),
            plan_hash,
            engine: "serial".to_string(),
            rows,
            phase_us: phases.clone(),
            kernels,
            est_rows,
            actual_rows: Some(rows),
        });

        Ok(QueryOutcome {
            value,
            rows,
            generation: snapshot.number,
            plan_hash,
            phase_us: phases,
            total_us,
        })
    }

    /// Send a program to the committer; on success, re-pin this session
    /// to the generation the commit published (read-your-writes).
    /// Returns the last statement's value and that generation.
    pub fn commit(&mut self, source: &str) -> DbResult<(Value, u64)> {
        let (value, generation) = self.db.commit(source).map_err(DbError::Other)?;
        self.refresh();
        Ok((value, generation))
    }

    /// Close the session: fold its metrics and telemetry registry into
    /// the database-wide registries.  Dropping a session does the same.
    pub fn close(self) {}
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.db
            .merge_session(&self.metrics, &self.telemetry.registry);
        self.db
            .shared
            .sessions_closed
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> Database {
        let mut db = Database::new();
        db.execute(
            "define type Dept : (dname: char, budget: int4) \
             create DS : {Dept} \
             append to DS ((dname: \"cs\", budget: 100)) \
             append to DS ((dname: \"ee\", budget: 200))",
        )
        .expect("seed program");
        db
    }

    #[test]
    fn snapshot_reads_survive_commits() {
        let vdb = VersionedDb::new(seed());
        let mut pinned = vdb.begin_session();
        let before = pinned
            .query("retrieve (DS.dname, DS.budget)")
            .expect("query")
            .rows;
        assert_eq!(before, 2);
        let (_, generation) = {
            let mut writer = vdb.begin_session();
            writer
                .commit("append to DS ((dname: \"me\", budget: 300))")
                .expect("commit")
        };
        assert_eq!(generation, 1);
        // The pinned session still sees generation 0 …
        assert_eq!(pinned.generation(), 0);
        assert_eq!(
            pinned
                .query("retrieve (DS.dname, DS.budget)")
                .expect("query")
                .rows,
            2
        );
        // … until it refreshes.
        pinned.refresh();
        assert_eq!(pinned.generation(), 1);
        assert_eq!(
            pinned
                .query("retrieve (DS.dname, DS.budget)")
                .expect("query")
                .rows,
            3
        );
        vdb.shutdown().expect("first shutdown returns the master");
    }

    #[test]
    fn commits_are_atomic_per_request() {
        let vdb = VersionedDb::new(seed());
        let mut s = vdb.begin_session();
        // Second statement fails (duplicate object): the first must not
        // have been applied either.
        let err = s
            .commit("append to DS ((dname: \"me\", budget: 300)) create DS : {Dept}")
            .expect_err("duplicate create must fail");
        assert!(err.to_string().contains("already exists"), "{err}");
        assert_eq!(vdb.generation(), 0);
        s.refresh();
        assert_eq!(
            s.query("retrieve (DS.dname)").expect("query").rows,
            2,
            "failed request must leave no partial state"
        );
    }

    #[test]
    fn sessions_are_read_only() {
        let vdb = VersionedDb::new(seed());
        let mut s = vdb.begin_session();
        for src in [
            "append to DS ((dname: \"me\", budget: 300))",
            "retrieve (DS.dname) into DSnames",
            "create XS : {Dept}",
        ] {
            let err = s.query(src).expect_err("writes must be rejected");
            assert!(err.to_string().contains("read-only"), "{src}: {err}");
        }
        // Rejected writes left nothing behind.
        assert_eq!(s.query("retrieve (DS.dname)").expect("query").rows, 2);
    }

    #[test]
    fn local_ranges_overlay_committed_ones() {
        let vdb = VersionedDb::new(seed());
        let mut a = vdb.begin_session();
        let mut b = vdb.begin_session();
        let out = a
            .query("range of D is DS retrieve (D.dname) where D.budget > 150")
            .expect("query with local range");
        assert_eq!(out.rows, 1);
        // The declaration is session-local: B doesn't see it.
        let err = b.query("retrieve (D.dname)").expect_err("unknown range");
        assert!(!err.to_string().contains("read-only"), "{err}");
        // A committed declaration is visible to new sessions.
        a.commit("range of E is DS").expect("commit range decl");
        let mut c = vdb.begin_session();
        assert_eq!(c.query("retrieve (E.dname)").expect("query").rows, 2);
    }

    #[test]
    fn history_records_applied_batches() {
        let vdb = VersionedDb::new(seed());
        let mut s = vdb.begin_session();
        s.commit("append to DS ((dname: \"me\", budget: 300))")
            .expect("commit 1");
        let _ = s.commit("create DS : {Dept}").expect_err("rejected");
        s.commit("range of F is DS").expect("commit 2");
        let history = vdb.history();
        let all: Vec<&str> = history
            .iter()
            .flat_map(|b| b.statements.iter().map(String::as_str))
            .collect();
        assert_eq!(
            all,
            vec![
                "append to DS ((dname: \"me\", budget: 300))",
                "range of F is DS"
            ],
            "history holds exactly the applied requests"
        );
        assert!(history.iter().all(|b| b.generation >= 1));
    }

    #[test]
    fn closing_sessions_merges_metrics_into_the_global_registry() {
        let vdb = VersionedDb::new(seed());
        let mut s = vdb.begin_session();
        s.query("retrieve (DS.dname)").expect("query");
        s.query("retrieve (DS.budget)").expect("query");
        assert_eq!(vdb.global_metrics().queries, 0, "merge happens at close");
        s.close();
        let merged = vdb.global_metrics();
        assert_eq!(merged.queries, 2);
        assert_eq!(vdb.global_registry().counter("queries"), 2);
        let stats = vdb.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
    }

    #[test]
    fn shutdown_returns_the_master_and_later_commits_fail() {
        let vdb = VersionedDb::new(seed());
        vdb.commit("append to DS ((dname: \"me\", budget: 300))")
            .expect("commit");
        let master = vdb.shutdown().expect("master database");
        assert_eq!(
            master.catalog().value("DS").and_then(|v| match v {
                Value::Set(s) => Some(s.len()),
                _ => None,
            }),
            Some(3)
        );
        assert!(vdb.shutdown().is_none(), "second shutdown is a no-op");
        let err = vdb.commit("range of G is DS").expect_err("shut down");
        assert!(err.contains("shut down"), "{err}");
        // Reads keep working against the last published generation.
        let mut s = vdb.begin_session();
        assert_eq!(s.query("retrieve (DS.dname)").expect("query").rows, 3);
    }
}
