//! Statistics collection: the concrete realisation of the paper's
//! Section 6 future work ("an investigation of cost functions and useful
//! statistics for complex object data models").
//!
//! For every named top-level object we record total and distinct
//! cardinalities, the average size of nested collection attributes
//! (following references one level, since the dominant EXTRA idiom is
//! `{ ref T }` sets), and — when the elements are tuples — the number of
//! distinct values of each attribute (NDV).  The NDVs are what let the
//! cost model credit duplicate elimination and derive equi-join
//! selectivities, i.e. reproduce the paper's Figure 6→8 reasoning from
//! data rather than hints.  Globally we record the fraction of set
//! elements per exact type, which prices the Section 4 type-filtered
//! scans.

use crate::catalog::DbCatalog;
use excess_core::eval::exact_type_of_parts;
use excess_optimizer::Statistics;
use excess_types::{ObjectStore, TypeRegistry, Value};
use std::collections::{HashMap, HashSet};

/// Compute fresh statistics from the current database state.
pub fn collect_statistics(
    catalog: &DbCatalog,
    registry: &TypeRegistry,
    store: &ObjectStore,
) -> Statistics {
    let mut stats = Statistics::new();
    let mut type_counts: HashMap<String, u64> = HashMap::new();
    let mut total_elems = 0u64;

    for name in catalog.names() {
        let Some(value) = catalog.value(name) else {
            continue;
        };
        let mut attr_values: HashMap<String, HashSet<&Value>> = HashMap::new();
        let (rows, distinct, nested_sizes) = match value {
            Value::Set(s) => {
                let mut nested = Vec::new();
                for (e, card) in s.iter_counted() {
                    nested.extend(nested_collection_sizes(e, store));
                    record_attr_values(e, store, &mut attr_values);
                    if let Some(ty) = exact_type_of_parts(e, registry, store) {
                        *type_counts
                            .entry(registry.name_of(ty).to_string())
                            .or_insert(0) += card;
                    }
                    total_elems += card;
                }
                (s.len() as f64, s.distinct_len() as f64, nested)
            }
            Value::Array(a) => {
                let nested = a
                    .iter()
                    .inspect(|e| record_attr_values(e, store, &mut attr_values))
                    .flat_map(|e| nested_collection_sizes(e, store))
                    .collect();
                (a.len() as f64, a.len() as f64, nested)
            }
            _ => (1.0, 1.0, Vec::new()),
        };
        let avg_nested = if nested_sizes.is_empty() {
            stats.default_avg_nested
        } else {
            nested_sizes.iter().sum::<f64>() / nested_sizes.len() as f64
        };
        stats.set_object(name, rows.max(1.0), distinct.max(1.0), avg_nested);
        for (attr, values) in attr_values {
            stats.set_attr_ndv(name, &attr, values.len() as f64);
        }
    }

    if total_elems > 0 {
        for (ty, n) in type_counts {
            stats
                .type_fractions
                .insert(ty, n as f64 / total_elems as f64);
        }
    }
    stats
}

/// Recompute the statistics for one named object in place — the
/// incremental refresh the committer and the mutation paths use instead
/// of a full [`collect_statistics`] sweep.  The object's entry (rows,
/// distinct, nested sizes, per-attribute NDVs) is replaced wholesale, so
/// stale NDVs for dropped attributes do not survive; the global
/// `type_fractions` are deliberately left alone (they need a whole-store
/// pass and drift slowly).  Returns false — after removing any stale
/// entry — when the catalog has no such object.
pub fn collect_object_statistics(
    catalog: &DbCatalog,
    store: &ObjectStore,
    name: &str,
    stats: &mut Statistics,
) -> bool {
    let Some(value) = catalog.value(name) else {
        stats.objects.remove(name);
        return false;
    };
    let mut attr_values: HashMap<String, HashSet<&Value>> = HashMap::new();
    let (rows, distinct, nested_sizes) = match value {
        Value::Set(s) => {
            let mut nested = Vec::new();
            for (e, _card) in s.iter_counted() {
                nested.extend(nested_collection_sizes(e, store));
                record_attr_values(e, store, &mut attr_values);
            }
            (s.len() as f64, s.distinct_len() as f64, nested)
        }
        Value::Array(a) => {
            let nested = a
                .iter()
                .inspect(|e| record_attr_values(e, store, &mut attr_values))
                .flat_map(|e| nested_collection_sizes(e, store))
                .collect();
            (a.len() as f64, a.len() as f64, nested)
        }
        _ => (1.0, 1.0, Vec::new()),
    };
    let avg_nested = if nested_sizes.is_empty() {
        stats.default_avg_nested
    } else {
        nested_sizes.iter().sum::<f64>() / nested_sizes.len() as f64
    };
    let mut object = excess_optimizer::ObjectStats {
        rows: rows.max(1.0),
        distinct: distinct.max(1.0),
        avg_nested,
        attr_ndv: Default::default(),
    };
    for (attr, values) in attr_values {
        object.attr_ndv.insert(attr, values.len() as f64);
    }
    stats.objects.insert(name.to_string(), object);
    true
}

/// Record each tuple attribute's value into the per-attribute value sets
/// (following a reference one level, as queries do when they DEREF).
fn record_attr_values<'a>(
    v: &'a Value,
    store: &'a ObjectStore,
    attrs: &mut HashMap<String, HashSet<&'a Value>>,
) {
    let v = match v {
        Value::Ref(oid) => match store.deref(*oid) {
            Ok(inner) => inner,
            Err(_) => return,
        },
        other => other,
    };
    if let Value::Tuple(t) = v {
        for (f, fv) in t.iter() {
            attrs.entry(f.to_string()).or_default().insert(fv);
        }
    }
}

/// Sizes of the collection-valued attributes of one element, following a
/// reference one level.
fn nested_collection_sizes(v: &Value, store: &ObjectStore) -> Vec<f64> {
    let v = match v {
        Value::Ref(oid) => match store.deref(*oid) {
            Ok(inner) => inner,
            Err(_) => return Vec::new(),
        },
        other => other,
    };
    match v {
        Value::Tuple(t) => t
            .iter()
            .filter_map(|(_, fv)| match fv {
                Value::Set(s) => Some(s.len() as f64),
                Value::Array(a) => Some(a.len() as f64),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}
