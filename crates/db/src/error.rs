//! Database errors.

use std::fmt;

/// Any failure while executing EXCESS statements.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payloads are the wrapped errors
pub enum DbError {
    /// Front-end (lex/parse/translate) failure.
    Lang(excess_lang::LangError),
    /// Evaluation failure.
    Eval(excess_core::EvalError),
    /// Type-system failure.
    Type(excess_types::TypeError),
    /// Schema inference failure.
    Infer(String),
    /// Engine-level failure (unknown object, wrong statement kind, …).
    Other(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Lang(e) => write!(f, "{e}"),
            DbError::Eval(e) => write!(f, "{e}"),
            DbError::Type(e) => write!(f, "{e}"),
            DbError::Infer(s) => write!(f, "inference: {s}"),
            DbError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<excess_lang::LangError> for DbError {
    fn from(e: excess_lang::LangError) -> Self {
        DbError::Lang(e)
    }
}
impl From<excess_core::EvalError> for DbError {
    fn from(e: excess_core::EvalError) -> Self {
        DbError::Eval(e)
    }
}
impl From<excess_types::TypeError> for DbError {
    fn from(e: excess_types::TypeError) -> Self {
        DbError::Type(e)
    }
}
impl From<excess_core::infer::InferError> for DbError {
    fn from(e: excess_core::infer::InferError) -> Self {
        DbError::Infer(e.to_string())
    }
}

/// Result alias.
pub type DbResult<T> = std::result::Result<T, DbError>;
