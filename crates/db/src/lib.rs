//! # excess-db — the end-to-end EXTRA/EXCESS engine
//!
//! Ties the whole reproduction together: the [`Database`] type owns the
//! type registry, the object store, the catalog of named top-level
//! objects, session `range of` declarations, the method registry, the
//! optimizer's statistics, and per-exact-type extent indexes (Section 4).
//!
//! ```
//! use excess_db::Database;
//!
//! let mut db = Database::new();
//! db.execute("define type Dept: (name: char[], floor: int4)").unwrap();
//! db.execute("create Depts: { Dept }").unwrap();
//! db.execute("append to Depts (name: \"CS\", floor: 2)").unwrap();
//! db.execute("append to Depts (name: \"Math\", floor: 3)").unwrap();
//! let out = db
//!     .execute("retrieve (D.name) from D in Depts where D.floor = 2")
//!     .unwrap();
//! assert_eq!(out.to_string(), "{ \"CS\" }");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod database;
pub mod error;
pub mod explain;
pub mod format;
pub mod json;
pub mod metrics;
pub mod session;
pub mod stats;

pub use catalog::{DbCatalog, NamedObject};
pub use database::{Database, ReoptReport};
pub use error::{DbError, DbResult};
pub use explain::{render_explain_analyze, render_parallel_execution};
pub use format::{format_result, try_table};
pub use json::{
    counters_json, escape_json, exec_report_json, journal_json, metrics_json, profile_json,
    value_json, verify_json,
};
pub use session::{CommitBatch, Generation, QueryOutcome, ServerStats, Session, VersionedDb};

// Re-exported so callers can configure parallel execution without naming
// the engine crate directly.
pub use excess_exec::{ExecConfig, ExecReport, THREADS_ENV};
// Re-exported so callers can pick the plan-search strategy (and read the
// memo picture) without naming the optimizer crate.
pub use excess_optimizer::{MemoSnapshot, OptimizerMode, OPTIMIZER_ENV};
// Re-exported so callers can read telemetry without naming the crate.
pub use excess_telemetry::{
    FeedbackLog, FlightRecorder, Histogram, QueryRecord, QueryTrace, Registry, Span, Telemetry,
};
pub use metrics::SessionMetrics;
pub use stats::{collect_object_statistics, collect_statistics};
