//! EXPLAIN ANALYZE: render an executed plan as an operator tree where each
//! node carries what it *actually did* — invocations, input/output
//! cardinality, the counter deltas attributable to the node alone, wall
//! time and its share of the whole query — side by side with what the
//! cost model *predicted* for that node.
//!
//! Profile entries and static estimates are joined by node path (child
//! indices from the root), the shared key of
//! [`excess_core::profile`] and [`excess_optimizer::estimate_nodes`].

use excess_core::expr::Expr;
use excess_core::profile::{NodePath, Profile};
use excess_core::render::op_label;
use excess_exec::ExecReport;
use excess_optimizer::Estimate;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render the annotated operator tree for one profiled execution.
pub fn render_explain_analyze(
    plan: &Expr,
    profile: &Profile,
    estimates: &[(NodePath, Estimate)],
) -> String {
    let est: BTreeMap<&[usize], &Estimate> =
        estimates.iter().map(|(p, e)| (p.as_slice(), e)).collect();
    let mut out = String::new();
    let mut path: NodePath = Vec::new();
    walk(plan, &mut path, "", true, 0, profile, &est, &mut out);
    let _ = writeln!(
        out,
        "total: {:.3} ms  {}",
        profile.total_wall.as_secs_f64() * 1e3,
        profile.total
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    e: &Expr,
    path: &mut NodePath,
    prefix: &str,
    last: bool,
    depth: usize,
    profile: &Profile,
    est: &BTreeMap<&[usize], &Estimate>,
    out: &mut String,
) {
    let connector = if depth == 0 {
        ""
    } else if last {
        "└─ "
    } else {
        "├─ "
    };
    let actual = match profile.node(path) {
        Some(n) => {
            let c = &n.self_counters;
            let ms = n.self_wall.as_secs_f64() * 1e3;
            let total_ms = profile.total_wall.as_secs_f64() * 1e3;
            let pct = if total_ms > 0.0 {
                ms / total_ms * 100.0
            } else {
                0.0
            };
            format!(
                "calls={} rows={}→{} self[occ={} de_in={} deref={} cmp={}] \
                 {ms:.3} ms ({pct:.1}%)",
                n.calls,
                n.rows_in,
                n.rows_out,
                c.occurrences_scanned,
                c.de_input_occurrences,
                c.derefs,
                c.comparisons
            )
        }
        None => "(never executed)".to_string(),
    };
    let predicted = match est.get(path.as_slice()) {
        Some(s) => format!("est rows={:.0} cost={:.0}", s.rows, s.cost),
        None => "est —".to_string(),
    };
    let _ = writeln!(
        out,
        "{prefix}{connector}{}  {actual}  | {predicted}",
        op_label(e)
    );
    let kids = e.children();
    let child_prefix = if depth == 0 {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    for (i, c) in kids.iter().enumerate() {
        path.push(i);
        walk(
            c,
            path,
            &child_prefix,
            i == kids.len() - 1,
            depth + 1,
            profile,
            est,
            out,
        );
        path.pop();
    }
}

/// Render the parallel-execution appendix of EXPLAIN ANALYZE: worker
/// count, occurrence skew, the per-node decision journal, and per-worker
/// accounting.  This is a *section*, not per-node annotation, because the
/// engine profiles partition-local fragment plans whose node paths do not
/// align one-to-one with the original plan tree.
pub fn render_parallel_execution(r: &ExecReport) -> String {
    let mut out = String::new();
    let skew = match r.skew() {
        Some(s) => format!(", occurrence skew {s:.2}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "parallel execution: {} workers, {} parallel node(s), {} serial fallback(s){skew}",
        r.workers,
        r.parallel_nodes(),
        r.fallbacks()
    );
    for e in &r.events {
        let _ = writeln!(out, "  {e}");
    }
    for w in &r.worker_stats {
        let _ = writeln!(
            out,
            "  worker {}: {} tasks, {} occurrences, {:.3} ms busy",
            w.worker,
            w.tasks,
            w.occurrences,
            w.busy.as_secs_f64() * 1e3
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_core::eval::{evaluate, EvalCtx};
    use excess_optimizer::{estimate_nodes, Statistics};
    use excess_types::{ObjectStore, TypeRegistry, Value};
    use std::collections::HashMap;

    #[test]
    fn annotates_every_node_with_actuals_and_estimates() {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        ctx.enable_tracing();

        let plan = Expr::lit(Value::set((0..5).map(Value::int)))
            .set_apply(Expr::input())
            .dup_elim();
        evaluate(&plan, &mut ctx).unwrap();
        let profile = ctx.take_profile().unwrap();
        let stats = Statistics::new();
        let ests = estimate_nodes(&plan, &stats);

        let text = render_explain_analyze(&plan, &profile, &ests);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("DE"), "{text}");
        assert!(lines[0].contains("de_in=5"), "{text}");
        assert!(lines[0].contains("est rows="), "{text}");
        assert!(lines[1].contains("SET_APPLY"), "{text}");
        // rows_in counts both children: 5 from the input set and 1 per
        // body invocation (×5).
        assert!(lines[1].contains("rows=10→5"), "{text}");
        assert!(
            text.trim_end().ends_with(&format!("{}", profile.total)),
            "{text}"
        );
        // Connectors match the plain renderer's style.
        assert!(text.contains("└─"), "{text}");
    }

    #[test]
    fn unexecuted_branches_say_so() {
        // Profile an entirely different plan so no node joins.
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        ctx.enable_tracing();
        evaluate(&Expr::lit(Value::int(1)), &mut ctx).unwrap();
        let profile = ctx.take_profile().unwrap();

        let other = Expr::lit(Value::set([Value::int(1)])).dup_elim();
        let text = render_explain_analyze(&other, &profile, &[]);
        // The root joins (path [] exists in any profile); the child cannot.
        assert!(
            text.lines().nth(1).unwrap().contains("(never executed)"),
            "{text}"
        );
        assert!(text.contains("est —"), "{text}");
    }
}
