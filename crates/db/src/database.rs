//! The end-to-end EXTRA/EXCESS engine: DDL, queries, updates, methods,
//! statistics, and extent indexes behind one `Database` type.

use crate::catalog::DbCatalog;
use crate::error::{DbError, DbResult};
use crate::metrics::SessionMetrics;
use crate::stats::{collect_object_statistics, collect_statistics};
use excess_core::counters::Counters;
use excess_core::eval::{evaluate, EvalCtx};
use excess_core::expr::Expr;
use excess_core::physical::{evaluate_physical, PhysicalPlan};
use excess_core::profile::Profile;
use excess_core::verify::Report;
use excess_exec::{run_parallel, run_parallel_plan, ExecConfig, ExecReport, Tracing};
use excess_lang::ast::{QExpr, QPred, Retrieve, Step, Stmt};
use excess_lang::ddl::{initial_value, lower_type};
use excess_lang::methods::{MethodDef, MethodRegistry};
use excess_lang::translate::{resolve_this, translate_retrieve, TranslateCtx};
use excess_lang::{parse_program, LangError};
use excess_optimizer::{
    annotate_columnar, apply_extent_indexes, apply_extent_indexes_journaled, cost_of,
    elide_proven_guards, estimate_physical, lower, lower_journaled, JournalStep, MemoSnapshot,
    Optimizer, OptimizerMode, RewriteJournal, RuleCtx, Statistics, COLUMNAR_RULE, REOPTIMIZE_RULE,
};
use excess_telemetry::{fnv1a64, QueryRecord, QueryTrace, Span, Telemetry};
use excess_types::{ObjectStore, SchemaType, TypeId, TypeRegistry, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Occurrences in a query result (what the flight recorder reports as
/// `rows`): multiset cardinality with duplicates, array length, 1 for
/// scalars and tuples.
fn value_rows(v: &Value) -> u64 {
    match v {
        Value::Set(s) => s.len(),
        Value::Array(a) => a.len() as u64,
        _ => 1,
    }
}

/// Deterministic fingerprint of a lowered plan: FNV-1a over the debug
/// rendering (logical tree plus every kernel choice), so the same plan
/// hashes identically across runs and sessions.
fn plan_hash_of(plan: &PhysicalPlan) -> u64 {
    fnv1a64(format!("{plan:?}").as_bytes())
}

/// The extent a plan node reads: walk the logical tree to the node at
/// `path` (profiler child indexing) and take the leftmost named object
/// under it, if any — how feedback observations get attributed to a
/// concrete [`Statistics`] entry.
pub(crate) fn extent_at(plan: &Expr, path: &[usize]) -> Option<String> {
    fn first_named(e: &Expr) -> Option<String> {
        if let Expr::Named(n) = e {
            return Some(n.clone());
        }
        e.children().into_iter().find_map(first_named)
    }
    let mut node = plan;
    for &i in path {
        node = *node.children().get(i)?;
    }
    first_named(node)
}

/// One feedback-driven re-optimization: what triggered it, which
/// statistics were corrected from the observed cardinalities, and how the
/// re-derived plan compares to the one it replaces.
#[derive(Debug, Clone)]
pub struct ReoptReport {
    /// Label of the query whose plan was re-derived.
    pub label: String,
    /// The worst recorded q-error that triggered the re-optimization.
    pub trigger_q_error: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// `(extent, rows_before, rows_after)` for every corrected object.
    pub corrected: Vec<(String, f64, f64)>,
    /// Estimated cost of the old plan under the corrected statistics.
    pub cost_before: f64,
    /// Estimated cost of the re-derived plan (corrected statistics).
    pub cost_after: f64,
    /// Physical plan hash before the re-lower.
    pub plan_hash_before: u64,
    /// Physical plan hash after the re-lower.
    pub plan_hash_after: u64,
    /// The re-derived logical plan.
    pub plan: Expr,
}

impl ReoptReport {
    /// Human-readable block, as `explain_analyze` and the REPL print it.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "re-optimization: q-error {:.1} > threshold {:.1}",
            self.trigger_q_error, self.threshold
        );
        for (name, before, after) in &self.corrected {
            let _ = writeln!(out, "  corrected {name}: rows {before:.0} -> {after:.0}");
        }
        let _ = writeln!(
            out,
            "  cost {:.0} -> {:.0}; plan hash {:016x} -> {:016x}",
            self.cost_before, self.cost_after, self.plan_hash_before, self.plan_hash_after
        );
        out
    }
}

/// Turn a profile's preorder node list into nested operator spans.
///
/// Each profile node becomes one `op:` span carrying its *self* counters
/// as numeric attributes, so summing any counter over the returned
/// subtrees telescopes exactly to the profile total — the PR 1 invariant
/// (`sum_of_self_counters() == total`) re-exposed on the span tree.
/// Nesting follows path prefixes; merged parallel profiles (several
/// fragment roots) yield several root spans.  Start offsets are not
/// recorded per node by the profiler, so children share the execute
/// phase's start and carry their `total_wall` as duration — containment
/// (child ⊆ parent interval) still holds because a child's total wall is
/// bounded by its parent's.
fn profile_spans(profile: &Profile, start_us: u64) -> Vec<Span> {
    use excess_core::profile::{path_string, NodePath};
    fn is_ancestor(a: &[usize], b: &[usize]) -> bool {
        b.len() > a.len() && b[..a.len()] == *a
    }
    fn pop_into(stack: &mut Vec<(NodePath, Span)>, roots: &mut Vec<Span>) {
        let (_, done) = stack.pop().expect("caller checked non-empty");
        match stack.last_mut() {
            Some((_, parent)) => parent.children.push(done),
            None => roots.push(done),
        }
    }
    let mut roots: Vec<Span> = Vec::new();
    let mut stack: Vec<(NodePath, Span)> = Vec::new();
    for n in &profile.nodes {
        let mut span = Span::new(
            format!("op:{} {}", n.label, path_string(&n.path)),
            "op",
            start_us,
            n.total_wall.as_micros() as u64,
        )
        .with_meta("path", path_string(&n.path))
        .with_num("calls", n.calls)
        .with_num("rows_in", n.rows_in)
        .with_num("rows_out", n.rows_out)
        .with_num("self_us", n.self_wall.as_micros() as u64);
        for (name, v) in n.self_counters.named_fields() {
            span = span.with_num(name, v);
        }
        while matches!(stack.last(), Some((p, _)) if !is_ancestor(p, &n.path)) {
            pop_into(&mut stack, &mut roots);
        }
        stack.push((n.path.clone(), span));
    }
    while !stack.is_empty() {
        pop_into(&mut stack, &mut roots);
    }
    roots
}

/// Render a verifier [`Report`] as the `diagnostics:` block `explain` and
/// `explain_analyze` append — empty string when there is nothing to say.
fn render_diagnostics(r: &Report) -> String {
    if r.diagnostics.is_empty() {
        return String::new();
    }
    let mut out = String::from("diagnostics:\n");
    for d in &r.diagnostics {
        out.push_str("  ");
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Render the `physical plan:` block `explain_analyze` appends: one line
/// per lowered spine node whose kernel is more than a pass-through, with
/// the lowering's estimated rows next to the measured rows at that node
/// (`—` when the profile has no node at the path, as can happen for
/// partition-local fragment profiles).
fn render_physical_choices(plan: &PhysicalPlan, profile: &Profile) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (path, choice) in &plan.choices {
        if matches!(choice.op, excess_core::physical::PhysOp::PassThrough) {
            continue;
        }
        if out.is_empty() {
            out.push_str("physical plan:\n");
        }
        let actual = profile
            .node(path)
            .map(|n| n.rows_out.to_string())
            .unwrap_or_else(|| "—".to_string());
        let est = choice
            .est_rows
            .map(|r| format!("{r:.0}"))
            .unwrap_or_else(|| "?".to_string());
        let _ = write!(
            out,
            "  {} {}  est rows={est} actual rows={actual}",
            excess_core::profile::path_string(path),
            choice.op,
        );
        if !choice.why.is_empty() {
            let _ = write!(out, "  ({})", choice.why);
        }
        out.push('\n');
    }
    out
}

/// A stored procedure: a parameterised script of statements.
#[derive(Debug, Clone)]
struct Procedure {
    params: Vec<(String, SchemaType)>,
    body: Vec<Stmt>,
}

/// An in-memory EXTRA/EXCESS database.
///
/// `Clone` copies the whole state — schema, data, methods, metrics.
/// The session layer ([`crate::session`]) leans on this for atomic
/// commits: a request is applied to a clone of the master and the clone
/// is swapped in only when every statement succeeded.
#[derive(Clone)]
pub struct Database {
    registry: TypeRegistry,
    store: ObjectStore,
    catalog: DbCatalog,
    ranges: HashMap<String, QExpr>,
    methods: MethodRegistry,
    procedures: HashMap<String, Procedure>,
    stats: Statistics,
    /// Run the rule-based optimizer on every query (default: on).
    pub optimize: bool,
    /// Run the property-licensed rewrite pass and guard-elision pass on
    /// every query (default: off — the passes re-analyse the stored data
    /// per query, and the figure-convergence suite pins the standard
    /// greedy rule sequences).  Journaled under `property-licensed`;
    /// elisions are counted in the telemetry registry
    /// (`lowering.guard_elisions`).
    pub property_rewrites: bool,
    /// Use columnar extent chunks and vectorized kernels where the
    /// lowering proves them safe (default: off).  When on, the pipeline
    /// encodes referenced base extents into column chunks
    /// ([`Database::ensure_chunks_for`]) and upgrades chunk-safe kernel
    /// choices to their `Columnar*` variants, journaled under
    /// `columnar-lowering`; chunk-unsafe nodes keep their row kernels
    /// with the refusal reason journaled.
    pub columnar: bool,
    /// Parallel-execution configuration; `retrieve` statements route
    /// through the partition-parallel engine whenever `workers > 1`
    /// (default: from `EXCESS_THREADS`, serial when unset).
    exec: ExecConfig,
    /// Plan-search strategy (default: from `EXCESS_OPTIMIZER` — memoized
    /// group search unless `greedy` is requested for the legacy pass).
    optimizer_mode: OptimizerMode,
    /// q-error threshold above which a feedback observation for the
    /// current plan triggers a re-optimization (stats corrected from the
    /// observed cardinalities, plan re-optimized and re-lowered, the step
    /// journaled under `reoptimize`).
    pub reopt_threshold: f64,
    /// Memo picture of the last journaled optimization (memo mode only).
    last_memo: Option<MemoSnapshot>,
    /// Label, optimized logical plan, and physical plan hash of the last
    /// pipeline query — what `.reoptimize` forces a re-lower of.
    last_plan: Option<(String, Expr, u64)>,
    /// The last feedback-driven re-optimization, if any.
    last_reopt: Option<ReoptReport>,
    last_counters: Counters,
    last_exec_report: Option<ExecReport>,
    metrics: SessionMetrics,
    telemetry: Telemetry,
    /// Parse time and source text of the program currently being
    /// `execute`d, consumed by the first `retrieve` it contains so the
    /// flight recorder can attribute the parse phase and the query text.
    pending_parse: Option<(String, u64)>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        let (exec, warning) = ExecConfig::from_env_checked();
        let (optimizer_mode, mode_warning) = OptimizerMode::from_env();
        let mut db = Database {
            registry: TypeRegistry::new(),
            store: ObjectStore::new(),
            catalog: DbCatalog::new(),
            ranges: HashMap::new(),
            methods: MethodRegistry::new(),
            procedures: HashMap::new(),
            stats: Statistics::new(),
            optimize: true,
            property_rewrites: false,
            columnar: false,
            exec,
            optimizer_mode,
            reopt_threshold: 32.0,
            last_memo: None,
            last_plan: None,
            last_reopt: None,
            last_counters: Counters::new(),
            last_exec_report: None,
            metrics: SessionMetrics::new(),
            telemetry: Telemetry::new(),
            pending_parse: None,
        };
        if let Some(w) = warning {
            db.warn(w);
        }
        if let Some(w) = mode_warning {
            db.warn(w);
        }
        // Flight-recorder tuning rides the same pure-parse-then-warn path
        // as `EXCESS_THREADS`: bad values fall back to the defaults and
        // surface in `.metrics` / the JSON snapshot instead of being
        // silently ignored.
        let rec = excess_telemetry::RecorderSettings::from_env();
        for w in rec.warnings.clone() {
            db.warn(w);
        }
        db.telemetry.recorder = rec.build();
        db
    }

    /// Record a configuration warning in both the session metrics and the
    /// telemetry registry (`config.warnings` counter).
    fn warn(&mut self, warning: String) {
        self.telemetry.registry.inc("config.warnings");
        self.metrics.record_warning(warning);
    }

    // ----- accessors (used by examples and benchmarks) -----

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }
    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }
    /// Mutable object store (bulk loading).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }
    /// The catalog.
    pub fn catalog(&self) -> &DbCatalog {
        &self.catalog
    }
    /// The session's `range of` declarations, by variable name.
    pub fn ranges(&self) -> &HashMap<String, QExpr> {
        &self.ranges
    }
    /// The method registry.
    pub fn methods(&self) -> &MethodRegistry {
        &self.methods
    }
    /// Current statistics.
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }
    /// Mutable statistics — lets experiments install deliberately stale
    /// estimates to exercise the feedback-driven re-optimization path.
    pub fn statistics_mut(&mut self) -> &mut Statistics {
        &mut self.stats
    }
    /// The active plan-search strategy.
    pub fn optimizer_mode(&self) -> OptimizerMode {
        self.optimizer_mode
    }
    /// Switch between memoized search and the legacy greedy pass.
    pub fn set_optimizer_mode(&mut self, mode: OptimizerMode) {
        self.optimizer_mode = mode;
    }
    /// Memo picture of the last journaled optimization (None in greedy
    /// mode or before the first optimized query).
    pub fn last_memo(&self) -> Option<&MemoSnapshot> {
        self.last_memo.as_ref()
    }
    /// The last feedback-driven re-optimization, if one has fired.
    pub fn last_reoptimization(&self) -> Option<&ReoptReport> {
        self.last_reopt.as_ref()
    }
    /// Work counters of the most recent evaluation.
    pub fn last_counters(&self) -> Counters {
        self.last_counters
    }
    /// Cumulative per-session metrics (queries, counters, rule firings).
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }
    /// The current parallel-execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }
    /// Replace the parallel-execution configuration.
    pub fn set_exec_config(&mut self, cfg: ExecConfig) {
        self.exec = cfg;
    }
    /// Set the worker-thread count (1 = serial; clamped to ≥ 1).  A
    /// request for zero workers is clamped *and* surfaced as a session
    /// warning rather than silently adjusted.
    pub fn set_threads(&mut self, workers: usize) {
        if workers == 0 {
            self.warn(
                "set_threads(0) requests zero workers; clamped to serial (1 worker)".to_string(),
            );
        }
        self.exec = ExecConfig::with_workers(workers);
    }

    /// Apply a worker-count *setting string* (the `EXCESS_THREADS` format)
    /// to the session, surfacing a warning when the value is unparsable or
    /// zero instead of silently falling back to serial.
    pub fn set_threads_setting(&mut self, setting: Option<&str>) {
        let (cfg, warning) = ExecConfig::from_setting(setting);
        if let Some(w) = warning {
            self.warn(w);
        }
        self.exec = cfg;
    }
    /// The execution journal of the most recent parallel run (strategies,
    /// exchanges, fallbacks, per-worker skew), if any.
    pub fn last_exec_report(&self) -> Option<&ExecReport> {
        self.last_exec_report.as_ref()
    }
    /// Zero the session metrics registry.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    // ----- telemetry -----

    /// The session telemetry: metric registry, latency histograms, flight
    /// recorder, and misestimation feedback log.  The registry, recorder,
    /// and feedback log are always on; span traces are opt-in via
    /// [`Database::enable_query_spans`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry (configure the slow-query threshold, reset, …).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Turn full query-span traces on or off.  While on, every query run
    /// through the pipeline executes with profiling and assembles a
    /// [`QueryTrace`] covering parse → infer → verify → optimize → lower →
    /// execute (with per-rewrite, per-choice, per-operator, and per-worker
    /// children), retrievable via [`Database::last_query_trace`].
    pub fn enable_query_spans(&mut self, on: bool) {
        self.telemetry.spans_enabled = on;
        if !on {
            self.telemetry.last_trace = None;
        }
    }

    /// The span tree of the most recent traced query, if spans are on and
    /// a query has run since.
    pub fn last_query_trace(&self) -> Option<&QueryTrace> {
        self.telemetry.last_trace.as_ref()
    }

    /// Update a stored object's value (bulk loading outside the DDL path).
    pub fn update_stored(&mut self, oid: excess_types::Oid, value: Value) -> DbResult<()> {
        Ok(self.store.update(&self.registry, oid, value)?)
    }

    /// Register an object directly (bulk loading outside the DDL path).
    pub fn put_object(&mut self, name: &str, schema: SchemaType, value: Value) {
        self.catalog.put(name, schema, value);
        self.rebuild_extents_for(name);
    }

    /// Define a type directly (bulk loading outside the DDL path).
    pub fn define_type_raw(
        &mut self,
        name: &str,
        body: SchemaType,
        inherits: &[&str],
    ) -> DbResult<TypeId> {
        Ok(self.registry.define_with_supertypes(name, body, inherits)?)
    }

    // ----- statement execution -----

    /// Parse and execute a program; returns the last statement's value
    /// (queries return their result; DDL and updates return `true`).
    pub fn execute(&mut self, src: &str) -> DbResult<Value> {
        let parse_started = Instant::now();
        let stmts = parse_program(src)?;
        let parse_us = parse_started.elapsed().as_micros() as u64;
        if stmts.is_empty() {
            return Err(DbError::Other("empty program".into()));
        }
        // The first retrieve of the program owns the parse time and the
        // source text for flight-recorder attribution.
        self.pending_parse = Some((src.trim().to_string(), parse_us));
        let mut last = Value::bool(true);
        for s in stmts {
            last = self.run_stmt(&s)?;
        }
        self.pending_parse = None;
        Ok(last)
    }

    /// Execute one parsed statement.
    pub fn run_stmt(&mut self, stmt: &Stmt) -> DbResult<Value> {
        match stmt {
            Stmt::DefineType {
                name,
                body,
                inherits,
            } => {
                let body = lower_type(body);
                let sups: Vec<&str> = inherits.iter().map(String::as_str).collect();
                self.registry.define_with_supertypes(name, body, &sups)?;
                Ok(Value::bool(true))
            }
            Stmt::Create { name, ty } => {
                if self.catalog.contains(name) {
                    return Err(DbError::Other(format!("object `{name}` already exists")));
                }
                let schema = lower_type(ty);
                let init = initial_value(&schema, &self.registry)?;
                self.catalog.put(name, schema, init);
                Ok(Value::bool(true))
            }
            Stmt::DefineFunction {
                on_type,
                name,
                params,
                returns,
                body,
            } => {
                self.registry.lookup(on_type)?;
                let params: Vec<(String, SchemaType)> = params
                    .iter()
                    .map(|(n, t)| (n.clone(), lower_type(t)))
                    .collect();
                let tc = TranslateCtx {
                    registry: &self.registry,
                    schemas: &self.catalog,
                    ranges: &self.ranges,
                    methods: &self.methods,
                    this_type: Some(SchemaType::named(on_type.clone())),
                    params: params.clone(),
                };
                let last = body.last().expect("parser guarantees non-empty body");
                let (plan, _) = translate_retrieve(last, &tc)?;
                let plan = resolve_this(&plan);
                self.methods.define(MethodDef {
                    owner: on_type.clone(),
                    name: name.clone(),
                    params,
                    returns: lower_type(returns),
                    body: plan,
                })?;
                Ok(Value::bool(true))
            }
            Stmt::RangeDecl { var, source } => {
                self.ranges.insert(var.clone(), source.clone());
                Ok(Value::bool(true))
            }
            Stmt::Retrieve(r) => {
                let (label, parse_us) = self
                    .pending_parse
                    .take()
                    .unwrap_or_else(|| ("retrieve".to_string(), 0));
                let translate_started = Instant::now();
                let (plan, ty) = self.translate(r)?;
                let translate_us = translate_started.elapsed().as_micros() as u64;
                let value = self.run_pipeline(
                    &label,
                    &plan,
                    &[("parse", parse_us), ("translate", translate_us)],
                )?;
                if let Some(into) = &r.into {
                    self.catalog.put(into, ty, value.clone());
                    self.rebuild_extents_for(into);
                }
                Ok(value)
            }
            Stmt::DefineProcedure { name, params, body } => {
                // Validate the parameter types exist; bodies are checked
                // lazily at call time (they may reference objects created
                // by earlier statements of the same call).
                let params: Vec<(String, SchemaType)> = params
                    .iter()
                    .map(|(n, t)| (n.clone(), lower_type(t)))
                    .collect();
                for (_, t) in &params {
                    for mentioned in t.mentioned_types() {
                        self.registry.lookup(mentioned)?;
                    }
                }
                self.procedures.insert(
                    name.clone(),
                    Procedure {
                        params,
                        body: body.clone(),
                    },
                );
                Ok(Value::bool(true))
            }
            Stmt::Call { name, args } => self.call_procedure(name, args),
            Stmt::Append { target, value } => self.append(target, value),
            Stmt::Delete { target, filter } => self.delete(target, filter),
            Stmt::Replace {
                target,
                fields,
                filter,
            } => self.replace(target, fields, filter.as_ref()),
            Stmt::AssignIndex {
                target,
                index,
                value,
            } => self.assign_index(target, *index, value),
        }
    }

    // ----- planning -----

    /// Translate a retrieve to its (unoptimized) algebra plan.
    pub fn translate(&self, r: &Retrieve) -> DbResult<(Expr, SchemaType)> {
        let tc = TranslateCtx {
            registry: &self.registry,
            schemas: &self.catalog,
            ranges: &self.ranges,
            methods: &self.methods,
            this_type: None,
            params: vec![],
        };
        Ok(translate_retrieve(r, &tc)?)
    }

    /// Parse a single `retrieve` and return its unoptimized plan.
    pub fn plan_for(&self, src: &str) -> DbResult<Expr> {
        let stmt = excess_lang::parse_statement(src)?;
        match stmt {
            Stmt::Retrieve(r) => Ok(self.translate(&r)?.0),
            _ => Err(DbError::Lang(LangError::Parse(
                "expected a retrieve".into(),
            ))),
        }
    }

    /// Rule-based optimization plus extent-index rewriting, dispatched on
    /// the session's [`OptimizerMode`].
    ///
    /// In memo mode (the default) the plan is interned into the memo and
    /// explored as group transformations; the memo seeds itself with the
    /// greedy trajectory, so its result never costs more than greedy's.
    /// In greedy mode the legacy pass runs on both the plan as given and
    /// its desugared form (derived σ/join nodes expanded to
    /// SET_APPLY∘COMP), because several fusion rules — rule 15 in
    /// particular — only match the primitive shapes; the cheaper result
    /// wins.
    pub fn optimize_plan(&self, plan: &Expr) -> Expr {
        let ctx = RuleCtx {
            registry: &self.registry,
            schemas: &self.catalog,
        };
        let opt = Optimizer::standard();
        let best = match self.optimizer_mode {
            OptimizerMode::Memo => opt.optimize_memo(plan, &ctx, &self.stats).plan,
            OptimizerMode::Greedy => {
                let a = opt.optimize_greedy(plan, &ctx, &self.stats);
                let b = opt.optimize_greedy(&plan.desugar(), &ctx, &self.stats);
                if b.cost < a.cost {
                    b.plan
                } else {
                    a.plan
                }
            }
        };
        apply_extent_indexes(&best, &self.stats)
    }

    /// [`Database::optimize_plan`] with a rewrite journal: the same
    /// mode-dispatched search, but every accepted rule firing is recorded
    /// — rule name, node path (memo steps carry the group id as their
    /// path), cost before/after — along with the plans-enumerated tally
    /// and any rewrites the soundness gate refused.  In memo mode the
    /// memo's group picture is retained for [`Database::last_memo`].  The
    /// final extent-index substitution phase is journaled (and gated)
    /// too, under the rule name `extent-index-substitution`.  The run is
    /// also folded into the session [`SessionMetrics`].
    pub fn optimize_plan_journaled(&mut self, plan: &Expr) -> (Expr, RewriteJournal) {
        let ctx = RuleCtx {
            registry: &self.registry,
            schemas: &self.catalog,
        };
        let opt = Optimizer::standard();
        let (best, mut journal) = match self.optimizer_mode {
            OptimizerMode::Memo => {
                let (best, run) = opt.optimize_memo_journaled(plan, &ctx, &self.stats);
                self.last_memo = Some(run.snapshot);
                (best.plan, run.journal)
            }
            OptimizerMode::Greedy => {
                let (a, ja) = opt.optimize_greedy_journaled(plan, &ctx, &self.stats);
                let (b, jb) = opt.optimize_greedy_journaled(&plan.desugar(), &ctx, &self.stats);
                if b.cost < a.cost {
                    (b.plan, jb)
                } else {
                    (a.plan, ja)
                }
            }
        };
        let best = apply_extent_indexes_journaled(&best, &self.stats, &ctx, &mut journal);
        self.metrics.record_journal(&journal);
        (best, journal)
    }

    /// Force a feedback-driven re-optimization of the most recent
    /// pipeline query: any recorded misestimation for its plan (q-error
    /// above 1) triggers the corrections.  What the `.reoptimize`
    /// dot-command runs.  Returns `None` when no plan has run, nothing
    /// was observed for it, or the database has never been analyzed.
    pub fn reoptimize_last(&mut self) -> Option<ReoptReport> {
        self.reoptimize_threshold(1.0)
    }

    /// Re-optimize the most recent pipeline query when its worst recorded
    /// q-error exceeds `threshold`: fold the offending observations back
    /// into the statistics (scan-shaped nodes snap the extent's row count
    /// to the observed cardinality via
    /// [`Statistics::observe_extent_rows`]; other nodes re-collect the
    /// extent from the stored data), re-run the mode-dispatched search
    /// and the lowering, and journal the whole re-derivation as one
    /// `reoptimize` step.  The automatic trigger — after every traced or
    /// `explain_analyze` query — uses [`Database::reopt_threshold`].
    fn reoptimize_threshold(&mut self, threshold: f64) -> Option<ReoptReport> {
        // Only in the analyzed regime: before the first `analyze` the
        // statistics are shape defaults, and "correcting" them would
        // churn plans mid-session without any collected baseline.
        if self.stats.objects.is_empty() {
            return None;
        }
        let (label, plan, plan_hash) = self.last_plan.clone()?;
        let mut trigger = 1.0f64;
        let mut fixes: Vec<(String, bool, f64)> = Vec::new();
        for e in self.telemetry.feedback.entries() {
            if e.plan_hash != plan_hash || e.max_q_error <= threshold {
                continue;
            }
            trigger = trigger.max(e.max_q_error);
            let Some(extent) = &e.extent else { continue };
            if fixes.iter().any(|(n, _, _)| n == extent) {
                continue;
            }
            fixes.push((extent.clone(), e.op.contains("Scan"), e.mean_actual()));
        }
        if fixes.is_empty() {
            return None;
        }
        let mut corrected = Vec::new();
        for (extent, is_scan, actual) in fixes {
            let before = self.stats.object(&extent).rows;
            if is_scan {
                self.stats.observe_extent_rows(&extent, actual);
            } else {
                collect_object_statistics(&self.catalog, &self.store, &extent, &mut self.stats);
            }
            let after = self.stats.object(&extent).rows;
            corrected.push((extent, before, after));
        }
        let cost_before = cost_of(&plan, &self.stats);
        let (new_plan, _inner) = self.optimize_plan_journaled(&plan);
        let (physical, _) = self.lower_plan_journaled(&new_plan);
        let cost_after = cost_of(&new_plan, &self.stats);
        let new_hash = plan_hash_of(&physical);
        // One `reoptimize` journal step for the re-derivation itself (the
        // inner optimize and lower recorded their own journals above).
        let journal = RewriteJournal {
            steps: vec![JournalStep {
                rule: REOPTIMIZE_RULE,
                path: Vec::new(),
                cost_before,
                cost_after,
                plan: new_plan.clone(),
            }],
            refused: Vec::new(),
            plans_enumerated: 1,
            max_plans: 0,
            initial_cost: cost_before,
            final_cost: cost_after,
        };
        self.metrics.record_journal(&journal);
        self.telemetry.registry.inc("reoptimize.triggered");
        self.telemetry.recorder.record(QueryRecord {
            query: format!("reoptimize({label})"),
            plan_hash: new_hash,
            engine: "reoptimize".to_string(),
            rows: 0,
            phase_us: Vec::new(),
            kernels: Vec::new(),
            est_rows: None,
            actual_rows: None,
        });
        self.last_plan = Some((label.clone(), new_plan.clone(), new_hash));
        let report = ReoptReport {
            label,
            trigger_q_error: trigger,
            threshold,
            corrected,
            cost_before,
            cost_after,
            plan_hash_before: plan_hash,
            plan_hash_after: new_hash,
            plan: new_plan,
        };
        self.last_reopt = Some(report.clone());
        Some(report)
    }

    /// Derive per-node plan properties (duplicate-freeness, candidate
    /// keys, nullability, cardinality bounds) against this database's
    /// stored data — the data-backed mode of
    /// `excess_core::analysis::analyze` (the verifier runs the same pass
    /// data-free).
    pub fn analyze_plan_props(&self, plan: &Expr) -> excess_core::analysis::Analysis {
        excess_core::analysis::analyze(plan, &self.catalog)
    }

    /// Apply every property-licensed rewrite provable against the stored
    /// data (drop DE/ARR_DE over proven duplicate-free inputs, prune
    /// proven-empty union/difference/concat branches), journaled under
    /// the rule name `property-licensed` and gated by the same rewrite-
    /// soundness check as the rule catalogue.  The journal is folded into
    /// the session [`SessionMetrics`].
    pub fn property_rewrites_journaled(&mut self, plan: &Expr) -> (Expr, RewriteJournal) {
        let ctx = RuleCtx {
            registry: &self.registry,
            schemas: &self.catalog,
        };
        let cost = cost_of(plan, &self.stats);
        let mut journal = RewriteJournal {
            steps: Vec::new(),
            refused: Vec::new(),
            plans_enumerated: 0,
            max_plans: 0,
            initial_cost: cost,
            final_cost: cost,
        };
        let out = excess_optimizer::apply_property_rewrites_journaled(
            plan,
            &self.catalog,
            &self.stats,
            &ctx,
            &mut journal,
        );
        self.metrics.record_journal(&journal);
        (out, journal)
    }

    /// Elide proven-redundant hash-join runtime guards on a lowered plan
    /// (see `excess_optimizer::elide_proven_guards`), counting each
    /// elision in the telemetry registry under `lowering.guard_elisions`.
    pub fn elide_plan_guards(
        &mut self,
        physical: &mut PhysicalPlan,
    ) -> Vec<(excess_core::profile::NodePath, String)> {
        let elided = elide_proven_guards(physical, &self.catalog);
        self.telemetry
            .registry
            .add("lowering.guard_elisions", elided.len() as u64);
        elided
    }

    /// Lower a logical plan to a physical plan under the session's
    /// statistics: per spine node, the kernel the engines will run —
    /// hash equi-join vs nested loop for `rel_join`, hash
    /// grouping/distinct, scans — with the reason for each choice.  The
    /// logical tree is carried unchanged; see
    /// `excess_core::physical` for the soundness story.
    pub fn lower_plan(&self, plan: &Expr) -> PhysicalPlan {
        lower(plan, &self.stats)
    }

    /// [`Database::lower_plan`] journaled like a rewrite: one accepted
    /// step under the rule name `physical-lowering` (logical cost before,
    /// physical cost after) plus one refused step per join that stayed a
    /// nested loop and why.  The journal is folded into the session
    /// [`SessionMetrics`], so lowering shows up in `rules_fired` next to
    /// the algebraic rules.
    pub fn lower_plan_journaled(&mut self, plan: &Expr) -> (PhysicalPlan, RewriteJournal) {
        let cost = cost_of(plan, &self.stats);
        let mut journal = RewriteJournal {
            steps: Vec::new(),
            refused: Vec::new(),
            plans_enumerated: 1,
            max_plans: 0,
            initial_cost: cost,
            final_cost: cost,
        };
        let pp = lower_journaled(plan, &self.stats, &mut journal);
        self.metrics.record_journal(&journal);
        (pp, journal)
    }

    /// Encode a column chunk for every base extent the plan scans whose
    /// value is a chunk-safe multiset (uniform flat tuples) and whose
    /// chunk is not already cached.  The nullability facts from
    /// `excess_core::analysis` drive the encoding: attributes the
    /// analysis proves present and free of both nulls are encoded without
    /// a validity bitmap.  Returns how many chunks were built; each build
    /// bumps the `columnar.chunks_built` telemetry counter.
    pub fn ensure_chunks_for(&mut self, plan: &Expr) -> usize {
        use std::collections::BTreeSet;
        fn named(e: &Expr, out: &mut BTreeSet<String>) {
            if let Expr::Named(n) = e {
                out.insert(n.clone());
            }
            for c in e.children() {
                named(c, out);
            }
        }
        let mut names = BTreeSet::new();
        named(plan, &mut names);
        let mut built = 0;
        for name in names {
            if self.catalog.chunk(&name).is_some() {
                continue;
            }
            let Some(Value::Set(set)) = self.catalog.value(&name) else {
                continue;
            };
            // Measured nullability at the extent: attributes proven
            // present and null-free skip their validity bitmaps.
            let analysis = excess_core::analysis::analyze(&Expr::named(&name), &self.catalog);
            let non_null: BTreeSet<String> = analysis
                .props_at(&[])
                .map(|p| {
                    p.attrs
                        .iter()
                        .filter(|(_, ap)| ap.is_definite_key())
                        .map(|(n, _)| n.clone())
                        .collect()
                })
                .unwrap_or_default();
            if let Some(chunk) = excess_types::Chunk::encode(set, &non_null) {
                self.catalog.set_chunk(&name, chunk);
                self.telemetry.registry.inc("columnar.chunks_built");
                built += 1;
            }
        }
        built
    }

    /// [`Database::lower_plan_journaled`] plus the columnar annotation
    /// pass: referenced extents are chunk-encoded
    /// ([`Database::ensure_chunks_for`]), chunk-safe kernel choices are
    /// upgraded to their `Columnar*` variants, and the journal gains one
    /// accepted step under `columnar-lowering` (when anything upgraded)
    /// plus one refused step per candidate that had to keep its row
    /// kernel and why.
    pub fn lower_plan_columnar(&mut self, plan: &Expr) -> (PhysicalPlan, RewriteJournal) {
        let (mut pp, mut journal) = self.lower_plan_journaled(plan);
        self.ensure_chunks_for(plan);
        let before = journal.final_cost;
        let (accepted, refused) = annotate_columnar(&mut pp, &self.catalog);
        let mut delta = RewriteJournal {
            steps: Vec::new(),
            refused,
            plans_enumerated: 0,
            max_plans: 0,
            initial_cost: before,
            final_cost: before,
        };
        if !accepted.is_empty() {
            let after = estimate_physical(&pp, &self.stats).cost;
            delta.steps.push(JournalStep {
                rule: COLUMNAR_RULE,
                path: Vec::new(),
                cost_before: before,
                cost_after: after,
                plan: plan.clone(),
            });
            delta.final_cost = after;
        }
        // Only the columnar delta is folded into the session metrics —
        // `lower_plan_journaled` already recorded the lowering journal.
        self.metrics.record_journal(&delta);
        journal.steps.extend(delta.steps);
        journal.refused.extend(delta.refused);
        journal.final_cost = delta.final_cost;
        (pp, journal)
    }

    /// Run a programmatically built plan through the full query pipeline —
    /// optimize (when enabled) → lower → execute on the session's engine —
    /// with telemetry: counters and latency histograms are updated, the
    /// flight recorder gets a [`QueryRecord`] labelled `label`, and, when
    /// spans are enabled, a full [`QueryTrace`] is assembled.  This is the
    /// telemetry-covered entry point for benchmark figures and tests that
    /// construct algebra plans directly instead of going through `execute`.
    pub fn run_query_plan(&mut self, label: &str, plan: &Expr) -> DbResult<Value> {
        self.run_pipeline(label, plan, &[])
    }

    /// The shared query pipeline behind `retrieve` statements and
    /// [`Database::run_query_plan`].  `pre_phases` carries already-timed
    /// phases (parse, translate) that happened before this call.
    fn run_pipeline(
        &mut self,
        label: &str,
        plan: &Expr,
        pre_phases: &[(&'static str, u64)],
    ) -> DbResult<Value> {
        let spans = self.telemetry.spans_enabled;
        // The trace timeline starts at the first pre-phase: pre-phase
        // spans occupy [0, base) and everything timed here is offset by
        // `base`.
        let base: u64 = pre_phases.iter().map(|(_, us)| us).sum();
        let origin = Instant::now();
        let mut phases: Vec<(&'static str, u64)> = pre_phases.to_vec();
        let mut phase_spans: Vec<Span> = Vec::new();
        if spans {
            let mut cursor = 0u64;
            for (name, us) in pre_phases {
                phase_spans.push(Span::new(*name, "phase", cursor, *us));
                cursor += us;
            }
        }

        // Infer + verify phases run only under spans: the statement path
        // has already inferred during translation, and the parallel engine
        // re-verifies on its own — these spans exist to show the layers,
        // not to gate execution.
        if spans {
            let t0 = base + origin.elapsed().as_micros() as u64;
            let inferred = self.infer_schema(plan);
            let dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(t0);
            phases.push(("infer", dur));
            let mut s = Span::new("infer", "phase", t0, dur);
            if let Ok(ty) = &inferred {
                s = s.with_meta("schema", ty.to_string());
            }
            phase_spans.push(s);

            let t0 = base + origin.elapsed().as_micros() as u64;
            let report = self.verify_plan(plan);
            let dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(t0);
            phases.push(("verify", dur));
            phase_spans.push(
                Span::new("verify", "phase", t0, dur)
                    .with_num("errors", report.error_count() as u64)
                    .with_num("lints", report.lint_count() as u64),
            );
        }

        // Optimize (journaled), with one child span per accepted and
        // refused rewrite.
        let plan = if self.optimize {
            let t0 = base + origin.elapsed().as_micros() as u64;
            let (optimized, journal) = self.optimize_plan_journaled(plan);
            let dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(t0);
            phases.push(("optimize", dur));
            if spans {
                let mut s = Span::new("optimize", "phase", t0, dur)
                    .with_num("plans_enumerated", journal.plans_enumerated as u64)
                    .with_num("rewrites_applied", journal.steps.len() as u64)
                    .with_num("rewrites_refused", journal.refused.len() as u64);
                for step in &journal.steps {
                    s.children.push(
                        Span::new(format!("rewrite:{}", step.rule), "rewrite", t0, 0)
                            .with_meta("path", excess_core::profile::path_string(&step.path))
                            .with_meta("cost_before", format!("{:.0}", step.cost_before))
                            .with_meta("cost_after", format!("{:.0}", step.cost_after)),
                    );
                }
                for refused in &journal.refused {
                    s.children.push(
                        Span::new(format!("refused:{}", refused.rule), "rewrite", t0, 0)
                            .with_meta("path", excess_core::profile::path_string(&refused.path))
                            .with_meta("reason", refused.reason.clone()),
                    );
                }
                phase_spans.push(s);
            }
            optimized
        } else {
            plan.clone()
        };

        // Property-licensed rewrites (opt-in): simplifications licensed
        // by proofs from the stored data rather than cost estimates.
        let plan = if self.property_rewrites {
            let t0 = base + origin.elapsed().as_micros() as u64;
            let (rewritten, journal) = self.property_rewrites_journaled(&plan);
            let dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(t0);
            phases.push(("properties", dur));
            if spans {
                let mut s = Span::new("properties", "phase", t0, dur)
                    .with_num("rewrites_applied", journal.steps.len() as u64)
                    .with_num("rewrites_refused", journal.refused.len() as u64);
                for step in &journal.steps {
                    s.children.push(
                        Span::new(format!("rewrite:{}", step.rule), "rewrite", t0, 0)
                            .with_meta("path", excess_core::profile::path_string(&step.path)),
                    );
                }
                phase_spans.push(s);
            }
            rewritten
        } else {
            plan
        };

        // Lower (journaled), with one child span per exercised kernel
        // choice.
        let t0 = base + origin.elapsed().as_micros() as u64;
        let (mut physical, _) = if self.columnar {
            self.lower_plan_columnar(&plan)
        } else {
            self.lower_plan_journaled(&plan)
        };
        if self.property_rewrites {
            // Guard elision: substitute the analysis's proofs for the
            // hash kernel's per-occurrence key checks, counted under
            // `lowering.guard_elisions` in the telemetry registry.
            let _ = self.elide_plan_guards(&mut physical);
        }
        let dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(t0);
        phases.push(("lower", dur));
        if spans {
            let mut s = Span::new("lower", "phase", t0, dur);
            for (path, choice) in &physical.choices {
                if matches!(choice.op, excess_core::physical::PhysOp::PassThrough) {
                    continue;
                }
                let mut child = Span::new(
                    format!(
                        "choose:{} {}",
                        excess_core::profile::path_string(path),
                        choice.op
                    ),
                    "lower",
                    t0,
                    0,
                )
                .with_meta("why", choice.why.clone());
                if let Some(est) = choice.est_rows {
                    child = child.with_meta("est_rows", format!("{est:.0}"));
                }
                s.children.push(child);
            }
            phase_spans.push(s);
        }
        let plan_hash = plan_hash_of(&physical);
        self.last_plan = Some((label.to_string(), plan.clone(), plan_hash));

        // Execute: profiled when spans are on (the profile becomes the
        // operator span subtree and feeds the misestimation log).
        let exec_start = base + origin.elapsed().as_micros() as u64;
        let parallel = self.exec.is_parallel();
        let (value, profile) = if parallel {
            let tracing = if spans {
                Tracing::Precise
            } else {
                Tracing::Off
            };
            self.run_plan_physical_parallel_traced(&physical, tracing)?
        } else if spans {
            let (v, p) = self.run_plan_physical_profiled(&physical)?;
            (v, Some(p))
        } else {
            (self.run_plan_physical(&physical)?, None)
        };
        let exec_dur = (base + origin.elapsed().as_micros() as u64).saturating_sub(exec_start);
        phases.push(("execute", exec_dur));

        let engine = if parallel {
            format!("parallel({})", self.exec.workers)
        } else {
            "serial".to_string()
        };
        let rows = value_rows(&value);

        // Always-on: registry counters + histograms + flight recorder.
        let total_us: u64 = phases.iter().map(|(_, us)| us).sum();
        self.telemetry.registry.inc("queries");
        self.telemetry.registry.inc(if parallel {
            "queries.parallel"
        } else {
            "queries.serial"
        });
        self.telemetry.registry.observe("query_us", total_us);
        for (name, us) in &phases {
            self.telemetry
                .registry
                .observe(&format!("phase.{name}_us"), *us);
        }
        for (name, v) in self.last_counters.named_fields() {
            self.telemetry.registry.add(&format!("work.{name}"), v);
        }
        let kernels: Vec<(String, String)> = physical
            .choices
            .iter()
            .filter(|(_, c)| !matches!(c.op, excess_core::physical::PhysOp::PassThrough))
            .map(|(path, c)| (excess_core::profile::path_string(path), c.op.to_string()))
            .collect();
        let root_est = physical.choices.get(&Vec::new()).and_then(|c| c.est_rows);
        self.telemetry.recorder.record(QueryRecord {
            query: label.to_string(),
            plan_hash,
            engine: engine.clone(),
            rows,
            phase_us: phases.clone(),
            kernels,
            est_rows: root_est,
            actual_rows: Some(rows),
        });

        // Opt-in: feedback observations and the assembled span tree.
        if spans {
            if let Some(profile) = &profile {
                for (path, choice) in &physical.choices {
                    let (Some(est), Some(node)) = (choice.est_rows, profile.node(path)) else {
                        continue;
                    };
                    self.telemetry.feedback.observe(
                        plan_hash,
                        &excess_core::profile::path_string(path),
                        &choice.op.to_string(),
                        extent_at(&plan, path).as_deref(),
                        est,
                        node.rows_out as f64,
                    );
                }
                let mut exec_span = Span::new("execute", "phase", exec_start, exec_dur)
                    .with_meta("engine", engine.clone())
                    .with_num("rows", rows);
                if let Some(report) = &self.last_exec_report {
                    if parallel {
                        for w in &report.worker_stats {
                            exec_span.children.push(
                                Span::new(
                                    format!("worker:{}", w.worker),
                                    "worker",
                                    exec_start + w.started.as_micros() as u64,
                                    w.finished.saturating_sub(w.started).as_micros() as u64,
                                )
                                .on_lane(w.worker as u32 + 1)
                                .with_num("tasks", w.tasks)
                                .with_num("occurrences", w.occurrences)
                                .with_num("busy_us", w.busy.as_micros() as u64),
                            );
                        }
                    }
                }
                exec_span
                    .children
                    .extend(profile_spans(profile, exec_start));
                phase_spans.push(exec_span);
            }
            let mut root =
                Span::new("query", "phase", 0, total_us).with_meta("engine", engine.clone());
            root.children = phase_spans;
            self.telemetry.last_trace = Some(QueryTrace {
                query: label.to_string(),
                engine,
                plan_hash,
                root,
            });
            // With fresh observations in hand, re-derive the plan when
            // its recorded q-error crossed the session threshold.
            let threshold = self.reopt_threshold;
            let _ = self.reoptimize_threshold(threshold);
        }

        Ok(value)
    }

    /// Statically verify a plan against this database's catalog and type
    /// registry: every diagnostic (errors *and* lints), each with the node
    /// path it was found at.  See `excess_core::verify` for the taxonomy.
    pub fn verify_plan(&self, plan: &Expr) -> Report {
        excess_core::verify::verify(plan, &self.catalog, &self.registry)
    }

    /// Garbage-sweep the object store: every object unreachable from the
    /// named top-level objects is removed.  Returns how many objects were
    /// collected.  (Queries that mint temporaries with `mkref` and then
    /// discard them leave such garbage behind.)
    pub fn sweep(&mut self) -> usize {
        let roots: Vec<Value> = self
            .catalog
            .names()
            .filter_map(|n| self.catalog.value(n).cloned())
            .collect();
        self.store.sweep_unreachable(roots.iter())
    }

    /// Dump the schema as EXTRA DDL: every `define type` (in definition
    /// order, so `inherits` references resolve) and every `create`.
    /// Feeding the dump to a fresh database reproduces the catalog shape
    /// (data is not dumped — OIDs have no surface form).
    pub fn dump_schema(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for id in self.registry.all_ids() {
            let def = self.registry.def(id);
            let _ = write!(
                out,
                "define type {}: {}",
                def.name,
                excess_lang::ddl::type_to_surface(&def.body)
            );
            if !def.supertypes.is_empty() {
                let sups: Vec<&str> = def
                    .supertypes
                    .iter()
                    .map(|s| self.registry.name_of(*s))
                    .collect();
                let _ = write!(out, " inherits {}", sups.join(", "));
            }
            out.push('\n');
        }
        let mut names: Vec<&str> = self.catalog.names().collect();
        names.sort_unstable();
        for n in names {
            if let Some(s) = self.catalog.schema(n) {
                let _ = writeln!(out, "create {n}: {}", excess_lang::ddl::type_to_surface(s));
            }
        }
        out
    }

    /// Infer the output schema of a plan against this database's catalog
    /// and type registry (closure property of the algebra, Section 3).
    pub fn infer_schema(&self, plan: &Expr) -> DbResult<SchemaType> {
        Ok(excess_core::infer::infer_closed(
            plan,
            &self.catalog,
            &self.registry,
        )?)
    }

    /// EXPLAIN: the plan as an operator tree plus the cost model's
    /// estimates (the paper's Section 6 "reading" of a plan).  When the
    /// verifier has anything to say about the plan — errors or lints — a
    /// `diagnostics:` section follows the estimates; clean plans render
    /// exactly as before.
    pub fn explain(&self, plan: &Expr) -> String {
        let mut env = Vec::new();
        let est = excess_optimizer::estimate(plan, &mut env, &self.stats);
        let mut out = format!(
            "{}est. cost {:.0}, est. rows {:.0}\n",
            excess_core::render::render_tree(plan),
            est.cost,
            est.rows
        );
        let pp = self.lower_plan(plan);
        let phys = estimate_physical(&pp, &self.stats);
        out.push_str(&format!("physical plan (est. cost {:.0}):\n", phys.cost));
        out.push_str(&pp.render());
        out.push_str(&render_diagnostics(&self.verify_plan(plan)));
        out
    }

    /// Evaluate a plan against the database, recording work counters.
    pub fn run_plan(&mut self, plan: &Expr) -> DbResult<Value> {
        let started = Instant::now();
        let (out, counters) = {
            let mut ctx = EvalCtx::new(&self.registry, &mut self.store, &self.catalog);
            (evaluate(plan, &mut ctx), ctx.counters)
        };
        self.last_counters = counters;
        self.metrics.record_query(counters, started.elapsed());
        Ok(out?)
    }

    /// Evaluate a lowered plan with the serial engine's physical
    /// interpreter: hash kernels run where the plan chose them (subject
    /// to the kernel's own runtime guard), everything else evaluates
    /// exactly as [`Database::run_plan`].  Counters and session metrics
    /// are recorded identically.
    pub fn run_plan_physical(&mut self, plan: &PhysicalPlan) -> DbResult<Value> {
        let started = Instant::now();
        let (out, counters) = {
            let mut ctx = EvalCtx::new(&self.registry, &mut self.store, &self.catalog);
            (evaluate_physical(plan, &mut ctx), ctx.counters)
        };
        self.last_counters = counters;
        self.metrics.record_query(counters, started.elapsed());
        Ok(out?)
    }

    /// [`Database::run_plan_physical`] with per-operator profiling.
    pub fn run_plan_physical_profiled(
        &mut self,
        plan: &PhysicalPlan,
    ) -> DbResult<(Value, Profile)> {
        let started = Instant::now();
        let (out, counters, profile) = {
            let mut ctx = EvalCtx::new(&self.registry, &mut self.store, &self.catalog);
            ctx.enable_tracing();
            let out = evaluate_physical(plan, &mut ctx);
            let profile = ctx.take_profile().expect("tracing was enabled above");
            (out, ctx.counters, profile)
        };
        self.last_counters = counters;
        self.metrics.record_query(counters, started.elapsed());
        Ok((out?, profile))
    }

    /// Evaluate a lowered plan with the partition-parallel engine: the
    /// driver partitions according to the plan's kernel choices instead
    /// of re-deriving strategies, and workers run the same hash kernels
    /// as fragment bodies.  Accounting matches
    /// [`Database::run_plan_parallel`].
    pub fn run_plan_physical_parallel(&mut self, plan: &PhysicalPlan) -> DbResult<Value> {
        self.run_plan_physical_parallel_traced(plan, Tracing::Off)
            .map(|(v, _)| v)
    }

    fn run_plan_physical_parallel_traced(
        &mut self,
        plan: &PhysicalPlan,
        tracing: Tracing,
    ) -> DbResult<(Value, Option<Profile>)> {
        let started = Instant::now();
        let out = run_parallel_plan(
            plan,
            &self.registry,
            &mut self.store,
            &self.catalog,
            Some(&self.catalog),
            self.exec,
            tracing,
        );
        let wall = started.elapsed();
        let out = out?;
        self.last_counters = out.counters;
        let effective_workers = if out.report.worker_stats.is_empty() {
            1
        } else {
            out.report.workers
        };
        self.metrics
            .record_query_mode(out.counters, wall, effective_workers);
        self.last_exec_report = Some(out.report);
        Ok((out.value, out.profile))
    }

    /// Evaluate a plan with the partition-parallel engine under the
    /// session's [`ExecConfig`] (see [`Database::set_threads`]).  The
    /// result is `canon`-identical to [`Database::run_plan`]; counters,
    /// session metrics, and the execution journal
    /// ([`Database::last_exec_report`]) are recorded.  Plans that fail
    /// verification, mint OIDs, or run under one worker fall back to
    /// serial evaluation with a journaled reason.
    pub fn run_plan_parallel(&mut self, plan: &Expr) -> DbResult<Value> {
        self.run_plan_parallel_traced(plan, Tracing::Off)
            .map(|(v, _)| v)
    }

    /// [`Database::run_plan_parallel`] returning the execution journal
    /// alongside the value.
    pub fn run_plan_parallel_report(&mut self, plan: &Expr) -> DbResult<(Value, ExecReport)> {
        let v = self.run_plan_parallel(plan)?;
        let report = self
            .last_exec_report
            .clone()
            .expect("run_plan_parallel records a report");
        Ok((v, report))
    }

    /// [`Database::run_plan_parallel`] with per-operator profiling: the
    /// merged profile spans the driver and every worker (fragment-local
    /// paths), and its self-counter sum telescopes to the query totals
    /// exactly as in serial profiling.
    pub fn run_plan_parallel_profiled(&mut self, plan: &Expr) -> DbResult<(Value, Profile)> {
        self.run_plan_parallel_traced(plan, Tracing::Precise)
            .map(|(v, p)| (v, p.expect("tracing was enabled")))
    }

    /// [`Database::run_plan_parallel_profiled`] with coarse timestamps
    /// (one clock sample per traced node — see
    /// [`EvalCtx::enable_coarse_tracing`]).
    pub fn run_plan_parallel_profiled_coarse(&mut self, plan: &Expr) -> DbResult<(Value, Profile)> {
        self.run_plan_parallel_traced(plan, Tracing::Coarse)
            .map(|(v, p)| (v, p.expect("tracing was enabled")))
    }

    fn run_plan_parallel_traced(
        &mut self,
        plan: &Expr,
        tracing: Tracing,
    ) -> DbResult<(Value, Option<Profile>)> {
        let started = Instant::now();
        let out = run_parallel(
            plan,
            &self.registry,
            &mut self.store,
            &self.catalog,
            Some(&self.catalog),
            self.exec,
            tracing,
        );
        let wall = started.elapsed();
        let out = out?;
        self.last_counters = out.counters;
        // A whole-plan serial fallback is accounted as a serial query.
        let effective_workers = if out.report.worker_stats.is_empty() {
            1
        } else {
            out.report.workers
        };
        self.metrics
            .record_query_mode(out.counters, wall, effective_workers);
        self.last_exec_report = Some(out.report);
        Ok((out.value, out.profile))
    }

    /// Evaluate a plan with per-operator profiling enabled; returns the
    /// result together with the execution [`Profile`].  Work counters and
    /// session metrics are recorded exactly as by [`Database::run_plan`]
    /// (profiling changes neither results nor counters).
    pub fn run_plan_profiled(&mut self, plan: &Expr) -> DbResult<(Value, Profile)> {
        self.run_plan_traced(plan, false)
    }

    /// [`Database::run_plan_profiled`] with coarse timestamps: one clock
    /// sample per traced node invocation instead of two (see
    /// [`EvalCtx::enable_coarse_tracing`]), for deep plans where the
    /// profiler's own clock reads would dominate.
    pub fn run_plan_profiled_coarse(&mut self, plan: &Expr) -> DbResult<(Value, Profile)> {
        self.run_plan_traced(plan, true)
    }

    fn run_plan_traced(&mut self, plan: &Expr, coarse: bool) -> DbResult<(Value, Profile)> {
        let started = Instant::now();
        let (out, counters, profile) = {
            let mut ctx = EvalCtx::new(&self.registry, &mut self.store, &self.catalog);
            if coarse {
                ctx.enable_coarse_tracing();
            } else {
                ctx.enable_tracing();
            }
            let out = evaluate(plan, &mut ctx);
            let profile = ctx.take_profile().expect("tracing was enabled above");
            (out, ctx.counters, profile)
        };
        self.last_counters = counters;
        self.metrics.record_query(counters, started.elapsed());
        Ok((out?, profile))
    }

    /// EXPLAIN ANALYZE: execute the plan with profiling and render the
    /// operator tree annotated with per-node actuals (calls, rows in→out,
    /// self counters, ms and share of the query) next to the cost model's
    /// static per-node estimates.
    /// Under a parallel [`ExecConfig`] the plan runs through the
    /// partition engine instead and a `parallel execution:` section
    /// (workers, occurrence skew, per-node strategy journal, per-worker
    /// accounting) is appended.  Per-node actuals then reflect the
    /// partition-local fragment plans merged by path, which align with
    /// the original tree only approximately — the appended section is the
    /// authoritative record of what ran where.
    pub fn explain_analyze(&mut self, plan: &Expr) -> DbResult<String> {
        let estimates = excess_optimizer::estimate_nodes(plan, &self.stats);
        let physical = self.lower_plan(plan);
        let (profile, report) = if self.exec.is_parallel() {
            let (_, profile) =
                self.run_plan_physical_parallel_traced(&physical, Tracing::Precise)?;
            (
                profile.expect("tracing was enabled"),
                self.last_exec_report.clone(),
            )
        } else {
            let (_, profile) = self.run_plan_physical_profiled(&physical)?;
            (profile, None)
        };
        // Every analyze feeds the misestimation log: per lowered node with
        // an estimate and a measured profile entry, est vs actual rows.
        let plan_hash = plan_hash_of(&physical);
        self.last_plan = Some(("explain_analyze".to_string(), plan.clone(), plan_hash));
        for (path, choice) in &physical.choices {
            let (Some(est), Some(node)) = (choice.est_rows, profile.node(path)) else {
                continue;
            };
            self.telemetry.feedback.observe(
                plan_hash,
                &excess_core::profile::path_string(path),
                &choice.op.to_string(),
                extent_at(plan, path).as_deref(),
                est,
                node.rows_out as f64,
            );
        }
        let mut out = crate::explain::render_explain_analyze(plan, &profile, &estimates);
        // The kernel block slots in above the `total:` footer so the
        // footer stays the render's last line.
        let phys = render_physical_choices(&physical, &profile);
        if !phys.is_empty() {
            match out.rfind("\ntotal: ") {
                Some(pos) => out.insert_str(pos + 1, &phys),
                None => out.push_str(&phys),
            }
        }
        if let Some(report) = report {
            out.push_str(&crate::explain::render_parallel_execution(&report));
        }
        out.push_str(&render_diagnostics(&self.verify_plan(plan)));
        // Close the loop: a q-error past the session threshold re-derives
        // the plan right here, and the correction becomes part of the
        // explain output.
        let threshold = self.reopt_threshold;
        if let Some(reopt) = self.reoptimize_threshold(threshold) {
            out.push_str(&reopt.render());
        }
        Ok(out)
    }

    // ----- statistics & extent indexes -----

    /// Recompute statistics from the current data (cardinalities,
    /// duplication, per-attribute NDVs, nested sizes, exact-type
    /// fractions).
    pub fn collect_stats(&mut self) {
        let extents = std::mem::take(&mut self.stats.extent_indexes);
        self.stats = collect_statistics(&self.catalog, &self.registry, &self.store);
        self.stats.extent_indexes = extents;
    }

    /// ANALYZE: recollect statistics from the store and return them — the
    /// entry point that makes the optimizer's Figure 6→8 derivation run
    /// from measured duplication rather than defaults (the paper's
    /// Section 6 "useful statistics" made operational).
    pub fn analyze(&mut self) -> &Statistics {
        self.collect_stats();
        &self.stats
    }

    /// Declare (and materialise) a per-exact-type extent index on a
    /// top-level set — the Section 4 index that makes the ⊎ plan scan-free.
    pub fn create_extent_index(&mut self, object: &str, ty: &str) -> DbResult<()> {
        self.registry.lookup(ty)?;
        if !self.catalog.contains(object) {
            return Err(DbError::Other(format!("unknown object `{object}`")));
        }
        self.stats.add_extent_index(object, ty);
        self.rebuild_extents_for(object);
        Ok(())
    }

    fn rebuild_extents_for(&mut self, object: &str) {
        let pairs: Vec<(String, String)> = self
            .stats
            .extent_indexes
            .iter()
            .filter(|(o, _)| o == object)
            .cloned()
            .collect();
        for (obj, ty) in pairs {
            let Some(base) = self.catalog.value(&obj).cloned() else {
                continue;
            };
            let Some(set) = base.as_set() else { continue };
            let Ok(want) = self.registry.lookup(&ty) else {
                continue;
            };
            let mut extent = excess_types::MultiSet::new();
            for (elem, card) in set.iter_counted() {
                if self.exact_type_of(elem) == Some(want) {
                    extent.insert_n(elem.clone(), card);
                }
            }
            let elem_schema = SchemaType::named(ty.clone());
            self.catalog.put(
                &format!("{obj}::exact::{ty}"),
                SchemaType::set(elem_schema),
                Value::Set(extent),
            );
        }
        self.refresh_stats_for(object);
    }

    /// Incrementally refresh the statistics for one object (and its
    /// materialised per-type extents) after a mutation — the per-object
    /// alternative to a full [`Database::collect_stats`] sweep, active
    /// only once the database has been analyzed (before that the
    /// statistics are shape defaults and there is no baseline to keep
    /// current).
    pub fn refresh_stats_for(&mut self, object: &str) {
        if self.stats.objects.is_empty() {
            return;
        }
        let derived_prefix = format!("{object}::exact::");
        let mut names = vec![object.to_string()];
        names.extend(
            self.stats
                .objects
                .keys()
                .filter(|n| n.starts_with(&derived_prefix))
                .cloned(),
        );
        for name in names {
            collect_object_statistics(&self.catalog, &self.store, &name, &mut self.stats);
        }
    }

    /// Exact (most specific) type of a value (store lookup for refs,
    /// shape match for tuples).
    pub fn exact_type_of(&self, v: &Value) -> Option<TypeId> {
        excess_core::eval::exact_type_of_parts(v, &self.registry, &self.store)
    }

    // ----- updates -----

    fn eval_standalone(&mut self, q: &QExpr) -> DbResult<(Value, SchemaType)> {
        // A zero-variable retrieve denotes the bare expression value.
        let r = Retrieve {
            unique: false,
            targets: vec![excess_lang::ast::Target {
                label: None,
                expr: q.clone(),
            }],
            from: vec![],
            filter: None,
            by: None,
            into: None,
        };
        let (plan, ty) = self.translate(&r)?;
        let v = self.run_plan(&plan)?;
        Ok((v, ty))
    }

    /// Coerce a value into an element slot: when the slot is `ref T` and
    /// the value is not already a reference, create an object of `T` and
    /// reference it (the convenient EXTRA idiom for populating `{ ref T }`
    /// sets).
    fn coerce_element(&mut self, elem_ty: &SchemaType, v: Value) -> DbResult<Value> {
        if let SchemaType::Ref(t) = elem_ty {
            if !matches!(v, Value::Ref(_)) && !v.is_null() {
                let ty = self.registry.lookup(t)?;
                let oid = self.store.create(&self.registry, ty, v)?;
                return Ok(Value::Ref(oid));
            }
        }
        excess_types::domain::check_dom(&v, elem_ty, &self.registry)?;
        Ok(v)
    }

    fn append(&mut self, target: &str, value: &QExpr) -> DbResult<Value> {
        let schema = self
            .catalog
            .schema(target)
            .cloned()
            .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
        let (v, _) = self.eval_standalone(value)?;
        match schema {
            SchemaType::Set(elem) => {
                let v = self.coerce_element(&elem, v)?;
                let cur = self
                    .catalog
                    .value_mut(target)
                    .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
                match cur {
                    Value::Set(s) => s.insert(v),
                    other => {
                        return Err(DbError::Other(format!(
                            "object `{target}` is not a multiset (found {})",
                            other.kind_name()
                        )))
                    }
                }
            }
            SchemaType::Arr { elem, len } => {
                if len.is_some() {
                    return Err(DbError::Other(format!(
                        "`{target}` is a fixed-length array; use `assign {target}[i] (…)`"
                    )));
                }
                let v = self.coerce_element(&elem, v)?;
                let cur = self
                    .catalog
                    .value_mut(target)
                    .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
                match cur {
                    Value::Array(a) => a.push(v),
                    other => {
                        return Err(DbError::Other(format!(
                            "object `{target}` is not an array (found {})",
                            other.kind_name()
                        )))
                    }
                }
            }
            other => {
                return Err(DbError::Other(format!(
                    "cannot append to `{target}` of type {other}"
                )))
            }
        }
        self.rebuild_extents_for(target);
        Ok(Value::bool(true))
    }

    fn delete(&mut self, target: &str, filter: &QPred) -> DbResult<Value> {
        if !self.catalog.contains(target) {
            return Err(DbError::Other(format!("unknown object `{target}`")));
        }
        // Rewrite references to the target (by its own name, or through a
        // `range of` alias) into the deletion variable, then keep the
        // complement.
        let var = "$del".to_string();
        let rewritten = rewrite_pred(filter, target, &self.ranges, &var);
        let survivors = Retrieve {
            unique: false,
            targets: vec![excess_lang::ast::Target {
                label: None,
                expr: QExpr::Var(var.clone()),
            }],
            from: vec![(var, QExpr::Var(target.to_string()))],
            filter: Some(QPred::Not(Box::new(rewritten))),
            by: None,
            into: None,
        };
        let (plan, _) = self.translate(&survivors)?;
        let v = self.run_plan(&plan)?;
        let slot = self
            .catalog
            .value_mut(target)
            .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
        *slot = v;
        self.rebuild_extents_for(target);
        Ok(Value::bool(true))
    }

    /// Execute a stored procedure: substitute the actual arguments for the
    /// formals across the body, then run the statements in order.  The
    /// value of the last statement is returned (like `execute`).
    fn call_procedure(&mut self, name: &str, args: &[QExpr]) -> DbResult<Value> {
        let proc = self
            .procedures
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::Other(format!("unknown procedure `{name}`")))?;
        if args.len() != proc.params.len() {
            return Err(DbError::Other(format!(
                "procedure `{name}` takes {} arguments, {} given",
                proc.params.len(),
                args.len()
            )));
        }
        // Arguments are evaluated once, eagerly, and injected as literal
        // values where possible; non-literal results (sets, tuples) are
        // also values, so this is call-by-value.
        let mut bindings: HashMap<String, QExpr> = HashMap::new();
        for ((pname, pty), actual) in proc.params.iter().zip(args) {
            let (v, _) = self.eval_standalone(actual)?;
            excess_types::domain::check_dom(&v, pty, &self.registry)
                .map_err(|e| DbError::Other(format!("argument `{pname}` of `{name}`: {e}")))?;
            bindings.insert(pname.clone(), value_to_qexpr(&v)?);
        }
        let mut last = Value::bool(true);
        for stmt in &proc.body {
            let expanded = excess_lang::subst::subst_stmt(stmt, &bindings);
            last = self.run_stmt(&expanded)?;
        }
        Ok(last)
    }

    /// `replace X (f: e, …) where P`: update the listed fields of every
    /// qualifying element.  For `{ ref T }` sets the referenced objects
    /// are updated **in place** — identity preserved, so sharers observe
    /// the change; for by-value sets the multiset is rebuilt.
    fn replace(
        &mut self,
        target: &str,
        fields: &[(String, QExpr)],
        filter: Option<&QPred>,
    ) -> DbResult<Value> {
        let schema = self
            .catalog
            .schema(target)
            .cloned()
            .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
        let SchemaType::Set(elem_schema) = schema else {
            return Err(DbError::Other(format!("`{target}` is not a multiset")));
        };
        let is_ref = matches!(*elem_schema, SchemaType::Ref(_));

        // One query computes, per qualifying element, the old value and
        // the new field values: references to the element inside the
        // update expressions and the predicate go through the same
        // rewriting as `delete`.
        let var = "$upd".to_string();
        let mut targets = vec![excess_lang::ast::Target {
            label: Some("$old".into()),
            expr: QExpr::Var(var.clone()),
        }];
        for (f, e) in fields {
            targets.push(excess_lang::ast::Target {
                label: Some(format!("$new${f}")),
                expr: rewrite_expr(e, target, &self.ranges, &var),
            });
        }
        let pairs = Retrieve {
            unique: false,
            targets,
            from: vec![(var.clone(), QExpr::Var(target.to_string()))],
            filter: filter.map(|p| rewrite_pred(p, target, &self.ranges, &var)),
            by: None,
            into: None,
        };
        let (plan, _) = self.translate(&pairs)?;
        let rows = self.run_plan(&plan)?;
        let Value::Set(rows) = rows else {
            return Err(DbError::Other(
                "replace query did not yield a multiset".into(),
            ));
        };

        if is_ref {
            for (row, _) in rows.iter_counted() {
                let t = row
                    .as_tuple()
                    .ok_or_else(|| DbError::Other("replace row is not a tuple".into()))?;
                let Some(oid) = t.get("$old").and_then(Value::as_ref_oid) else {
                    continue; // dne slot
                };
                let mut obj_fields = match self.store.deref(oid)?.clone() {
                    Value::Tuple(obj) => obj.into_fields(),
                    other => {
                        return Err(DbError::Other(format!(
                            "referenced element is not a tuple (found {})",
                            other.kind_name()
                        )))
                    }
                };
                apply_updates(&mut obj_fields, fields, t)?;
                self.store.update(
                    &self.registry,
                    oid,
                    Value::Tuple(excess_types::Tuple::from_fields(obj_fields)),
                )?;
            }
        } else {
            let mut set = match self.catalog.value(target) {
                Some(Value::Set(s)) => s.clone(),
                _ => return Err(DbError::Other(format!("`{target}` is not a multiset"))),
            };
            for (row, card) in rows.iter_counted() {
                let t = row
                    .as_tuple()
                    .ok_or_else(|| DbError::Other("replace row is not a tuple".into()))?;
                let old = t.extract("$old")?.clone();
                let mut elem_fields = match old.clone() {
                    Value::Tuple(e) => e.into_fields(),
                    other => {
                        return Err(DbError::Other(format!(
                            "replace needs tuple elements (found {})",
                            other.kind_name()
                        )))
                    }
                };
                apply_updates(&mut elem_fields, fields, t)?;
                let updated = Value::Tuple(excess_types::Tuple::from_fields(elem_fields));
                excess_types::domain::check_dom(&updated, &elem_schema, &self.registry)?;
                // Move `card` occurrences from old to updated.
                let mut remove = excess_types::MultiSet::new();
                remove.insert_n(old, card);
                set = set.difference(&remove);
                set.insert_n(updated, card);
            }
            let slot = self
                .catalog
                .value_mut(target)
                .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
            *slot = Value::Set(set);
        }
        self.rebuild_extents_for(target);
        Ok(Value::bool(true))
    }

    fn assign_index(
        &mut self,
        target: &str,
        index: excess_lang::ast::IndexExpr,
        value: &QExpr,
    ) -> DbResult<Value> {
        let schema = self
            .catalog
            .schema(target)
            .cloned()
            .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
        let SchemaType::Arr { elem, .. } = schema else {
            return Err(DbError::Other(format!("`{target}` is not an array")));
        };
        let (v, _) = self.eval_standalone(value)?;
        let v = self.coerce_element(&elem, v)?;
        let cur = self
            .catalog
            .value_mut(target)
            .ok_or_else(|| DbError::Other(format!("unknown object `{target}`")))?;
        let Value::Array(a) = cur else {
            return Err(DbError::Other(format!("`{target}` is not an array value")));
        };
        let i = match index {
            excess_lang::ast::IndexExpr::At(n) => n,
            excess_lang::ast::IndexExpr::Last => a.len(),
        };
        if i == 0 || i > a.len() {
            return Err(DbError::Other(format!(
                "index {i} out of bounds for `{target}` (length {})",
                a.len()
            )));
        }
        a[i - 1] = v;
        self.rebuild_extents_for(target);
        Ok(Value::bool(true))
    }
}

/// Render an evaluated argument back to a surface expression for
/// substitution.  OIDs have no literal form; they are impossible to pass
/// by value here (arguments are checked against surface-declarable types,
/// and any `ref` argument arrives as an OID that we reject with a clear
/// message).
fn value_to_qexpr(v: &Value) -> DbResult<QExpr> {
    use excess_types::{Null, Scalar};
    Ok(match v {
        Value::Scalar(Scalar::Int4(i)) => QExpr::Int(i64::from(*i)),
        Value::Scalar(Scalar::Float4(x)) => QExpr::Float(*x),
        Value::Scalar(Scalar::Char(s)) => QExpr::Str(s.clone()),
        Value::Scalar(Scalar::Bool(b)) => QExpr::Bool(*b),
        Value::Scalar(Scalar::Date(d)) => QExpr::Call {
            name: "date".into(),
            args: vec![
                QExpr::Int(i64::from(d.year)),
                QExpr::Int(i64::from(d.month)),
                QExpr::Int(i64::from(d.day)),
            ],
        },
        Value::Null(Null::Dne) => QExpr::DneLit,
        Value::Null(Null::Unk) => QExpr::UnkLit,
        Value::Tuple(t) => QExpr::TupLit(
            t.iter()
                .map(|(n, fv)| value_to_qexpr(fv).map(|e| (n.to_string(), e)))
                .collect::<DbResult<Vec<_>>>()?,
        ),
        Value::Set(s) => QExpr::SetLit(
            s.iter_occurrences()
                .map(value_to_qexpr)
                .collect::<DbResult<Vec<_>>>()?,
        ),
        Value::Array(a) => {
            QExpr::ArrLit(a.iter().map(value_to_qexpr).collect::<DbResult<Vec<_>>>()?)
        }
        Value::Ref(o) => {
            return Err(DbError::Other(format!(
                "procedure arguments cannot carry object references ({o}); \
                 pass a key and look the object up inside the procedure"
            )))
        }
    })
}

/// Overwrite `obj_fields` with the computed `$new$<f>` values of one row.
fn apply_updates(
    obj_fields: &mut [(String, Value)],
    fields: &[(String, QExpr)],
    row: &excess_types::Tuple,
) -> DbResult<()> {
    for (f, _) in fields {
        let new_v = row.extract(&format!("$new${f}"))?.clone();
        let slot = obj_fields
            .iter_mut()
            .find(|(n, _)| n == f)
            .ok_or_else(|| DbError::Other(format!("element has no field `{f}` to replace")))?;
        slot.1 = new_v;
    }
    Ok(())
}

/// Rewrite target-object references (direct or via `range of` aliases)
/// inside a delete/replace predicate into the update variable.
fn rewrite_pred(p: &QPred, target: &str, ranges: &HashMap<String, QExpr>, var: &str) -> QPred {
    match p {
        QPred::Cmp { l, op, r } => QPred::Cmp {
            l: Box::new(rewrite_expr(l, target, ranges, var)),
            op: *op,
            r: Box::new(rewrite_expr(r, target, ranges, var)),
        },
        QPred::And(a, b) => QPred::And(
            Box::new(rewrite_pred(a, target, ranges, var)),
            Box::new(rewrite_pred(b, target, ranges, var)),
        ),
        QPred::Or(a, b) => QPred::Or(
            Box::new(rewrite_pred(a, target, ranges, var)),
            Box::new(rewrite_pred(b, target, ranges, var)),
        ),
        QPred::Not(q) => QPred::Not(Box::new(rewrite_pred(q, target, ranges, var))),
    }
}

fn rewrite_expr(q: &QExpr, target: &str, ranges: &HashMap<String, QExpr>, var: &str) -> QExpr {
    match q {
        QExpr::Var(n) => {
            let aliases_target =
                n == target || matches!(ranges.get(n), Some(QExpr::Var(t)) if t == target);
            if aliases_target {
                QExpr::Var(var.to_string())
            } else {
                q.clone()
            }
        }
        QExpr::Path { base, steps } => QExpr::Path {
            base: Box::new(rewrite_expr(base, target, ranges, var)),
            steps: steps
                .iter()
                .map(|s| match s {
                    Step::Method { name, args } => Step::Method {
                        name: name.clone(),
                        args: args
                            .iter()
                            .map(|a| rewrite_expr(a, target, ranges, var))
                            .collect(),
                    },
                    other => other.clone(),
                })
                .collect(),
        },
        QExpr::Binary { op, l, r } => QExpr::Binary {
            op: *op,
            l: Box::new(rewrite_expr(l, target, ranges, var)),
            r: Box::new(rewrite_expr(r, target, ranges, var)),
        },
        QExpr::Neg(e) => QExpr::Neg(Box::new(rewrite_expr(e, target, ranges, var))),
        QExpr::Call { name, args } => QExpr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_expr(a, target, ranges, var))
                .collect(),
        },
        other => other.clone(),
    }
}
