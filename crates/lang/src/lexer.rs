//! A hand-written lexer for EXCESS.

use crate::error::{LangError, LangResult};
use crate::token::Token;

/// Tokenise the whole input (appending [`Token::Eof`]).
pub fn lex(src: &str) -> LangResult<Vec<Token>> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // -- line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                if i + 1 < b.len() && b[i + 1] == b'.' {
                    out.push(Token::DotDot);
                    i += 2;
                } else {
                    out.push(Token::Dot);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LangError::Lex(format!("unexpected `!` at byte {i}")));
                }
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(LangError::Lex("unterminated string literal".into()));
                    }
                    match b[j] {
                        b'"' => break,
                        b'\\' if j + 1 < b.len() => {
                            let esc = b[j + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => other,
                            });
                            j += 2;
                        }
                        byte => {
                            s.push(byte as char);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // Fraction, but not `..` (range syntax).
                let is_float = i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    out.push(Token::Float(text.parse().map_err(|_| {
                        LangError::Lex(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    let text = &src[start..i];
                    out.push(Token::Int(text.parse().map_err(|_| {
                        LangError::Lex(format!("bad int literal `{text}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match Token::keyword(word) {
                    Some(t) => out.push(t),
                    None => out.push(Token::Ident(word.to_string())),
                }
            }
            other => {
                return Err(LangError::Lex(format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_query() {
        let toks = lex("retrieve (C.name) from C in E.kids where E.dept.floor = 2").unwrap();
        assert_eq!(toks[0], Token::Retrieve);
        assert!(toks.contains(&Token::Ident("kids".into())));
        assert!(toks.contains(&Token::Eq));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexes_ddl_with_array_range() {
        let toks = lex("create TopTen: array [1..10] of ref Employee").unwrap();
        assert!(toks.contains(&Token::DotDot));
        assert!(toks.contains(&Token::Ref));
        assert!(toks.contains(&Token::Array));
    }

    #[test]
    fn comments_and_strings() {
        let toks = lex("retrieve -- a comment\n (\"Madi\\\"son\")").unwrap();
        assert_eq!(toks[2], Token::Str("Madi\"son".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap()[0], Token::Int(42));
        assert_eq!(lex("3.5").unwrap()[0], Token::Float(3.5));
        // `1..10` is int dotdot int, not floats.
        let toks = lex("1..10").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::DotDot);
        assert_eq!(toks[2], Token::Int(10));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("retrieve @").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
