//! Algebra → EXCESS decompilation (equipollence, direction ii).
//!
//! "The other direction of the proof is a traditional case-based inductive
//! proof … The proof proceeds by induction on the number of operators in
//! an algebraic expression E." (Section 3.4)
//!
//! This module is that proof made executable: every primitive operator has
//! an EXCESS surface form, so `decompile` is total on closed expressions
//! (derived operators are desugared first).  The correctness statement —
//! `translate(parse(decompile(e)))` evaluates to the same value as `e` —
//! is checked by the `equipollence` integration tests.
//!
//! Notable cases, following the proof's structure:
//!
//! * `E1 − E2`  → `(retrieve (x) from x in (E1 - E2))` — here simply
//!   `(E1 - E2)`, since EXCESS expressions include set operators;
//! * `SET(E1)`  → `{ E1 }` ("each type constructor can be used in the
//!   target list … for output formatting purposes");
//! * `ARR_APPLY_E(A)` → `(retrieve (E[x]) from x in A)` — the uniform
//!   query interface makes `from x in <array>` order-preserving, standing
//!   in for the proof's function-definition detour;
//! * `COMP_P(A)` → `the((retrieve (x) from x in { A } where P))` — the
//!   singleton-range encoding; `the` of the empty multiset is `dne`,
//!   matching COMP's rejection value.
//!
//! Limitations (documented): OID constants and primed (`name'`) field
//! names have no surface form and raise [`LangError::Decompile`].

use crate::error::{LangError, LangResult};
use excess_core::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess_types::{Null, Scalar, TypeRegistry, Value};

/// Decompile a closed algebra expression to an EXCESS expression string.
pub fn decompile(e: &Expr, reg: &TypeRegistry) -> LangResult<String> {
    let mut d = D {
        reg,
        stack: Vec::new(),
        counter: 0,
    };
    d.expr(&desugar_surface_less(e))
}

/// Expand only the derived operators without a surface form (σ, array σ,
/// rel_join, rel_×); ∪ and ∩ keep their keywords.
fn desugar_surface_less(e: &Expr) -> Expr {
    let e = e.map_children(&mut desugar_surface_less);
    match &e {
        Expr::Select { .. }
        | Expr::ArrSelect { .. }
        | Expr::RelJoin { .. }
        | Expr::RelCross(..) => {
            desugar_surface_less(&e.expand_derived().expect("derived node expands"))
        }
        _ => e,
    }
}

/// Decompile to a full statement: `retrieve (<expr>) into <name>`.
pub fn decompile_into(e: &Expr, reg: &TypeRegistry, into: &str) -> LangResult<String> {
    Ok(format!("retrieve ({}) into {into}", decompile(e, reg)?))
}

struct D<'a> {
    reg: &'a TypeRegistry,
    stack: Vec<String>,
    counter: usize,
}

fn derr(msg: impl Into<String>) -> LangError {
    LangError::Decompile(msg.into())
}

impl<'a> D<'a> {
    fn fresh(&mut self) -> String {
        let v = format!("x{}", self.counter);
        self.counter += 1;
        v
    }

    fn ident_ok(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && crate::token::Token::keyword(name).is_none()
    }

    fn expr(&mut self, e: &Expr) -> LangResult<String> {
        Ok(match e {
            Expr::Input(d) => {
                let idx = self
                    .stack
                    .len()
                    .checked_sub(1 + d)
                    .ok_or_else(|| derr(format!("free INPUT^{d} cannot be decompiled")))?;
                self.stack[idx].clone()
            }
            Expr::Named(n) => {
                if !Self::ident_ok(n) {
                    return Err(derr(format!("object name `{n}` has no surface form")));
                }
                n.clone()
            }
            Expr::Const(v) => self.literal(v)?,

            Expr::AddUnion(a, b) => format!("({} uplus {})", self.expr(a)?, self.expr(b)?),
            Expr::Diff(a, b) => format!("({} - {})", self.expr(a)?, self.expr(b)?),
            Expr::Union(a, b) => format!("({} union {})", self.expr(a)?, self.expr(b)?),
            Expr::Intersect(a, b) => {
                format!("({} intersect {})", self.expr(a)?, self.expr(b)?)
            }
            Expr::Cross(a, b) | Expr::ArrCross(a, b) => {
                format!("({} times {})", self.expr(a)?, self.expr(b)?)
            }
            Expr::MakeSet(a) => format!("{{ {} }}", self.expr(a)?),
            Expr::MakeArr(a) => format!("[ {} ]", self.expr(a)?),
            Expr::MakeTup(a, f) => {
                if !Self::ident_ok(f) {
                    return Err(derr(format!("field `{f}` has no surface form")));
                }
                format!("({f}: {})", self.expr(a)?)
            }
            Expr::DupElim(a) | Expr::ArrDupElim(a) => format!("de({})", self.expr(a)?),
            Expr::SetCollapse(a) | Expr::ArrCollapse(a) => {
                format!("collapse({})", self.expr(a)?)
            }
            Expr::ArrDiff(a, b) => format!("arr_diff({}, {})", self.expr(a)?, self.expr(b)?),
            Expr::ArrCat(a, b) => format!("arr_cat({}, {})", self.expr(a)?, self.expr(b)?),
            Expr::SubArr(a, m, n) => {
                format!("subarr({}, {}, {})", self.expr(a)?, bound(*m), bound(*n))
            }
            Expr::ArrExtract(a, b) => {
                format!("arr_extract({}, {})", self.expr(a)?, bound(*b))
            }

            Expr::SetApply {
                input,
                body,
                only_types,
            } => {
                let src = self.expr(input)?;
                let src = match only_types {
                    None => src,
                    Some(ts) => {
                        for t in ts {
                            if !Self::ident_ok(t) {
                                return Err(derr(format!("type `{t}` has no surface form")));
                            }
                        }
                        format!("exact({src}, {})", ts.join(", "))
                    }
                };
                let v = self.fresh();
                self.stack.push(v.clone());
                let body_s = self.expr(body);
                self.stack.pop();
                format!("(retrieve ({}) from {v} in {src})", body_s?)
            }
            Expr::ArrApply { input, body } => {
                let src = self.expr(input)?;
                let v = self.fresh();
                self.stack.push(v.clone());
                let body_s = self.expr(body);
                self.stack.pop();
                format!("(retrieve ({}) from {v} in {src})", body_s?)
            }
            Expr::Group { input, by } => {
                let src = self.expr(input)?;
                let v = self.fresh();
                self.stack.push(v.clone());
                let by_s = self.expr(by);
                self.stack.pop();
                format!("(retrieve ({v}) from {v} in {src} by {})", by_s?)
            }

            Expr::Project(a, fs) => {
                for f in fs {
                    if !Self::ident_ok(f) {
                        return Err(derr(format!("field `{f}` has no surface form")));
                    }
                }
                format!("project({}, {})", self.expr(a)?, fs.join(", "))
            }
            Expr::TupCat(a, b) => format!("tupcat({}, {})", self.expr(a)?, self.expr(b)?),
            Expr::TupExtract(a, f) => {
                if !Self::ident_ok(f) {
                    return Err(derr(format!(
                        "field `{f}` has no surface form (primed names arise from \
                         clashing TUP_CATs)"
                    )));
                }
                format!("({}).{f}", self.expr(a)?)
            }

            Expr::MakeRef(a, t) => format!("mkref({}, {t})", self.expr(a)?),
            Expr::Deref(a) => format!("deref({})", self.expr(a)?),

            Expr::Comp { input, pred } => {
                let inner = self.expr(input)?;
                let v = self.fresh();
                self.stack.push(v.clone());
                let p = self.pred(pred);
                self.stack.pop();
                format!(
                    "the((retrieve ({v}) from {v} in {{ {inner} }} where {}))",
                    p?
                )
            }

            Expr::Call(f, args) => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(self.expr(a)?);
                }
                match f {
                    Func::Add => format!("({} + {})", parts[0], parts[1]),
                    Func::Sub => format!("({} - {})", parts[0], parts[1]),
                    Func::Mul => format!("({} * {})", parts[0], parts[1]),
                    Func::Div => format!("({} / {})", parts[0], parts[1]),
                    Func::Neg => format!("(- {})", parts[0]),
                    Func::Min => format!("min({})", parts[0]),
                    Func::Max => format!("max({})", parts[0]),
                    Func::Count => format!("count({})", parts[0]),
                    Func::Sum => format!("sum({})", parts[0]),
                    Func::Avg => format!("avg({})", parts[0]),
                    Func::Age => format!("age({})", parts[0]),
                    Func::The => format!("the({})", parts[0]),
                }
            }

            // Section 4 dispatch: expand to the ⊎-of-exact-types form the
            // surface language can express.
            Expr::SetApplySwitch { input, table } => {
                let impls: Vec<excess_optimizer::MethodImpl> = table
                    .iter()
                    .map(|(t, b)| excess_optimizer::MethodImpl {
                        owner: t.clone(),
                        body: b.clone(),
                    })
                    .collect();
                let unioned = excess_optimizer::build_union(self.reg, (**input).clone(), &impls);
                self.expr(&unioned)?
            }

            // Derived operators are desugared before decompilation.
            Expr::Select { .. }
            | Expr::ArrSelect { .. }
            | Expr::RelJoin { .. }
            | Expr::RelCross(..) => {
                return Err(derr("derived operator survived desugaring".to_string()))
            }
        })
    }

    fn pred(&mut self, p: &Pred) -> LangResult<String> {
        Ok(match p {
            Pred::Cmp(l, op, r) => {
                let ls = self.expr(l)?;
                let rs = self.expr(r)?;
                let o = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::In => "in",
                };
                format!("{ls} {o} {rs}")
            }
            Pred::And(a, b) => format!("({} and {})", self.pred(a)?, self.pred(b)?),
            Pred::Not(q) => format!("not ({})", self.pred(q)?),
        })
    }

    fn literal(&mut self, v: &Value) -> LangResult<String> {
        Ok(match v {
            Value::Scalar(Scalar::Int4(i)) => format!("{i}"),
            Value::Scalar(Scalar::Float4(x)) => {
                if x.is_finite() {
                    format!("{x:?}")
                } else {
                    return Err(derr(format!("float {x} has no surface form")));
                }
            }
            Value::Scalar(Scalar::Char(s)) => format!("{s:?}"),
            Value::Scalar(Scalar::Bool(b)) => format!("{b}"),
            Value::Scalar(Scalar::Date(d)) => {
                format!("date({}, {}, {})", d.year, d.month, d.day)
            }
            Value::Null(Null::Dne) => "dne".into(),
            Value::Null(Null::Unk) => "unk".into(),
            Value::Tuple(t) => {
                if t.arity() == 0 {
                    "()".into()
                } else {
                    let mut parts = Vec::with_capacity(t.arity());
                    for (n, fv) in t.iter() {
                        if !Self::ident_ok(n) {
                            return Err(derr(format!("field `{n}` has no surface form")));
                        }
                        parts.push(format!("{n}: {}", self.literal(fv)?));
                    }
                    format!("({})", parts.join(", "))
                }
            }
            Value::Set(s) => {
                let mut parts = Vec::new();
                for occ in s.iter_occurrences() {
                    parts.push(self.literal(occ)?);
                }
                format!("{{ {} }}", parts.join(", "))
            }
            Value::Array(a) => {
                let mut parts = Vec::with_capacity(a.len());
                for e in a {
                    parts.push(self.literal(e)?);
                }
                format!("[ {} ]", parts.join(", "))
            }
            Value::Ref(o) => {
                return Err(derr(format!(
                    "OID constant {o} has no surface form (identities are opaque)"
                )))
            }
        })
    }
}

fn bound(b: Bound) -> String {
    match b {
        Bound::At(n) => n.to_string(),
        Bound::Last => "last".to_string(),
    }
}
