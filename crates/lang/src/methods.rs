//! The method registry: EXCESS functions defined on EXTRA types, with
//! overriding.
//!
//! "A method, in EXTRA/EXCESS, is simply an EXCESS statement (or sequence
//! of them) defined to operate on structures of a certain EXTRA type …
//! When an EXCESS method is defined, it is translated into an algebraic
//! query tree that will execute the method.  When the method is invoked,
//! its stored query tree is 'plugged in' to the appropriate place in the
//! invoking query tree." (Section 4)
//!
//! Stored bodies bind `Input(0)` to the receiver (`this`); formal
//! parameters appear as `Named("$arg:<name>")` placeholders substituted at
//! invocation — so the whole invoking query, method body included, is one
//! algebra tree the optimizer rewrites freely (the anti-"black box"
//! design the paper argues for).

use crate::error::{LangError, LangResult};
use excess_core::expr::Expr;
use excess_types::{SchemaType, TypeRegistry};
use std::collections::HashMap;

/// A stored method implementation.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// The type the implementation is defined on.
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<(String, SchemaType)>,
    /// Declared return type.
    pub returns: SchemaType,
    /// The translated query tree (`Input(0)` = receiver, `$arg:` leaves =
    /// parameters).
    pub body: Expr,
}

/// All method definitions, indexed by name.
#[derive(Debug, Clone, Default)]
pub struct MethodRegistry {
    by_name: HashMap<String, Vec<MethodDef>>,
}

impl MethodRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or override) a method.  Overriding "require\[s\] that the
    /// type signatures of all the methods be identical".
    pub fn define(&mut self, def: MethodDef) -> LangResult<()> {
        let slot = self.by_name.entry(def.name.clone()).or_default();
        if let Some(existing) = slot.first() {
            let sig_existing: Vec<&SchemaType> = existing.params.iter().map(|(_, t)| t).collect();
            let sig_new: Vec<&SchemaType> = def.params.iter().map(|(_, t)| t).collect();
            if sig_existing != sig_new || existing.returns != def.returns {
                return Err(LangError::Translate(format!(
                    "overriding `{}` must keep the type signature identical",
                    def.name
                )));
            }
        }
        if let Some(prev) = slot.iter_mut().find(|d| d.owner == def.owner) {
            *prev = def; // redefinition on the same type replaces
        } else {
            slot.push(def);
        }
        Ok(())
    }

    /// All implementations of `name`.
    pub fn implementations(&self, name: &str) -> &[MethodDef] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Method names defined on (or inherited by) `ty`.
    pub fn methods_of(&self, reg: &TypeRegistry, ty: &str) -> Vec<&MethodDef> {
        let Ok(id) = reg.lookup(ty) else {
            return vec![];
        };
        self.by_name
            .values()
            .filter_map(|defs| {
                // The implementation that `ty` resolves to, if any.
                defs.iter()
                    .filter(|d| {
                        reg.lookup(&d.owner)
                            .map(|o| reg.is_subtype_or_self(id, o))
                            .unwrap_or(false)
                    })
                    .max_by_key(|d| {
                        reg.lookup(&d.owner)
                            .map(|o| reg.ancestors(o).len())
                            .unwrap_or(0)
                    })
            })
            .collect()
    }

    /// Resolve the implementation a receiver of static type `ty` uses:
    /// the implementation on the nearest ancestor-or-self.
    pub fn resolve(&self, reg: &TypeRegistry, name: &str, ty: &str) -> Option<&MethodDef> {
        let id = reg.lookup(ty).ok()?;
        self.implementations(name)
            .iter()
            .filter(|d| {
                reg.lookup(&d.owner)
                    .map(|o| reg.is_subtype_or_self(id, o))
                    .unwrap_or(false)
            })
            .max_by_key(|d| {
                reg.lookup(&d.owner)
                    .map(|o| reg.ancestors(o).len())
                    .unwrap_or(0)
            })
    }

    /// The implementations *relevant* to a receiver of static type `ty`:
    /// the resolved one plus every override on a descendant of `ty` — the
    /// "relevant portion of the hierarchy" Section 4's ⊎ plan enumerates.
    pub fn relevant_impls(&self, reg: &TypeRegistry, name: &str, ty: &str) -> Vec<&MethodDef> {
        let Ok(id) = reg.lookup(ty) else {
            return vec![];
        };
        let mut out: Vec<&MethodDef> = Vec::new();
        if let Some(base) = self.resolve(reg, name, ty) {
            out.push(base);
        }
        for d in self.implementations(name) {
            if let Ok(o) = reg.lookup(&d.owner) {
                if o != id && reg.is_subtype_or_self(o, id) {
                    out.push(d);
                }
            }
        }
        out
    }
}

/// The placeholder leaf used for formal parameter `name`.
pub fn arg_placeholder(name: &str) -> Expr {
    Expr::named(format!("$arg:{name}"))
}

/// Substitute actual arguments for `$arg:` placeholders in a stored body.
pub fn substitute_args(body: &Expr, args: &[(String, Expr)]) -> Expr {
    if let Expr::Named(n) = body {
        if let Some(stripped) = n.strip_prefix("$arg:") {
            if let Some((_, actual)) = args.iter().find(|(p, _)| p == stripped) {
                return actual.clone();
            }
        }
    }
    body.map_children(&mut |c| substitute_args(c, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_hierarchy() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
            .unwrap();
        r.define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
        r.define_with_supertypes(
            "Student",
            SchemaType::tuple([("gpa", SchemaType::float4())]),
            &["Person"],
        )
        .unwrap();
        r
    }

    fn def(owner: &str, body: Expr) -> MethodDef {
        MethodDef {
            owner: owner.into(),
            name: "f".into(),
            params: vec![],
            returns: SchemaType::chars(),
            body,
        }
    }

    #[test]
    fn resolve_walks_up_the_hierarchy() {
        let reg = reg_with_hierarchy();
        let mut m = MethodRegistry::new();
        m.define(def("Person", Expr::input().extract("name")))
            .unwrap();
        // Student inherits Person's f.
        let r = m.resolve(&reg, "f", "Student").unwrap();
        assert_eq!(r.owner, "Person");
        // An override on Employee takes precedence for Employee.
        m.define(def("Employee", Expr::input().extract("salary")))
            .unwrap();
        assert_eq!(m.resolve(&reg, "f", "Employee").unwrap().owner, "Employee");
        assert_eq!(m.resolve(&reg, "f", "Person").unwrap().owner, "Person");
    }

    #[test]
    fn signature_must_match_on_override() {
        let mut m = MethodRegistry::new();
        m.define(def("Person", Expr::input())).unwrap();
        let bad = MethodDef {
            owner: "Employee".into(),
            name: "f".into(),
            params: vec![("x".into(), SchemaType::int4())],
            returns: SchemaType::chars(),
            body: Expr::input(),
        };
        assert!(m.define(bad).is_err());
    }

    #[test]
    fn relevant_impls_cover_the_sub_hierarchy() {
        let reg = reg_with_hierarchy();
        let mut m = MethodRegistry::new();
        m.define(def("Person", Expr::input().extract("name")))
            .unwrap();
        m.define(def("Employee", Expr::input().extract("salary")))
            .unwrap();
        let rel = m.relevant_impls(&reg, "f", "Person");
        let owners: Vec<_> = rel.iter().map(|d| d.owner.as_str()).collect();
        assert_eq!(owners, vec!["Person", "Employee"]);
        // Receiver typed Employee: only the Employee implementation.
        let rel_e = m.relevant_impls(&reg, "f", "Employee");
        assert_eq!(rel_e.len(), 1);
        assert_eq!(rel_e[0].owner, "Employee");
    }

    #[test]
    fn argument_substitution() {
        let body = Expr::input().extract("kids").set_apply(Expr::input().comp(
            excess_core::expr::Pred::eq(Expr::input().extract("name"), arg_placeholder("kname")),
        ));
        let inlined = substitute_args(&body, &[("kname".into(), Expr::str("Joe"))]);
        assert!(!format!("{inlined}").contains("$arg:"));
        assert!(format!("{inlined}").contains("\"Joe\""));
    }

    #[test]
    fn redefinition_on_same_type_replaces() {
        let mut m = MethodRegistry::new();
        m.define(def("Person", Expr::input())).unwrap();
        m.define(def("Person", Expr::input().extract("name")))
            .unwrap();
        assert_eq!(m.implementations("f").len(), 1);
    }
}
