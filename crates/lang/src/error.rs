//! Errors of the EXCESS front end.

use std::fmt;

/// Lexing, parsing, translation, or decompilation failure.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LangError {
    /// Lexer error.
    Lex(String),
    /// Parser error.
    Parse(String),
    /// Name resolution / typing error during translation.
    Translate(String),
    /// Decompilation error (e.g. an OID constant has no surface form).
    Decompile(String),
    /// Error bubbled up from the type system.
    Type(excess_types::TypeError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex(s) => write!(f, "lex error: {s}"),
            LangError::Parse(s) => write!(f, "parse error: {s}"),
            LangError::Translate(s) => write!(f, "translation error: {s}"),
            LangError::Decompile(s) => write!(f, "decompilation error: {s}"),
            LangError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<excess_types::TypeError> for LangError {
    fn from(e: excess_types::TypeError) -> Self {
        LangError::Type(e)
    }
}

impl From<excess_core::infer::InferError> for LangError {
    fn from(e: excess_core::infer::InferError) -> Self {
        LangError::Translate(e.to_string())
    }
}

/// Result alias.
pub type LangResult<T> = std::result::Result<T, LangError>;
