//! Tokens of the EXCESS surface language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (type, object, variable, field, or function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double-quoted).
    Str(String),
    // keywords
    /// `define`
    Define,
    /// `type`
    Type,
    /// `create`
    Create,
    /// `function`
    Function,
    /// `procedure`
    Procedure,
    /// `call`
    Call,
    /// `returns`
    Returns,
    /// `inherits`
    Inherits,
    /// `retrieve`
    Retrieve,
    /// `unique`
    Unique,
    /// `from`
    From,
    /// `in`
    In,
    /// `where`
    Where,
    /// `by`
    By,
    /// `into`
    Into,
    /// `range`
    Range,
    /// `of`
    Of,
    /// `is`
    Is,
    /// `append`
    Append,
    /// `to`
    To,
    /// `delete`
    Delete,
    /// `replace`
    Replace,
    /// `assign`
    Assign,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `union` (multiset ∪, max of cardinalities)
    Union,
    /// `intersect` (multiset ∩)
    Intersect,
    /// `uplus` (additive union ⊎)
    Uplus,
    /// `times` (Cartesian product ×, pair-producing)
    Times,
    /// `ref`
    Ref,
    /// `array`
    Array,
    /// `this`
    This,
    /// `last`
    Last,
    /// `true`
    True,
    /// `false`
    False,
    /// `dne`
    Dne,
    /// `unk`
    Unk,
    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "define" => Token::Define,
            "type" => Token::Type,
            "create" => Token::Create,
            "function" => Token::Function,
            "procedure" => Token::Procedure,
            "call" => Token::Call,
            "returns" => Token::Returns,
            "inherits" => Token::Inherits,
            "retrieve" => Token::Retrieve,
            "unique" => Token::Unique,
            "from" => Token::From,
            "in" => Token::In,
            "where" => Token::Where,
            "by" => Token::By,
            "into" => Token::Into,
            "range" => Token::Range,
            "of" => Token::Of,
            "is" => Token::Is,
            "append" => Token::Append,
            "to" => Token::To,
            "delete" => Token::Delete,
            "replace" => Token::Replace,
            "assign" => Token::Assign,
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "union" => Token::Union,
            "intersect" => Token::Intersect,
            "uplus" => Token::Uplus,
            "times" => Token::Times,
            "ref" => Token::Ref,
            "array" => Token::Array,
            "this" => Token::This,
            "last" => Token::Last,
            "true" => Token::True,
            "false" => Token::False,
            "dne" => Token::Dne,
            "unk" => Token::Unk,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            other => {
                let s = match other {
                    Token::Define => "define",
                    Token::Type => "type",
                    Token::Create => "create",
                    Token::Function => "function",
                    Token::Procedure => "procedure",
                    Token::Call => "call",
                    Token::Returns => "returns",
                    Token::Inherits => "inherits",
                    Token::Retrieve => "retrieve",
                    Token::Unique => "unique",
                    Token::From => "from",
                    Token::In => "in",
                    Token::Where => "where",
                    Token::By => "by",
                    Token::Into => "into",
                    Token::Range => "range",
                    Token::Of => "of",
                    Token::Is => "is",
                    Token::Append => "append",
                    Token::To => "to",
                    Token::Delete => "delete",
                    Token::Replace => "replace",
                    Token::Assign => "assign",
                    Token::And => "and",
                    Token::Or => "or",
                    Token::Not => "not",
                    Token::Union => "union",
                    Token::Intersect => "intersect",
                    Token::Uplus => "uplus",
                    Token::Times => "times",
                    Token::Ref => "ref",
                    Token::Array => "array",
                    Token::This => "this",
                    Token::Last => "last",
                    Token::True => "true",
                    Token::False => "false",
                    Token::Dne => "dne",
                    Token::Unk => "unk",
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::Comma => ",",
                    Token::Colon => ":",
                    Token::Semi => ";",
                    Token::Dot => ".",
                    Token::DotDot => "..",
                    Token::Eq => "=",
                    Token::Ne => "!=",
                    Token::Lt => "<",
                    Token::Le => "<=",
                    Token::Gt => ">",
                    Token::Ge => ">=",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}
