//! EXTRA DDL support: surface type expressions → schema types, and
//! initial values for `create`d objects.

use crate::ast::TypeExpr;
use crate::error::{LangError, LangResult};
use excess_types::{SchemaType, TypeRegistry, Value};

/// Lower a surface type expression to a [`SchemaType`].
pub fn lower_type(t: &TypeExpr) -> SchemaType {
    match t {
        TypeExpr::Int4 => SchemaType::int4(),
        TypeExpr::Float4 => SchemaType::float4(),
        TypeExpr::Char => SchemaType::chars(),
        TypeExpr::Bool => SchemaType::boolean(),
        TypeExpr::Date => SchemaType::date(),
        TypeExpr::Named(n) => SchemaType::named(n.clone()),
        TypeExpr::Ref(n) => SchemaType::reference(n.clone()),
        TypeExpr::Set(e) => SchemaType::set(lower_type(e)),
        TypeExpr::Array { elem, len } => SchemaType::Arr {
            elem: Box::new(lower_type(elem)),
            len: *len,
        },
        TypeExpr::Tuple(fs) => {
            SchemaType::tuple(fs.iter().map(|(n, t)| (n.clone(), lower_type(t))))
        }
    }
}

/// The initial value of a freshly `create`d object of schema `ty`:
/// empty multiset/array, zero-ish scalars, `dne` for refs, and — for
/// fixed-length arrays — `n` `dne` slots (nulls inhabit every domain, so
/// `create TopTen: array [1..10] of ref Employee` starts as ten empty
/// slots).
pub fn initial_value(ty: &SchemaType, reg: &TypeRegistry) -> LangResult<Value> {
    Ok(match ty {
        SchemaType::Val(st) => match st {
            excess_types::ScalarType::Int4 => Value::int(0),
            excess_types::ScalarType::Float4 => Value::float(0.0),
            excess_types::ScalarType::Char => Value::str(""),
            excess_types::ScalarType::Bool => Value::bool(false),
            excess_types::ScalarType::Date => Value::dne(),
        },
        SchemaType::Tup(fs) => Value::tuple(
            fs.iter()
                .map(|(n, t)| initial_value(t, reg).map(|v| (n.clone(), v)))
                .collect::<LangResult<Vec<_>>>()?,
        ),
        SchemaType::Set(_) => Value::set([]),
        SchemaType::Arr { len: None, .. } => Value::array([]),
        SchemaType::Arr { len: Some(n), .. } => Value::array(std::iter::repeat_n(Value::dne(), *n)),
        SchemaType::Ref(_) => Value::dne(),
        SchemaType::Named(n) => {
            let id = reg.lookup(n)?;
            let body = reg.full_body(id)?;
            return initial_value(&body, reg);
        }
    })
}

/// Render a [`SchemaType`] back to surface syntax (used by the
/// decompiler's `define type` emissions and by `describe`).
pub fn type_to_surface(t: &SchemaType) -> String {
    match t {
        SchemaType::Val(s) => match s {
            excess_types::ScalarType::Int4 => "int4".into(),
            excess_types::ScalarType::Float4 => "float4".into(),
            excess_types::ScalarType::Char => "char[]".into(),
            excess_types::ScalarType::Bool => "bool".into(),
            excess_types::ScalarType::Date => "Date".into(),
        },
        SchemaType::Named(n) => n.clone(),
        SchemaType::Ref(n) => format!("ref {n}"),
        SchemaType::Set(e) => format!("{{ {} }}", type_to_surface(e)),
        SchemaType::Arr { elem, len: None } => format!("array of {}", type_to_surface(elem)),
        SchemaType::Arr { elem, len: Some(n) } => {
            format!("array [1..{n}] of {}", type_to_surface(elem))
        }
        SchemaType::Tup(fs) => {
            let inner = fs
                .iter()
                .map(|(n, t)| format!("{n}: {}", type_to_surface(t)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("({inner})")
        }
    }
}

/// Round-trip check used by tests: parse a rendered type back.
pub fn parse_type(src: &str) -> LangResult<SchemaType> {
    // Reuse the statement parser through a `create` wrapper.
    let stmt = crate::parser::parse_statement(&format!("create __t : {src}"))?;
    match stmt {
        crate::ast::Stmt::Create { ty, .. } => Ok(lower_type(&ty)),
        _ => Err(LangError::Parse("expected type".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_figure1_types() {
        let t = parse_type("{ ref Employee }").unwrap();
        assert_eq!(t, SchemaType::set(SchemaType::reference("Employee")));
        let t2 = parse_type("array [1..10] of ref Employee").unwrap();
        assert_eq!(
            t2,
            SchemaType::fixed_array(SchemaType::reference("Employee"), 10)
        );
    }

    #[test]
    fn surface_round_trip() {
        for src in [
            "int4",
            "{ (a: int4, b: char[]) }",
            "array of float4",
            "array [1..3] of ref T",
            "(x: { int4 }, y: Date)",
        ] {
            let t = parse_type(src).unwrap();
            let rendered = type_to_surface(&t);
            assert_eq!(parse_type(&rendered).unwrap(), t, "round-trip of {src}");
        }
    }

    #[test]
    fn initial_values() {
        let reg = TypeRegistry::new();
        assert_eq!(
            initial_value(&SchemaType::set(SchemaType::int4()), &reg).unwrap(),
            Value::set([])
        );
        let arr = initial_value(&SchemaType::fixed_array(SchemaType::int4(), 3), &reg).unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert!(arr.as_array().unwrap().iter().all(|v| v.is_dne()));
    }
}
