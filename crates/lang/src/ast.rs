//! The abstract syntax of EXCESS (Section 2.2) as this reproduction
//! realises it.
//!
//! The paper shows EXCESS by example (QUEL-style `range of` / `retrieve`
//! with `from`/`where`/`by`/`unique`/`into`, EXTRA DDL, and method
//! definition).  Where the paper's equipollence proof *uses* surface forms
//! it never fully specifies — set expressions in `from` clauses
//! (`from x in (E1 − E2)`), type constructors in target lists
//! (`retrieve ({ E1 })`), sub-retrieves — we commit to a concrete grammar,
//! documented in the crate root.

/// A surface type expression (EXTRA DDL).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int4`
    Int4,
    /// `float4`
    Float4,
    /// `char[]` / `char[n]` (the bound is advisory)
    Char,
    /// `bool`
    Bool,
    /// `Date`
    Date,
    /// A named type used by value.
    Named(String),
    /// `ref T`
    Ref(String),
    /// `{ T }`
    Set(Box<TypeExpr>),
    /// `array of T` / `array [1..n] of T`
    Array {
        /// Element type.
        elem: Box<TypeExpr>,
        /// Fixed length if declared `[1..n]`.
        len: Option<usize>,
    },
    /// `( f: T, … )`
    Tuple(Vec<(String, TypeExpr)>),
}

/// Array index in a path step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexExpr {
    /// 1-based constant index.
    At(usize),
    /// `last`.
    Last,
}

/// One step of a postfix path.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `.field` — also resolves methods and virtual fields.
    Field(String),
    /// `[n]` / `[last]`.
    Index(IndexExpr),
    /// `.f(args)` — explicit method invocation.
    Method {
        /// Method name.
        name: String,
        /// Argument expressions.
        args: Vec<QExpr>,
    },
}

/// Binary operators of the expression grammar.  `Sub`, `Star` resolve to
/// either arithmetic or the collection operators (−, ×) by operand type at
/// translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-` (numeric subtraction, or multiset/array difference)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `union` (max-cardinality ∪)
    Union,
    /// `intersect`
    Intersect,
    /// `uplus` (⊎)
    Uplus,
    /// `times` (×, pair-producing; ARR_CROSS over arrays)
    Times,
}

/// Comparators of the predicate grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in` (multiset membership)
    In,
}

/// A value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QExpr {
    /// Variable / named-object / parameter reference.
    Var(String),
    /// `this` (method bodies only).
    This,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `dne` literal.
    DneLit,
    /// `unk` literal.
    UnkLit,
    /// Postfix path: base followed by steps.
    Path {
        /// The base expression.
        base: Box<QExpr>,
        /// Navigation steps.
        steps: Vec<Step>,
    },
    /// `{ e, … }` multiset constructor.
    SetLit(Vec<QExpr>),
    /// `[ e, … ]` array constructor.
    ArrLit(Vec<QExpr>),
    /// `( f: e, … )` tuple constructor (`()` is the empty tuple).
    TupLit(Vec<(String, QExpr)>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<QExpr>,
        /// Right operand.
        r: Box<QExpr>,
    },
    /// Unary minus.
    Neg(Box<QExpr>),
    /// Builtin/system function call `f(args…)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments (field/type-name arguments are parsed as `Var`s).
        args: Vec<QExpr>,
    },
    /// Aggregate with its own range: `min(e from v in src where p)`.
    Aggregate {
        /// Aggregate function name.
        func: String,
        /// The aggregated expression.
        arg: Box<QExpr>,
        /// Aggregate-local range variables.
        from: Vec<(String, QExpr)>,
        /// Aggregate-local filter.
        filter: Option<QPred>,
    },
    /// `(retrieve …)` sub-query expression.
    SubRetrieve(Box<Retrieve>),
}

/// A predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum QPred {
    /// Comparison.
    Cmp {
        /// Left operand.
        l: Box<QExpr>,
        /// Comparator.
        op: CmpOp,
        /// Right operand.
        r: Box<QExpr>,
    },
    /// Conjunction.
    And(Box<QPred>, Box<QPred>),
    /// Disjunction (translated as ¬(¬a ∧ ¬b)).
    Or(Box<QPred>, Box<QPred>),
    /// Negation.
    Not(Box<QPred>),
}

/// One element of a retrieve target list.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Optional explicit label (`name = expr`).
    pub label: Option<String>,
    /// The value expression.
    pub expr: QExpr,
}

/// A `retrieve` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieve {
    /// `retrieve unique`?
    pub unique: bool,
    /// Target list.
    pub targets: Vec<Target>,
    /// Explicit `from v in src` clauses.
    pub from: Vec<(String, QExpr)>,
    /// `where` predicate.
    pub filter: Option<QPred>,
    /// `by` grouping expression.
    pub by: Option<QExpr>,
    /// `into Name`.
    pub into: Option<String>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `define type N : (…) [inherits A, B]`
    DefineType {
        /// Type name.
        name: String,
        /// Declared body.
        body: TypeExpr,
        /// Supertype names.
        inherits: Vec<String>,
    },
    /// `create N : T`
    Create {
        /// Object name.
        name: String,
        /// Object type.
        ty: TypeExpr,
    },
    /// `define T function f (params) returns R { retrieve … }`
    DefineFunction {
        /// Receiver type.
        on_type: String,
        /// Method name.
        name: String,
        /// Parameters.
        params: Vec<(String, TypeExpr)>,
        /// Return type.
        returns: TypeExpr,
        /// Body (the value of the last retrieve is the result).
        body: Vec<Retrieve>,
    },
    /// `define procedure p (params) { stmt* }` — a stored, parameterised
    /// script of statements (EXCESS's update-side extensibility: the paper
    /// pairs "functions and procedures … written in the EXCESS query
    /// language").
    DefineProcedure {
        /// Procedure name.
        name: String,
        /// Parameters.
        params: Vec<(String, TypeExpr)>,
        /// The statements executed per call.
        body: Vec<Stmt>,
    },
    /// `call p (args…)` — run a stored procedure.
    Call {
        /// Procedure name.
        name: String,
        /// Actual arguments.
        args: Vec<QExpr>,
    },
    /// `range of V is Expr`
    RangeDecl {
        /// Variable name.
        var: String,
        /// Source expression.
        source: QExpr,
    },
    /// A query.
    Retrieve(Retrieve),
    /// `append to N (expr)`
    Append {
        /// Target object.
        target: String,
        /// Element value.
        value: QExpr,
    },
    /// `delete from N where P`
    Delete {
        /// Target object.
        target: String,
        /// Which elements to delete.
        filter: QPred,
    },
    /// `replace N (f: expr, …) [where P]` — update the listed fields of
    /// every qualifying element; elements behind `ref` are updated in
    /// place (identity preserved).
    Replace {
        /// Target object.
        target: String,
        /// Field updates (expressions may reference the element through
        /// the object's name or a `range of` alias, as in `delete`).
        fields: Vec<(String, QExpr)>,
        /// Which elements to update (all, when absent).
        filter: Option<QPred>,
    },
    /// `assign N[i] (expr)` — replace an array slot.
    AssignIndex {
        /// Target array object.
        target: String,
        /// 1-based slot.
        index: IndexExpr,
        /// New value.
        value: QExpr,
    },
}
