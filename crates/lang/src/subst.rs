//! Surface-level substitution: replace free variable references by
//! expressions across whole statements.  Used to expand stored procedure
//! bodies at `call` time (the actual arguments replace the formals).
//!
//! A variable is *not* free where a `from` clause or aggregate binds the
//! same name (lexical shadowing), so substitution stops there.

use crate::ast::*;
use std::collections::HashMap;

/// Substitute `vars` into a statement.
pub fn subst_stmt(s: &Stmt, vars: &HashMap<String, QExpr>) -> Stmt {
    match s {
        Stmt::Retrieve(r) => Stmt::Retrieve(subst_retrieve(r, vars)),
        Stmt::Append { target, value } => Stmt::Append {
            target: target.clone(),
            value: subst_expr(value, vars),
        },
        Stmt::Delete { target, filter } => Stmt::Delete {
            target: target.clone(),
            filter: subst_pred(filter, vars),
        },
        Stmt::Replace {
            target,
            fields,
            filter,
        } => Stmt::Replace {
            target: target.clone(),
            fields: fields
                .iter()
                .map(|(f, e)| (f.clone(), subst_expr(e, vars)))
                .collect(),
            filter: filter.as_ref().map(|p| subst_pred(p, vars)),
        },
        Stmt::AssignIndex {
            target,
            index,
            value,
        } => Stmt::AssignIndex {
            target: target.clone(),
            index: *index,
            value: subst_expr(value, vars),
        },
        Stmt::RangeDecl { var, source } => Stmt::RangeDecl {
            var: var.clone(),
            source: subst_expr(source, vars),
        },
        // DDL and nested definitions are taken verbatim (no parameters
        // inside type syntax).
        other => other.clone(),
    }
}

fn subst_retrieve(r: &Retrieve, vars: &HashMap<String, QExpr>) -> Retrieve {
    // `from` variables shadow parameters inside this retrieve.
    let mut inner = vars.clone();
    for (v, _) in &r.from {
        inner.remove(v);
    }
    Retrieve {
        unique: r.unique,
        targets: r
            .targets
            .iter()
            .map(|t| Target {
                label: t.label.clone(),
                expr: subst_expr(&t.expr, &inner),
            })
            .collect(),
        // Sources are evaluated in the *outer* scope (a source may use a
        // parameter even when its variable shadows it downstream).
        from: r
            .from
            .iter()
            .map(|(v, src)| (v.clone(), subst_expr(src, vars)))
            .collect(),
        filter: r.filter.as_ref().map(|p| subst_pred(p, &inner)),
        by: r.by.as_ref().map(|b| subst_expr(b, &inner)),
        into: r.into.clone(),
    }
}

fn subst_pred(p: &QPred, vars: &HashMap<String, QExpr>) -> QPred {
    match p {
        QPred::Cmp { l, op, r } => QPred::Cmp {
            l: Box::new(subst_expr(l, vars)),
            op: *op,
            r: Box::new(subst_expr(r, vars)),
        },
        QPred::And(a, b) => {
            QPred::And(Box::new(subst_pred(a, vars)), Box::new(subst_pred(b, vars)))
        }
        QPred::Or(a, b) => QPred::Or(Box::new(subst_pred(a, vars)), Box::new(subst_pred(b, vars))),
        QPred::Not(q) => QPred::Not(Box::new(subst_pred(q, vars))),
    }
}

fn subst_expr(e: &QExpr, vars: &HashMap<String, QExpr>) -> QExpr {
    match e {
        QExpr::Var(n) => vars.get(n).cloned().unwrap_or_else(|| e.clone()),
        QExpr::Path { base, steps } => QExpr::Path {
            base: Box::new(subst_expr(base, vars)),
            steps: steps
                .iter()
                .map(|s| match s {
                    Step::Method { name, args } => Step::Method {
                        name: name.clone(),
                        args: args.iter().map(|a| subst_expr(a, vars)).collect(),
                    },
                    other => other.clone(),
                })
                .collect(),
        },
        QExpr::SetLit(xs) => QExpr::SetLit(xs.iter().map(|x| subst_expr(x, vars)).collect()),
        QExpr::ArrLit(xs) => QExpr::ArrLit(xs.iter().map(|x| subst_expr(x, vars)).collect()),
        QExpr::TupLit(fs) => QExpr::TupLit(
            fs.iter()
                .map(|(n, v)| (n.clone(), subst_expr(v, vars)))
                .collect(),
        ),
        QExpr::Binary { op, l, r } => QExpr::Binary {
            op: *op,
            l: Box::new(subst_expr(l, vars)),
            r: Box::new(subst_expr(r, vars)),
        },
        QExpr::Neg(x) => QExpr::Neg(Box::new(subst_expr(x, vars))),
        QExpr::Call { name, args } => QExpr::Call {
            name: name.clone(),
            args: args.iter().map(|a| subst_expr(a, vars)).collect(),
        },
        QExpr::Aggregate {
            func,
            arg,
            from,
            filter,
        } => {
            let mut inner = vars.clone();
            for (v, _) in from {
                inner.remove(v);
            }
            QExpr::Aggregate {
                func: func.clone(),
                arg: Box::new(subst_expr(arg, &inner)),
                from: from
                    .iter()
                    .map(|(v, s)| (v.clone(), subst_expr(s, vars)))
                    .collect(),
                filter: filter.as_ref().map(|p| subst_pred(p, &inner)),
            }
        }
        QExpr::SubRetrieve(r) => QExpr::SubRetrieve(Box::new(subst_retrieve(r, vars))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn one(vars: &[(&str, QExpr)], src: &str) -> Stmt {
        let m: HashMap<String, QExpr> = vars
            .iter()
            .map(|(n, e)| (n.to_string(), e.clone()))
            .collect();
        subst_stmt(&parse_statement(src).unwrap(), &m)
    }

    #[test]
    fn substitutes_in_targets_and_filters() {
        let s = one(
            &[("amt", QExpr::Int(5))],
            "retrieve (x + amt) from x in N where x > amt",
        );
        let Stmt::Retrieve(r) = s else { panic!() };
        assert!(format!("{:?}", r.targets[0].expr).contains("Int(5)"));
        assert!(format!("{:?}", r.filter).contains("Int(5)"));
    }

    #[test]
    fn from_variables_shadow_parameters() {
        let s = one(
            &[("x", QExpr::Int(9))],
            "retrieve (x, y) from x in N, y in M where x = 1",
        );
        let Stmt::Retrieve(r) = s else { panic!() };
        // The target `x` refers to the range variable, not the parameter.
        assert!(matches!(&r.targets[0].expr, QExpr::Var(n) if n == "x"));
    }

    #[test]
    fn aggregate_scopes_shadow_too() {
        let s = one(
            &[("x", QExpr::Int(9)), ("lim", QExpr::Int(3))],
            "retrieve (count(x from x in N where x < lim))",
        );
        let Stmt::Retrieve(r) = s else { panic!() };
        let d = format!("{:?}", r.targets[0].expr);
        // x stayed a variable; lim became 3.
        assert!(d.contains("Var(\"x\")"), "{d}");
        assert!(d.contains("Int(3)"), "{d}");
        assert!(!d.contains("Int(9)"), "{d}");
    }

    #[test]
    fn updates_substitute_everywhere() {
        let s = one(
            &[("who", QExpr::Str("Ann".into())), ("amt", QExpr::Int(7))],
            "replace Emps (salary: Emps.salary + amt) where Emps.name = who",
        );
        let d = format!("{s:?}");
        assert!(d.contains("Int(7)") && d.contains("Str(\"Ann\")"), "{d}");
    }
}
