//! Recursive-descent parser for EXCESS.
//!
//! Grammar sketch (see crate docs for the full commitment):
//!
//! ```text
//! program   := stmt*
//! stmt      := define-type | create | define-fn | range | retrieve
//!            | append | delete | assign
//! retrieve  := "retrieve" ["unique"] "(" target ("," target)* ")"
//!              ["from" v "in" expr ("," v "in" expr)*]
//!              ["where" pred] ["by" expr] ["into" ident]
//! target    := [ident "="] expr
//! pred      := orp ; orp := andp ("or" andp)* ; andp := notp ("and" notp)*
//! notp      := "not" notp | "(" pred ")" /backtrack/ | expr cmpop expr
//! expr      := term ((+|-|union|intersect|uplus|times) term)*
//! term      := unary ((*|/) unary)*
//! unary     := "-" unary | postfix
//! postfix   := primary ("." field | "." f "(" args ")" | "[" idx "]")*
//! primary   := literal | "this" | ident | ident "(" callbody ")"
//!            | "(" retrieve ")" | "(" f ":" e, … ")" | "(" expr ")"
//!            | "{" exprs "}" | "[" exprs "]"
//! callbody  := args | expr "from" v "in" expr … ["where" pred]   (aggregate)
//! ```

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::lexer::lex;
use crate::token::Token;

/// Parse a whole program (sequence of statements; `;` separators optional).
pub fn parse_program(src: &str) -> LangResult<Vec<Stmt>> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    while !p.at(&Token::Eof) {
        out.push(p.statement()?);
        while p.eat(&Token::Semi) {}
    }
    Ok(out)
}

/// Parse a single statement.
pub fn parse_statement(src: &str) -> LangResult<Stmt> {
    let stmts = parse_program(src)?;
    match <[Stmt; 1]>::try_from(stmts) {
        Ok([s]) => Ok(s),
        Err(v) => Err(LangError::Parse(format!(
            "expected one statement, found {}",
            v.len()
        ))),
    }
}

/// Maximum expression/predicate nesting depth.  Recursive descent uses
/// the call stack; beyond this bound we fail gracefully instead of
/// overflowing it.
const MAX_DEPTH: usize = 96;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }
    fn peek2(&self) -> &Token {
        self.toks.get(self.pos + 1).unwrap_or(&Token::Eof)
    }
    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }
    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat(&mut self, t: &Token) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: &Token) -> LangResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(LangError::Parse(format!(
                "expected `{t}`, found `{}`",
                self.peek()
            )))
        }
    }
    fn ident(&mut self) -> LangResult<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(LangError::Parse(format!(
                "expected identifier, found `{other}`"
            ))),
        }
    }

    // ---------- statements ----------

    fn statement(&mut self) -> LangResult<Stmt> {
        match self.peek().clone() {
            Token::Define => self.define_stmt(),
            Token::Create => self.create_stmt(),
            Token::Range => self.range_stmt(),
            Token::Retrieve => Ok(Stmt::Retrieve(self.retrieve()?)),
            Token::Append => self.append_stmt(),
            Token::Delete => self.delete_stmt(),
            Token::Replace => self.replace_stmt(),
            Token::Assign => self.assign_stmt(),
            Token::Call => self.call_stmt(),
            other => Err(LangError::Parse(format!(
                "unexpected token `{other}` at statement start"
            ))),
        }
    }

    fn define_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Define)?;
        if self.eat(&Token::Procedure) {
            // define procedure name (params) { stmt* }
            let name = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut params = Vec::new();
            if !self.at(&Token::RParen) {
                loop {
                    let pname = self.ident()?;
                    self.expect(&Token::Colon)?;
                    let pty = self.type_expr()?;
                    params.push((pname, pty));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::LBrace)?;
            let mut body = Vec::new();
            while !self.at(&Token::RBrace) {
                body.push(self.statement()?);
                while self.eat(&Token::Semi) {}
            }
            self.expect(&Token::RBrace)?;
            if body.is_empty() {
                return Err(LangError::Parse("empty procedure body".into()));
            }
            return Ok(Stmt::DefineProcedure { name, params, body });
        }
        if self.eat(&Token::Type) {
            // define type N : body [inherits A, B]
            let name = self.ident()?;
            self.expect(&Token::Colon)?;
            let body = self.type_expr()?;
            let mut inherits = Vec::new();
            if self.eat(&Token::Inherits) {
                inherits.push(self.ident()?);
                while self.eat(&Token::Comma) {
                    inherits.push(self.ident()?);
                }
            }
            return Ok(Stmt::DefineType {
                name,
                body,
                inherits,
            });
        }
        // define T function f (params) returns R { body }
        let on_type = self.ident()?;
        self.expect(&Token::Function)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Token::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(&Token::Colon)?;
                let pty = self.type_expr()?;
                params.push((pname, pty));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Returns)?;
        let returns = self.type_expr()?;
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while !self.at(&Token::RBrace) {
            if self.at(&Token::Retrieve) {
                body.push(self.retrieve()?);
            } else {
                return Err(LangError::Parse(format!(
                    "method bodies contain retrieve statements, found `{}`",
                    self.peek()
                )));
            }
            while self.eat(&Token::Semi) {}
        }
        self.expect(&Token::RBrace)?;
        if body.is_empty() {
            return Err(LangError::Parse("empty method body".into()));
        }
        Ok(Stmt::DefineFunction {
            on_type,
            name,
            params,
            returns,
            body,
        })
    }

    fn create_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Create)?;
        let name = self.ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.type_expr()?;
        Ok(Stmt::Create { name, ty })
    }

    fn range_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Range)?;
        self.expect(&Token::Of)?;
        let var = self.ident()?;
        self.expect(&Token::Is)?;
        let source = self.expr()?;
        Ok(Stmt::RangeDecl { var, source })
    }

    fn append_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Append)?;
        self.expect(&Token::To)?;
        let target = self.ident()?;
        self.expect(&Token::LParen)?;
        // `append to X (f: v, …)` — a tuple literal — or `(expr)`.
        let value = self.paren_tail()?;
        Ok(Stmt::Append { target, value })
    }

    fn delete_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Delete)?;
        self.expect(&Token::From)?;
        let target = self.ident()?;
        self.expect(&Token::Where)?;
        let filter = self.pred()?;
        Ok(Stmt::Delete { target, filter })
    }

    fn replace_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Replace)?;
        let target = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut fields = Vec::new();
        loop {
            let f = self.ident()?;
            self.expect(&Token::Colon)?;
            let v = self.expr()?;
            fields.push((f, v));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let filter = if self.eat(&Token::Where) {
            Some(self.pred()?)
        } else {
            None
        };
        Ok(Stmt::Replace {
            target,
            fields,
            filter,
        })
    }

    fn assign_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Assign)?;
        let target = self.ident()?;
        self.expect(&Token::LBracket)?;
        let index = self.index_expr()?;
        self.expect(&Token::RBracket)?;
        self.expect(&Token::LParen)?;
        let value = self.paren_tail()?;
        Ok(Stmt::AssignIndex {
            target,
            index,
            value,
        })
    }

    fn call_stmt(&mut self) -> LangResult<Stmt> {
        self.expect(&Token::Call)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !self.at(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::Call { name, args })
    }

    fn index_expr(&mut self) -> LangResult<IndexExpr> {
        if self.eat(&Token::Last) {
            return Ok(IndexExpr::Last);
        }
        match self.bump() {
            Token::Int(i) if i >= 1 => Ok(IndexExpr::At(i as usize)),
            other => Err(LangError::Parse(format!(
                "expected index ≥ 1 or `last`, found `{other}`"
            ))),
        }
    }

    // ---------- retrieve ----------

    fn retrieve(&mut self) -> LangResult<Retrieve> {
        self.expect(&Token::Retrieve)?;
        let unique = self.eat(&Token::Unique);
        self.expect(&Token::LParen)?;
        let mut targets = vec![self.target()?];
        while self.eat(&Token::Comma) {
            targets.push(self.target()?);
        }
        self.expect(&Token::RParen)?;
        // The paper writes the tail clauses in varying orders (`by …
        // where …` in Section 5's Example 1, `from … where …` in Section
        // 2.2), so accept them in any order, each at most once.
        let mut from = Vec::new();
        let mut filter = None;
        let mut by = None;
        let mut into = None;
        loop {
            if self.eat(&Token::From) {
                if !from.is_empty() {
                    return Err(LangError::Parse("duplicate `from` clause".into()));
                }
                loop {
                    let v = self.ident()?;
                    self.expect(&Token::In)?;
                    let src = self.expr()?;
                    from.push((v, src));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            } else if self.eat(&Token::Where) {
                if filter.is_some() {
                    return Err(LangError::Parse("duplicate `where` clause".into()));
                }
                filter = Some(self.pred()?);
            } else if self.eat(&Token::By) {
                if by.is_some() {
                    return Err(LangError::Parse("duplicate `by` clause".into()));
                }
                by = Some(self.expr()?);
            } else if self.eat(&Token::Into) {
                if into.is_some() {
                    return Err(LangError::Parse("duplicate `into` clause".into()));
                }
                into = Some(self.ident()?);
            } else {
                break;
            }
        }
        Ok(Retrieve {
            unique,
            targets,
            from,
            filter,
            by,
            into,
        })
    }

    fn target(&mut self) -> LangResult<Target> {
        // `ident = expr` is a labelled target (expressions have no `=`).
        if let (Token::Ident(label), Token::Eq) = (self.peek().clone(), self.peek2().clone()) {
            self.bump();
            self.bump();
            let expr = self.expr()?;
            return Ok(Target {
                label: Some(label),
                expr,
            });
        }
        Ok(Target {
            label: None,
            expr: self.expr()?,
        })
    }

    // ---------- types ----------

    fn type_expr(&mut self) -> LangResult<TypeExpr> {
        match self.peek().clone() {
            Token::Ref => {
                self.bump();
                Ok(TypeExpr::Ref(self.ident()?))
            }
            Token::LBrace => {
                self.bump();
                let inner = self.type_expr()?;
                self.expect(&Token::RBrace)?;
                Ok(TypeExpr::Set(Box::new(inner)))
            }
            Token::Array => {
                self.bump();
                let len = if self.eat(&Token::LBracket) {
                    let lo = match self.bump() {
                        Token::Int(i) => i,
                        other => {
                            return Err(LangError::Parse(format!(
                                "expected array lower bound, found `{other}`"
                            )))
                        }
                    };
                    self.expect(&Token::DotDot)?;
                    let hi = match self.bump() {
                        Token::Int(i) => i,
                        other => {
                            return Err(LangError::Parse(format!(
                                "expected array upper bound, found `{other}`"
                            )))
                        }
                    };
                    self.expect(&Token::RBracket)?;
                    if lo != 1 || hi < 1 {
                        return Err(LangError::Parse(format!(
                            "array bounds must be [1..n], found [{lo}..{hi}]"
                        )));
                    }
                    Some(hi as usize)
                } else {
                    None
                };
                self.expect(&Token::Of)?;
                let elem = self.type_expr()?;
                Ok(TypeExpr::Array {
                    elem: Box::new(elem),
                    len,
                })
            }
            Token::LParen => {
                self.bump();
                let mut fields = Vec::new();
                if !self.at(&Token::RParen) {
                    loop {
                        let f = self.ident()?;
                        self.expect(&Token::Colon)?;
                        let t = self.type_expr()?;
                        fields.push((f, t));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(TypeExpr::Tuple(fields))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "int4" => TypeExpr::Int4,
                    "float4" => TypeExpr::Float4,
                    "bool" => TypeExpr::Bool,
                    "Date" => TypeExpr::Date,
                    "char" => {
                        // optional [n] bound, advisory
                        if self.eat(&Token::LBracket) {
                            if let Token::Int(_) = self.peek() {
                                self.bump();
                            }
                            self.expect(&Token::RBracket)?;
                        }
                        TypeExpr::Char
                    }
                    _ => TypeExpr::Named(name),
                })
            }
            other => Err(LangError::Parse(format!("expected type, found `{other}`"))),
        }
    }

    // ---------- predicates ----------

    fn pred(&mut self) -> LangResult<QPred> {
        self.depth += 1;
        let out = if self.depth > MAX_DEPTH {
            Err(LangError::Parse(format!(
                "predicate nesting exceeds {MAX_DEPTH} levels"
            )))
        } else {
            self.pred_inner()
        };
        self.depth -= 1;
        out
    }

    fn pred_inner(&mut self) -> LangResult<QPred> {
        let mut left = self.and_pred()?;
        while self.eat(&Token::Or) {
            let right = self.and_pred()?;
            left = QPred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> LangResult<QPred> {
        let mut left = self.not_pred()?;
        while self.eat(&Token::And) {
            let right = self.not_pred()?;
            left = QPred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> LangResult<QPred> {
        if self.eat(&Token::Not) {
            return Ok(QPred::Not(Box::new(self.not_pred()?)));
        }
        // `( pred )` vs a comparison starting with `( expr )`: backtrack.
        if self.at(&Token::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(p) = self.pred() {
                if self.eat(&Token::RParen) {
                    // Only a connective/end may follow a parenthesised pred;
                    // a comparator means the parens enclosed an expression.
                    if !self.is_cmp_op() {
                        return Ok(p);
                    }
                }
            }
            self.pos = save;
        }
        self.comparison()
    }

    fn is_cmp_op(&self) -> bool {
        matches!(
            self.peek(),
            Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::In
        )
    }

    fn comparison(&mut self) -> LangResult<QPred> {
        let l = self.expr()?;
        let op = match self.bump() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::In => CmpOp::In,
            other => {
                return Err(LangError::Parse(format!(
                    "expected comparator, found `{other}`"
                )))
            }
        };
        let r = self.expr()?;
        Ok(QPred::Cmp {
            l: Box::new(l),
            op,
            r: Box::new(r),
        })
    }

    // ---------- expressions ----------

    fn expr(&mut self) -> LangResult<QExpr> {
        self.depth += 1;
        let out = if self.depth > MAX_DEPTH {
            Err(LangError::Parse(format!(
                "expression nesting exceeds {MAX_DEPTH} levels"
            )))
        } else {
            self.expr_inner()
        };
        self.depth -= 1;
        out
    }

    fn expr_inner(&mut self) -> LangResult<QExpr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                Token::Union => BinOp::Union,
                Token::Intersect => BinOp::Intersect,
                Token::Uplus => BinOp::Uplus,
                Token::Times => BinOp::Times,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = QExpr::Binary {
                op,
                l: Box::new(left),
                r: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> LangResult<QExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = QExpr::Binary {
                op,
                l: Box::new(left),
                r: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> LangResult<QExpr> {
        if self.eat(&Token::Minus) {
            return Ok(QExpr::Neg(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> LangResult<QExpr> {
        let base = self.primary()?;
        let mut steps = Vec::new();
        loop {
            if self.eat(&Token::Dot) {
                let name = self.ident()?;
                if self.at(&Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    steps.push(Step::Method { name, args });
                } else {
                    steps.push(Step::Field(name));
                }
            } else if self.at(&Token::LBracket) {
                self.bump();
                let idx = self.index_expr()?;
                self.expect(&Token::RBracket)?;
                steps.push(Step::Index(idx));
            } else {
                break;
            }
        }
        if steps.is_empty() {
            Ok(base)
        } else {
            Ok(QExpr::Path {
                base: Box::new(base),
                steps,
            })
        }
    }

    fn primary(&mut self) -> LangResult<QExpr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.bump();
                Ok(QExpr::Int(i))
            }
            Token::Float(x) => {
                self.bump();
                Ok(QExpr::Float(x))
            }
            Token::Str(s) => {
                self.bump();
                Ok(QExpr::Str(s))
            }
            Token::True => {
                self.bump();
                Ok(QExpr::Bool(true))
            }
            Token::False => {
                self.bump();
                Ok(QExpr::Bool(false))
            }
            Token::Dne => {
                self.bump();
                Ok(QExpr::DneLit)
            }
            Token::Unk => {
                self.bump();
                Ok(QExpr::UnkLit)
            }
            Token::This => {
                self.bump();
                Ok(QExpr::This)
            }
            Token::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if !self.at(&Token::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(QExpr::SetLit(items))
            }
            Token::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.at(&Token::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(QExpr::ArrLit(items))
            }
            Token::LParen => {
                self.bump();
                self.paren_tail()
            }
            Token::Ident(name) => {
                self.bump();
                if self.at(&Token::LParen) {
                    self.bump();
                    return self.call_body(name);
                }
                Ok(QExpr::Var(name))
            }
            other => Err(LangError::Parse(format!(
                "unexpected token `{other}` in expression"
            ))),
        }
    }

    /// After an opening `(`: a sub-retrieve, a tuple literal, or a
    /// parenthesised expression.
    fn paren_tail(&mut self) -> LangResult<QExpr> {
        if self.at(&Token::Retrieve) {
            let r = self.retrieve()?;
            self.expect(&Token::RParen)?;
            return Ok(QExpr::SubRetrieve(Box::new(r)));
        }
        // `()` — empty tuple.
        if self.eat(&Token::RParen) {
            return Ok(QExpr::TupLit(vec![]));
        }
        // `ident :` opens a tuple literal.
        if let (Token::Ident(_), Token::Colon) = (self.peek().clone(), self.peek2().clone()) {
            let mut fields = Vec::new();
            loop {
                let f = self.ident()?;
                self.expect(&Token::Colon)?;
                let v = self.expr()?;
                fields.push((f, v));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(QExpr::TupLit(fields));
        }
        let e = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(e)
    }

    /// After `ident (`: a builtin/aggregate call.  An aggregate may carry
    /// its own `from`/`where` inside the parentheses.
    fn call_body(&mut self, name: String) -> LangResult<QExpr> {
        let mut args = Vec::new();
        if !self.at(&Token::RParen) {
            loop {
                // `last` is allowed as a bare argument (arr_extract/subarr).
                if self.at(&Token::Last) {
                    self.bump();
                    args.push(QExpr::Var("last".to_string()));
                } else {
                    args.push(self.expr()?);
                }
                if self.at(&Token::From) || self.at(&Token::Where) {
                    break;
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.at(&Token::From) || self.at(&Token::Where) {
            // Aggregate with local range.
            if args.len() != 1 {
                return Err(LangError::Parse(format!(
                    "aggregate `{name}` takes one expression before `from`/`where`"
                )));
            }
            let mut from = Vec::new();
            if self.eat(&Token::From) {
                loop {
                    let v = self.ident()?;
                    self.expect(&Token::In)?;
                    let src = self.expr()?;
                    from.push((v, src));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            let filter = if self.eat(&Token::Where) {
                Some(self.pred()?)
            } else {
                None
            };
            self.expect(&Token::RParen)?;
            return Ok(QExpr::Aggregate {
                func: name,
                arg: Box::new(args.remove(0)),
                from,
                filter,
            });
        }
        self.expect(&Token::RParen)?;
        Ok(QExpr::Call { name, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_ddl() {
        let src = r#"
            define type Person:
              ( ssnum: int4, name: char[], street: char[20], city: char[10],
                zip: int4, birthday: Date )
            define type Employee:
              ( jobtitle: char[20], dept: ref Department, manager: ref Employee,
                sub_ords: { ref Employee }, salary: int4, kids: { Person } )
              inherits Person
            create Employees: { ref Employee }
            create TopTen: array [1..10] of ref Employee
        "#;
        let stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[1] {
            Stmt::DefineType {
                name,
                inherits,
                body: TypeExpr::Tuple(fs),
            } => {
                assert_eq!(name, "Employee");
                assert_eq!(inherits, &vec!["Person".to_string()]);
                assert_eq!(fs.len(), 6);
                assert_eq!(
                    fs[3].1,
                    TypeExpr::Set(Box::new(TypeExpr::Ref("Employee".into())))
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &stmts[3] {
            Stmt::Create {
                name,
                ty: TypeExpr::Array { len: Some(10), .. },
            } => {
                assert_eq!(name, "TopTen");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_first_example_query() {
        let src = r#"range of E is Employees
                     retrieve (C.name) from C in E.kids where E.dept.floor = 2"#;
        let stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 2);
        let Stmt::Retrieve(r) = &stmts[1] else {
            panic!()
        };
        assert_eq!(r.from.len(), 1);
        assert!(r.filter.is_some());
        assert!(!r.unique);
    }

    #[test]
    fn parses_aggregate_with_local_range() {
        let src = r#"retrieve (EMP.name, min(E.kids.age
                        from E in Employees
                        where E.dept.floor = EMP.dept.floor))"#;
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        assert_eq!(r.targets.len(), 2);
        match &r.targets[1].expr {
            QExpr::Aggregate {
                func, from, filter, ..
            } => {
                assert_eq!(func, "min");
                assert_eq!(from.len(), 1);
                assert!(filter.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_by_unique_into() {
        let src = r#"retrieve unique (S.dept.name, E.name) by S.dept
                     where S.advisor = E.name into Out"#;
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        assert!(r.unique);
        assert!(r.by.is_some());
        assert_eq!(r.into.as_deref(), Some("Out"));
    }

    #[test]
    fn parses_array_indexing() {
        let src = "retrieve (TopTen[5].name, TopTen[5].salary)";
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        match &r.targets[0].expr {
            QExpr::Path { steps, .. } => {
                assert_eq!(steps[0], Step::Index(IndexExpr::At(5)));
                assert_eq!(steps[1], Step::Field("name".into()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_method_definition() {
        let src = r#"define Employee function get_ssnum (kname: char[]) returns int4
                     { retrieve (this.kids.ssnum) where (this.kids.name = kname) }"#;
        let Stmt::DefineFunction {
            on_type,
            name,
            params,
            body,
            ..
        } = parse_statement(src).unwrap()
        else {
            panic!()
        };
        assert_eq!(on_type, "Employee");
        assert_eq!(name, "get_ssnum");
        assert_eq!(params.len(), 1);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_set_expression_sources() {
        // The equipollence proof's `retrieve (x) from x in (E1 - E2)`.
        let src = "retrieve (x) from x in (E1 - E2) into E";
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        match &r.from[0].1 {
            QExpr::Binary { op: BinOp::Sub, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_constructor_targets() {
        // `retrieve ( { E1 } ) into E` — SET via output formatting.
        let src = "retrieve ( { E1 } ) into E";
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        assert!(matches!(r.targets[0].expr, QExpr::SetLit(_)));
    }

    #[test]
    fn parses_parenthesised_predicates() {
        let src = r#"retrieve (x) from x in S
                     where (x.a = 1 and not (x.b = 2)) or x.c in T"#;
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        assert!(matches!(r.filter, Some(QPred::Or(_, _))));
    }

    #[test]
    fn parses_sub_retrieve_expression() {
        let src = "retrieve (the((retrieve (x) from x in { 1, 2 } where x = 1)))";
        let Stmt::Retrieve(r) = parse_statement(src).unwrap() else {
            panic!()
        };
        match &r.targets[0].expr {
            QExpr::Call { name, args } => {
                assert_eq!(name, "the");
                assert!(matches!(args[0], QExpr::SubRetrieve(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_updates() {
        parse_statement(r#"append to Depts (name: "CS", floor: 2)"#).unwrap();
        parse_statement(r#"delete from Depts where D.floor = 2"#).unwrap();
        parse_statement(r#"assign TopTen[3] (x)"#).unwrap();
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_statement("retrieve").is_err());
        assert!(parse_statement("define type :").is_err());
        assert!(parse_statement("create X { int4 }").is_err());
    }
}
