//! EXCESS → algebra translation (equipollence, direction i).
//!
//! "The proof that EXCESS is reducible to the algebra is essentially an
//! algorithm that translates any EXCESS query to an algebraic query tree
//! … everything in the retrieval list is combined using either joins or
//! cross-products, then the criteria of the 'where' clause are applied,
//! then the actual information desired is 'projected' to form the final
//! result." (Section 3.4)
//!
//! ## Scheme
//!
//! Each retrieve owns a list of *range variables*: the explicit `from`
//! clauses, instantiated `range of` declarations, and **implicit** ones —
//! QUEL-style tuple variables created whenever a path navigates *into* a
//! multiset (`Employees.dept.name`, `this.kids.ssnum`).  Implicit
//! variables are keyed by the text of their source path, so every mention
//! of the same prefix shares one variable (that is what correlates
//! `Employees.city` in the `where` clause with `Employees.dept.name` in
//! the target list, reproducing the functional join of Figure 4).
//!
//! Variables become nested `SET_APPLY` binders (dependency-ordered); the
//! innermost body is `COMP_pred(target)` — COMP's `dne` discards
//! unqualified combinations — and `SET_COLLAPSE`s flatten the nesting.
//! During expression translation variable references are symbolic
//! `Named("$var:k")` leaves; assembly replaces them with precise De Bruijn
//! `INPUT` indices.  A `by` clause routes through `GRP` over materialised
//! combination tuples, exactly like the paper's Figure 6.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::methods::{arg_placeholder, substitute_args, MethodRegistry};
use excess_core::expr::{Bound, CmpOp as ACmp, Expr, Func, Pred};
use excess_core::infer::SchemaCatalog;
use excess_types::{SchemaType, TypeRegistry, Value};
use std::collections::HashMap;

/// Everything translation needs to resolve names and types.
pub struct TranslateCtx<'a> {
    /// Named types and the inheritance hierarchy.
    pub registry: &'a TypeRegistry,
    /// Schemas of named top-level objects.
    pub schemas: &'a dyn SchemaCatalog,
    /// Session `range of` declarations.
    pub ranges: &'a HashMap<String, QExpr>,
    /// Stored methods.
    pub methods: &'a MethodRegistry,
    /// Receiver type when translating a method body.
    pub this_type: Option<SchemaType>,
    /// Formal parameters when translating a method body.
    pub params: Vec<(String, SchemaType)>,
}

/// A range variable of one retrieve.
#[derive(Debug, Clone)]
struct RVar {
    /// Placeholder key (explicit name, or `$imp:<path display>`).
    key: String,
    /// Source expression (may reference earlier variables by placeholder).
    source: Expr,
    /// Element type.
    elem_ty: SchemaType,
    /// `true` when the source is an array (order-preserving semantics).
    is_array: bool,
}

/// The per-retrieve variable scope, chained to enclosing retrieves.
struct RScope<'p> {
    vars: Vec<RVar>,
    parent: Option<&'p RScope<'p>>,
}

impl<'p> RScope<'p> {
    fn lookup(&self, name: &str) -> Option<(Expr, SchemaType)> {
        if let Some(v) = self.vars.iter().find(|v| v.key == name) {
            return Some((var_placeholder(&v.key), v.elem_ty.clone()));
        }
        self.parent.and_then(|p| p.lookup(name))
    }
}

fn var_placeholder(key: &str) -> Expr {
    Expr::named(format!("$var:{key}"))
}

fn terr(msg: impl Into<String>) -> LangError {
    LangError::Translate(msg.into())
}

/// Structural view of a schema type (resolving `Named` one level).
fn resolve_ty(ty: &SchemaType, reg: &TypeRegistry) -> LangResult<SchemaType> {
    match ty {
        SchemaType::Named(n) => {
            let id = reg.lookup(n)?;
            Ok(reg.full_body(id)?)
        }
        other => Ok(other.clone()),
    }
}

/// Translate a whole retrieve to an algebra expression; the result's shape
/// is also returned (set / array / bare value / set of groups).
pub fn translate_retrieve(r: &Retrieve, tc: &TranslateCtx<'_>) -> LangResult<(Expr, SchemaType)> {
    translate_retrieve_in(r, tc, None)
}

fn translate_retrieve_in(
    r: &Retrieve,
    tc: &TranslateCtx<'_>,
    parent: Option<&RScope<'_>>,
) -> LangResult<(Expr, SchemaType)> {
    let mut sc = RScope {
        vars: Vec::new(),
        parent,
    };

    // 1. Explicit range variables.
    for (v, src) in &r.from {
        let (e, ty) = tx_expr(src, tc, &mut sc)?;
        push_explicit_var(&mut sc, v, e, ty, tc)?;
    }

    // 2. Targets.
    let mut fields: Vec<(String, Expr, SchemaType)> = Vec::new();
    for (i, t) in r.targets.iter().enumerate() {
        let (e, ty) = tx_expr(&t.expr, tc, &mut sc)?;
        let label = t
            .label
            .clone()
            .or_else(|| default_label(&t.expr))
            .unwrap_or_else(|| format!("c{}", i + 1));
        fields.push((label, e, ty));
    }
    let bare_single = r.targets.len() == 1 && r.targets[0].label.is_none();
    let (target_expr, target_ty) = if bare_single {
        let (_, e, ty) = fields.into_iter().next().expect("one target");
        (e, ty)
    } else {
        let mut unique_names: Vec<(String, Expr, SchemaType)> = Vec::new();
        for (mut name, e, ty) in fields {
            while unique_names.iter().any(|(n, _, _)| *n == name) {
                name.push('\'');
            }
            unique_names.push((name, e, ty));
        }
        let ty = SchemaType::Tup(
            unique_names
                .iter()
                .map(|(n, _, t)| (n.clone(), t.clone()))
                .collect(),
        );
        let mut parts = unique_names.into_iter().map(|(n, e, _)| e.make_tup(n));
        let first = parts.next().expect("at least one target");
        (parts.fold(first, |acc, p| acc.tup_cat(p)), ty)
    };

    // 3. Grouping expression.
    let by_expr = match &r.by {
        Some(b) => Some(tx_expr(b, tc, &mut sc)?.0),
        None => None,
    };

    // 4. Filter.
    let pred = match &r.filter {
        Some(p) => Some(tx_pred(p, tc, &mut sc)?),
        None => None,
    };

    // 5. Assemble.
    assemble(sc.vars, target_expr, target_ty, by_expr, pred, r.unique)
}

fn push_explicit_var(
    sc: &mut RScope<'_>,
    name: &str,
    source: Expr,
    src_ty: SchemaType,
    tc: &TranslateCtx<'_>,
) -> LangResult<()> {
    if sc.vars.iter().any(|v| v.key == name) {
        return Err(terr(format!("duplicate range variable `{name}`")));
    }
    let structural = resolve_ty(&src_ty, tc.registry)?;
    let (elem_ty, is_array) = match structural {
        SchemaType::Set(e) => (*e, false),
        SchemaType::Arr { elem, .. } => (*elem, true),
        other => {
            return Err(terr(format!(
                "range variable `{name}` must range over a multiset or array, found {other}"
            )))
        }
    };
    sc.vars.push(RVar {
        key: name.to_string(),
        source,
        elem_ty,
        is_array,
    });
    Ok(())
}

/// Get-or-create the implicit variable ranging over `source` (keyed by its
/// display form so repeated path prefixes share one variable).
fn implicit_var(sc: &mut RScope<'_>, source: Expr, elem_ty: SchemaType) -> (Expr, SchemaType) {
    let key = format!("$imp:{source}");
    if !sc.vars.iter().any(|v| v.key == key) {
        sc.vars.push(RVar {
            key: key.clone(),
            source,
            elem_ty: elem_ty.clone(),
            is_array: false,
        });
    }
    (var_placeholder(&key), elem_ty)
}

fn default_label(q: &QExpr) -> Option<String> {
    match q {
        QExpr::Var(n) => Some(n.clone()),
        QExpr::Path { steps, .. } => steps.iter().rev().find_map(|s| match s {
            Step::Field(f) => Some(f.clone()),
            Step::Method { name, .. } => Some(name.clone()),
            Step::Index(_) => None,
        }),
        QExpr::Aggregate { func, .. } => Some(func.clone()),
        QExpr::Call { name, .. } => Some(name.clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Expression translation
// ---------------------------------------------------------------------

fn tx_expr(
    q: &QExpr,
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    match q {
        QExpr::Int(i) => Ok((
            Expr::lit(Value::int(
                i32::try_from(*i).map_err(|_| terr("int4 overflow"))?,
            )),
            SchemaType::int4(),
        )),
        QExpr::Float(x) => Ok((Expr::lit(Value::float(*x)), SchemaType::float4())),
        QExpr::Str(s) => Ok((Expr::lit(Value::str(s.clone())), SchemaType::chars())),
        QExpr::Bool(b) => Ok((Expr::lit(Value::bool(*b)), SchemaType::boolean())),
        QExpr::DneLit => Ok((Expr::lit(Value::dne()), SchemaType::Tup(vec![]))),
        QExpr::UnkLit => Ok((Expr::lit(Value::unk()), SchemaType::Tup(vec![]))),
        QExpr::This => match &tc.this_type {
            Some(t) => Ok((Expr::named("$this"), t.clone())),
            None => Err(terr("`this` outside a method body")),
        },
        QExpr::Var(name) => resolve_name(name, tc, sc),
        QExpr::Path { base, steps } => {
            let (mut e, mut ty) = tx_expr(base, tc, sc)?;
            for step in steps {
                (e, ty) = navigate(e, ty, step, tc, sc)?;
            }
            Ok((e, ty))
        }
        QExpr::SetLit(items) => {
            if items.is_empty() {
                return Ok((
                    Expr::lit(Value::set([])),
                    SchemaType::set(SchemaType::Tup(vec![])),
                ));
            }
            let mut parts = Vec::with_capacity(items.len());
            let mut elem_ty = None;
            for it in items {
                let (e, ty) = tx_expr(it, tc, sc)?;
                elem_ty.get_or_insert(ty);
                parts.push(e.make_set());
            }
            let mut iter = parts.into_iter();
            let first = iter.next().expect("non-empty");
            let set = iter.fold(first, |acc, p| acc.add_union(p));
            Ok((set, SchemaType::set(elem_ty.expect("non-empty"))))
        }
        QExpr::ArrLit(items) => {
            if items.is_empty() {
                return Ok((
                    Expr::lit(Value::array([])),
                    SchemaType::array(SchemaType::Tup(vec![])),
                ));
            }
            let mut parts = Vec::with_capacity(items.len());
            let mut elem_ty = None;
            for it in items {
                let (e, ty) = tx_expr(it, tc, sc)?;
                elem_ty.get_or_insert(ty);
                parts.push(e.make_arr());
            }
            let mut iter = parts.into_iter();
            let first = iter.next().expect("non-empty");
            let arr = iter.fold(first, |acc, p| acc.arr_cat(p));
            Ok((arr, SchemaType::array(elem_ty.expect("non-empty"))))
        }
        QExpr::TupLit(fs) => {
            if fs.is_empty() {
                return Ok((
                    Expr::lit(Value::Tuple(excess_types::Tuple::empty())),
                    SchemaType::Tup(vec![]),
                ));
            }
            let mut parts = Vec::with_capacity(fs.len());
            let mut tys = Vec::with_capacity(fs.len());
            for (n, v) in fs {
                let (e, ty) = tx_expr(v, tc, sc)?;
                parts.push(e.make_tup(n.clone()));
                tys.push((n.clone(), ty));
            }
            let mut iter = parts.into_iter();
            let first = iter.next().expect("non-empty");
            let tup = iter.fold(first, |acc, p| acc.tup_cat(p));
            Ok((tup, SchemaType::Tup(tys)))
        }
        QExpr::Neg(inner) => {
            let (e, ty) = tx_expr(inner, tc, sc)?;
            Ok((Expr::call(Func::Neg, vec![e]), ty))
        }
        QExpr::Binary { op, l, r } => tx_binary(*op, l, r, tc, sc),
        QExpr::Call { name, args } => tx_call(name, args, tc, sc),
        QExpr::Aggregate {
            func,
            arg,
            from,
            filter,
        } => {
            let sub = Retrieve {
                unique: false,
                targets: vec![Target {
                    label: None,
                    expr: (**arg).clone(),
                }],
                from: from.clone(),
                filter: filter.clone(),
                by: None,
                into: None,
            };
            let (plan, sub_ty) = translate_retrieve_in(&sub, tc, Some(sc))?;
            let elem = match resolve_ty(&sub_ty, tc.registry)? {
                SchemaType::Set(e) => *e,
                other => other, // zero-variable aggregate over a bare value
            };
            let (f, out_ty) = aggregate_func(func, &elem)?;
            Ok((Expr::call(f, vec![plan]), out_ty))
        }
        QExpr::SubRetrieve(r) => {
            if r.into.is_some() {
                return Err(terr("`into` is not allowed in a sub-retrieve"));
            }
            translate_retrieve_in(r, tc, Some(sc))
        }
    }
}

fn aggregate_func(name: &str, elem: &SchemaType) -> LangResult<(Func, SchemaType)> {
    Ok(match name {
        "min" => (Func::Min, elem.clone()),
        "max" => (Func::Max, elem.clone()),
        "count" => (Func::Count, SchemaType::int4()),
        "sum" => (Func::Sum, elem.clone()),
        "avg" => (Func::Avg, SchemaType::float4()),
        other => return Err(terr(format!("unknown aggregate `{other}`"))),
    })
}

fn resolve_name(
    name: &str,
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    // 1. range variables (innermost scope first — shadowing).
    if let Some(hit) = sc.lookup(name) {
        return Ok(hit);
    }
    // 2. method formal parameters.
    if let Some((_, ty)) = tc.params.iter().find(|(p, _)| p == name) {
        return Ok((arg_placeholder(name), ty.clone()));
    }
    // 3. session `range of` declarations — instantiate lazily.
    if let Some(src) = tc.ranges.get(name) {
        let (e, ty) = tx_expr(&src.clone(), tc, sc)?;
        push_explicit_var(sc, name, e, ty, tc)?;
        return Ok(sc.lookup(name).expect("just pushed"));
    }
    // 4. named top-level objects.
    if let Some(schema) = tc.schemas.object_schema(name) {
        return Ok((Expr::named(name), schema));
    }
    Err(terr(format!("unknown name `{name}`")))
}

/// Navigate one path step, inserting DEREFs, implicit variables, method
/// inlining/dispatch, and array maps as the types demand.
fn navigate(
    mut e: Expr,
    mut ty: SchemaType,
    step: &Step,
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    // Implicit dereference: a ref navigates as its referent.
    while let SchemaType::Ref(target) = resolve_ty(&ty, tc.registry)? {
        e = e.deref();
        ty = SchemaType::named(target);
    }
    let structural = resolve_ty(&ty, tc.registry)?;
    match step {
        Step::Field(f) => match structural {
            SchemaType::Tup(fields) => {
                if let Some((_, fty)) = fields.iter().find(|(n, _)| n == f) {
                    return Ok((e.extract(f.clone()), fty.clone()));
                }
                // `age` virtual field: computable from `birthday`.
                if f == "age"
                    && fields
                        .iter()
                        .any(|(n, t)| n == "birthday" && *t == SchemaType::date())
                {
                    return Ok((
                        Expr::call(Func::Age, vec![e.extract("birthday")]),
                        SchemaType::int4(),
                    ));
                }
                // Zero-argument method as a virtual field.
                if let SchemaType::Named(n) = &ty {
                    if tc.methods.resolve(tc.registry, f, n).is_some() {
                        return invoke_method(e, ty.clone(), f, &[], tc, sc);
                    }
                }
                Err(terr(format!("no field or method `{f}` on {ty}")))
            }
            SchemaType::Set(elem) => {
                // QUEL tuple-variable semantics: navigating into a multiset
                // binds an implicit range variable over it.
                let (var, elem_ty) = implicit_var(sc, e, *elem);
                navigate(var, elem_ty, step, tc, sc)
            }
            SchemaType::Arr { elem, .. } => {
                // Arrays map in place, order preserved (uniform interface).
                let (body, body_ty) = navigate(Expr::input(), (*elem).clone(), step, tc, sc)?;
                Ok((e.arr_apply(body), SchemaType::array(body_ty)))
            }
            other => Err(terr(format!("cannot navigate `.{f}` into {other}"))),
        },
        Step::Index(idx) => match structural {
            SchemaType::Arr { elem, .. } => {
                let b = match idx {
                    IndexExpr::At(n) => Bound::At(*n),
                    IndexExpr::Last => Bound::Last,
                };
                Ok((Expr::ArrExtract(Box::new(e), b), (*elem).clone()))
            }
            other => Err(terr(format!("cannot index into {other}"))),
        },
        Step::Method { name, args } => match structural {
            SchemaType::Tup(_) => invoke_method(e, ty.clone(), name, args, tc, sc),
            SchemaType::Set(elem) => {
                let (var, elem_ty) = implicit_var(sc, e, *elem);
                navigate(var, elem_ty, step, tc, sc)
            }
            other => Err(terr(format!("cannot invoke `.{name}()` on {other}"))),
        },
    }
}

/// Inline (single implementation) or dispatch (overridden) a method call.
fn invoke_method(
    receiver: Expr,
    receiver_ty: SchemaType,
    name: &str,
    args: &[QExpr],
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    let SchemaType::Named(ty_name) = &receiver_ty else {
        return Err(terr(format!(
            "method `{name}` requires a receiver of a named type, found {receiver_ty}"
        )));
    };
    let impls: Vec<_> = tc
        .methods
        .relevant_impls(tc.registry, name, ty_name)
        .into_iter()
        .cloned()
        .collect();
    if impls.is_empty() {
        return Err(terr(format!("no method `{name}` on type `{ty_name}`")));
    }
    let sig = &impls[0];
    if args.len() != sig.params.len() {
        return Err(terr(format!(
            "method `{name}` takes {} arguments, {} given",
            sig.params.len(),
            args.len()
        )));
    }
    let mut actuals = Vec::with_capacity(args.len());
    for ((pname, _), a) in sig.params.iter().zip(args) {
        let (e, _) = tx_expr(a, tc, sc)?;
        actuals.push((pname.clone(), e));
    }
    let returns = sig.returns.clone();
    if impls.len() == 1 {
        // Plug the stored query tree in and let the optimizer at it.
        let body = substitute_args(&impls[0].body, &actuals);
        return Ok((Expr::beta_apply(&body, &receiver), returns));
    }
    // Overridden: per-receiver run-time dispatch via a singleton set and a
    // switch table; `the` unwraps the one result.  The optimizer can
    // rewrite an enclosing SET_APPLY of this shape into a whole-set switch
    // or the ⊎-based plan of Figure 5 (see `excess-optimizer`).
    let table = impls
        .iter()
        .map(|m| (m.owner.clone(), substitute_args(&m.body, &actuals)))
        .collect();
    let switched = Expr::SetApplySwitch {
        input: Box::new(receiver.make_set()),
        table,
    };
    Ok((Expr::call(Func::The, vec![switched]), returns))
}

fn tx_binary(
    op: BinOp,
    l: &QExpr,
    r: &QExpr,
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    let (le, lty) = tx_expr(l, tc, sc)?;
    let (re, rty) = tx_expr(r, tc, sc)?;
    let ls = resolve_ty(&lty, tc.registry)?;
    let rs = resolve_ty(&rty, tc.registry)?;
    let both_sets = matches!(ls, SchemaType::Set(_)) && matches!(rs, SchemaType::Set(_));
    let both_arrays = matches!(ls, SchemaType::Arr { .. }) && matches!(rs, SchemaType::Arr { .. });
    let numeric_ty = |a: &SchemaType, b: &SchemaType| {
        if *a == SchemaType::int4() && *b == SchemaType::int4() {
            SchemaType::int4()
        } else {
            SchemaType::float4()
        }
    };
    Ok(match op {
        BinOp::Add => (Expr::call(Func::Add, vec![le, re]), numeric_ty(&ls, &rs)),
        BinOp::Div => (Expr::call(Func::Div, vec![le, re]), numeric_ty(&ls, &rs)),
        BinOp::Mul => (Expr::call(Func::Mul, vec![le, re]), numeric_ty(&ls, &rs)),
        BinOp::Sub => {
            if both_sets {
                (le.diff(re), lty)
            } else if both_arrays {
                (Expr::ArrDiff(Box::new(le), Box::new(re)), lty)
            } else {
                (Expr::call(Func::Sub, vec![le, re]), numeric_ty(&ls, &rs))
            }
        }
        BinOp::Union if both_sets => (Expr::Union(Box::new(le), Box::new(re)), lty),
        BinOp::Intersect if both_sets => (Expr::Intersect(Box::new(le), Box::new(re)), lty),
        BinOp::Uplus if both_sets => (le.add_union(re), lty),
        BinOp::Times if both_sets => {
            let (SchemaType::Set(a), SchemaType::Set(b)) = (ls, rs) else {
                unreachable!()
            };
            (
                le.cross(re),
                SchemaType::set(SchemaType::tuple([("fst", *a), ("snd", *b)])),
            )
        }
        BinOp::Times if both_arrays => {
            let (SchemaType::Arr { elem: a, .. }, SchemaType::Arr { elem: b, .. }) = (ls, rs)
            else {
                unreachable!()
            };
            (
                Expr::ArrCross(Box::new(le), Box::new(re)),
                SchemaType::array(SchemaType::tuple([("fst", *a), ("snd", *b)])),
            )
        }
        BinOp::Union | BinOp::Intersect | BinOp::Uplus | BinOp::Times => {
            return Err(terr(format!(
                "`{op:?}` requires two multisets (or arrays for `times`), found {lty} and {rty}"
            )))
        }
    })
}

fn tx_call(
    name: &str,
    args: &[QExpr],
    tc: &TranslateCtx<'_>,
    sc: &mut RScope<'_>,
) -> LangResult<(Expr, SchemaType)> {
    let arity = |n: usize| -> LangResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(terr(format!(
                "`{name}` takes {n} arguments, {} given",
                args.len()
            )))
        }
    };
    let ident_arg = |q: &QExpr| -> LangResult<String> {
        match q {
            QExpr::Var(s) => Ok(s.clone()),
            other => Err(terr(format!(
                "expected an identifier argument, found {other:?}"
            ))),
        }
    };
    let bound_arg = |q: &QExpr| -> LangResult<Bound> {
        match q {
            QExpr::Int(i) if *i >= 1 => Ok(Bound::At(*i as usize)),
            QExpr::Var(s) if s == "last" => Ok(Bound::Last),
            other => Err(terr(format!(
                "expected index ≥ 1 or `last`, found {other:?}"
            ))),
        }
    };
    match name {
        "the" => {
            arity(1)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            let elem = match resolve_ty(&ty, tc.registry)? {
                SchemaType::Set(e) => *e,
                other => return Err(terr(format!("the() needs a multiset, found {other}"))),
            };
            Ok((Expr::call(Func::The, vec![e]), elem))
        }
        "de" => {
            arity(1)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            match resolve_ty(&ty, tc.registry)? {
                SchemaType::Set(_) => Ok((e.dup_elim(), ty)),
                SchemaType::Arr { .. } => Ok((Expr::ArrDupElim(Box::new(e)), ty)),
                other => Err(terr(format!("de() needs a collection, found {other}"))),
            }
        }
        "collapse" => {
            arity(1)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            match resolve_ty(&ty, tc.registry)? {
                SchemaType::Set(inner) => Ok((e.set_collapse(), *inner)),
                SchemaType::Arr { elem, .. } => Ok((Expr::ArrCollapse(Box::new(e)), *elem)),
                other => Err(terr(format!(
                    "collapse() needs a collection, found {other}"
                ))),
            }
        }
        "subarr" => {
            arity(3)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            let lo = bound_arg(&args[1])?;
            let hi = bound_arg(&args[2])?;
            Ok((e.subarr(lo, hi), ty))
        }
        "arr_extract" => {
            arity(2)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            let b = bound_arg(&args[1])?;
            let elem = match resolve_ty(&ty, tc.registry)? {
                SchemaType::Arr { elem, .. } => *elem,
                other => return Err(terr(format!("arr_extract() needs an array, found {other}"))),
            };
            Ok((Expr::ArrExtract(Box::new(e), b), elem))
        }
        "arr_cat" => {
            arity(2)?;
            let (a, ty) = tx_expr(&args[0], tc, sc)?;
            let (b, _) = tx_expr(&args[1], tc, sc)?;
            Ok((a.arr_cat(b), ty))
        }
        "arr_diff" => {
            arity(2)?;
            let (a, ty) = tx_expr(&args[0], tc, sc)?;
            let (b, _) = tx_expr(&args[1], tc, sc)?;
            Ok((Expr::ArrDiff(Box::new(a), Box::new(b)), ty))
        }
        "tupcat" => {
            arity(2)?;
            let (a, aty) = tx_expr(&args[0], tc, sc)?;
            let (b, bty) = tx_expr(&args[1], tc, sc)?;
            let fields = match (
                resolve_ty(&aty, tc.registry)?,
                resolve_ty(&bty, tc.registry)?,
            ) {
                (SchemaType::Tup(mut fa), SchemaType::Tup(fb)) => {
                    for (n, t) in fb {
                        let mut nn = n;
                        while fa.iter().any(|(m, _)| *m == nn) {
                            nn.push('\'');
                        }
                        fa.push((nn, t));
                    }
                    SchemaType::Tup(fa)
                }
                (a, b) => return Err(terr(format!("tupcat() needs tuples, found {a} and {b}"))),
            };
            Ok((a.tup_cat(b), fields))
        }
        "project" => {
            if args.len() < 2 {
                return Err(terr("project() needs an expression and field names"));
            }
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            let names: Vec<String> = args[1..].iter().map(ident_arg).collect::<LangResult<_>>()?;
            let out_ty = match resolve_ty(&ty, tc.registry)? {
                SchemaType::Tup(fs) => SchemaType::Tup(
                    names
                        .iter()
                        .map(|n| {
                            fs.iter()
                                .find(|(m, _)| m == n)
                                .map(|(m, t)| (m.clone(), t.clone()))
                                .ok_or_else(|| terr(format!("project(): no field `{n}`")))
                        })
                        .collect::<LangResult<_>>()?,
                ),
                other => return Err(terr(format!("project() needs a tuple, found {other}"))),
            };
            Ok((e.project(names), out_ty))
        }
        "mkref" => {
            arity(2)?;
            let (e, _) = tx_expr(&args[0], tc, sc)?;
            let ty_name = ident_arg(&args[1])?;
            tc.registry.lookup(&ty_name)?;
            Ok((e.make_ref(ty_name.clone()), SchemaType::reference(ty_name)))
        }
        "deref" => {
            arity(1)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            match resolve_ty(&ty, tc.registry)? {
                SchemaType::Ref(t) => Ok((e.deref(), SchemaType::named(t))),
                other => Err(terr(format!("deref() needs a ref, found {other}"))),
            }
        }
        "exact" => {
            if args.len() < 2 {
                return Err(terr("exact() needs an expression and type names"));
            }
            let (e, _) = tx_expr(&args[0], tc, sc)?;
            let tys: Vec<String> = args[1..].iter().map(ident_arg).collect::<LangResult<_>>()?;
            for t in &tys {
                tc.registry.lookup(t)?;
            }
            let elem = SchemaType::named(tys[0].clone());
            Ok((e.set_apply_only(tys, Expr::input()), SchemaType::set(elem)))
        }
        "date" => {
            arity(3)?;
            let mut nums = [0i64; 3];
            for (i, a) in args.iter().enumerate() {
                match a {
                    QExpr::Int(v) => nums[i] = *v,
                    other => {
                        return Err(terr(format!(
                            "date() takes integer literals, found {other:?}"
                        )))
                    }
                }
            }
            let d = excess_types::Date::new(nums[0] as i32, nums[1] as u8, nums[2] as u8)
                .ok_or_else(|| terr(format!("invalid date {nums:?}")))?;
            Ok((Expr::lit(Value::date(d)), SchemaType::date()))
        }
        "age" => {
            arity(1)?;
            let (e, _) = tx_expr(&args[0], tc, sc)?;
            Ok((Expr::call(Func::Age, vec![e]), SchemaType::int4()))
        }
        "min" | "max" | "count" | "sum" | "avg" => {
            arity(1)?;
            let (e, ty) = tx_expr(&args[0], tc, sc)?;
            let elem = match resolve_ty(&ty, tc.registry)? {
                SchemaType::Set(e) => *e,
                SchemaType::Arr { elem, .. } => *elem,
                other => return Err(terr(format!("`{name}` needs a collection, found {other}"))),
            };
            let (f, out) = aggregate_func(name, &elem)?;
            Ok((Expr::call(f, vec![e]), out))
        }
        other => Err(terr(format!("unknown function `{other}`"))),
    }
}

fn tx_pred(p: &QPred, tc: &TranslateCtx<'_>, sc: &mut RScope<'_>) -> LangResult<Pred> {
    Ok(match p {
        QPred::Cmp { l, op, r } => {
            let (le, _) = tx_expr(l, tc, sc)?;
            let (re, _) = tx_expr(r, tc, sc)?;
            let aop = match op {
                CmpOp::Eq => ACmp::Eq,
                CmpOp::Ne => ACmp::Ne,
                CmpOp::Lt => ACmp::Lt,
                CmpOp::Le => ACmp::Le,
                CmpOp::Gt => ACmp::Gt,
                CmpOp::Ge => ACmp::Ge,
                CmpOp::In => ACmp::In,
            };
            Pred::cmp(le, aop, re)
        }
        QPred::And(a, b) => tx_pred(a, tc, sc)?.and(tx_pred(b, tc, sc)?),
        // a ∨ b ≡ ¬(¬a ∧ ¬b): the algebra's predicates have only ∧ and ¬.
        QPred::Or(a, b) => Pred::Not(Box::new(
            tx_pred(a, tc, sc)?.not().and(tx_pred(b, tc, sc)?.not()),
        )),
        QPred::Not(q) => tx_pred(q, tc, sc)?.not(),
    })
}

// ---------------------------------------------------------------------
// Assembly: variables → nested SET_APPLY binders, placeholders → INPUT
// ---------------------------------------------------------------------

fn assemble(
    vars: Vec<RVar>,
    target: Expr,
    target_ty: SchemaType,
    by: Option<Expr>,
    pred: Option<Pred>,
    unique: bool,
) -> LangResult<(Expr, SchemaType)> {
    let vars = topo_sort(vars)?;

    // Array semantics: a single array-ranged variable maps in order.
    if vars.iter().any(|v| v.is_array) {
        if vars.len() != 1 || by.is_some() {
            return Err(terr(
                "an array range variable must be the sole variable and cannot be grouped",
            ));
        }
        let v = &vars[0];
        let inner = match pred {
            Some(p) => target.comp(p),
            None => target,
        };
        let body = resolve_placeholders(&inner, std::slice::from_ref(&v.key), 0);
        let src = resolve_placeholders(&v.source, &[], 0);
        let mut plan = Expr::ArrApply {
            input: Box::new(src),
            body: Box::new(body),
        };
        if unique {
            plan = Expr::ArrDupElim(Box::new(plan));
        }
        return Ok((plan, SchemaType::array(target_ty)));
    }

    if vars.is_empty() {
        // Zero range variables: the bare target (the proof's base case —
        // `retrieve (R) into E` denotes R itself).
        let mut plan = match pred {
            Some(p) => target.comp(p),
            None => target,
        };
        if unique {
            plan = plan.dup_elim();
        }
        return Ok((plan, target_ty));
    }

    let n = vars.len();
    match by {
        None => {
            let inner = match pred {
                Some(p) => target.comp(p),
                None => target,
            };
            let mut plan = build_nested(&vars, &inner);
            for _ in 1..n {
                plan = plan.set_collapse();
            }
            if unique {
                plan = plan.dup_elim();
            }
            Ok((plan, SchemaType::set(target_ty)))
        }
        Some(by_expr) => {
            // Materialise combination tuples (one field per variable), GRP
            // them, then project the targets inside each group (Figure 6's
            // join → GRP → π → DE pipeline).
            let mut parts = vars
                .iter()
                .map(|v| var_placeholder(&v.key).make_tup(v.key.clone()));
            let first = parts.next().expect("non-empty");
            let combo = parts.fold(first, |acc, p| acc.tup_cat(p));
            let inner = match pred {
                Some(p) => combo.comp(p),
                None => combo,
            };
            let mut combos = build_nested(&vars, &inner);
            for _ in 1..n {
                combos = combos.set_collapse();
            }
            let keys: Vec<String> = vars.iter().map(|v| v.key.clone()).collect();
            let by_c = resolve_combo(&by_expr, &keys, 0);
            let target_c = resolve_combo(&target, &keys, 0);
            let mut group_body = Expr::input().set_apply(target_c);
            if unique {
                group_body = group_body.dup_elim();
            }
            let plan = combos.group_by(by_c).set_apply(group_body);
            Ok((plan, SchemaType::set(SchemaType::set(target_ty))))
        }
    }
}

/// Stable topological sort of variables by source-placeholder dependency.
fn topo_sort(vars: Vec<RVar>) -> LangResult<Vec<RVar>> {
    let keys: Vec<String> = vars.iter().map(|v| v.key.clone()).collect();
    let mut placed: Vec<RVar> = Vec::with_capacity(vars.len());
    let mut pending: Vec<RVar> = vars;
    while !pending.is_empty() {
        let ready = pending.iter().position(|v| {
            // Every same-scope placeholder this source mentions is placed.
            keys.iter().all(|k| {
                k == &v.key
                    || !mentions_placeholder(&v.source, k)
                    || placed.iter().any(|p| &p.key == k)
            })
        });
        match ready {
            Some(i) => placed.push(pending.remove(i)),
            None => {
                return Err(terr("cyclic dependency among range variables"));
            }
        }
    }
    Ok(placed)
}

fn mentions_placeholder(e: &Expr, key: &str) -> bool {
    if let Expr::Named(n) = e {
        if let Some(k) = n.strip_prefix("$var:") {
            return k == key;
        }
    }
    e.children().iter().any(|c| mentions_placeholder(c, key))
}

fn build_nested(vars: &[RVar], inner: &Expr) -> Expr {
    fn go(vars: &[RVar], idx: usize, stack: &mut Vec<String>, inner: &Expr) -> Expr {
        if idx == vars.len() {
            return resolve_placeholders(inner, stack, 0);
        }
        let src = resolve_placeholders(&vars[idx].source, stack, 0);
        stack.push(vars[idx].key.clone());
        let body = go(vars, idx + 1, stack, inner);
        stack.pop();
        src.set_apply(body)
    }
    let mut stack = Vec::new();
    go(vars, 0, &mut stack, inner)
}

/// Replace `$var:` placeholders with De Bruijn `INPUT`s.  `stack` lists the
/// binder keys (outermost first); `local` counts binders crossed inside
/// the expression being resolved.
fn resolve_placeholders(e: &Expr, stack: &[String], local: usize) -> Expr {
    if let Expr::Named(n) = e {
        if let Some(key) = n.strip_prefix("$var:") {
            if let Some(pos) = stack.iter().rposition(|k| k == key) {
                let depth = local + (stack.len() - 1 - pos);
                return Expr::Input(depth);
            }
            return e.clone(); // an enclosing scope's variable — resolved later
        }
    }
    with_binder_tracking(e, &mut |child, extra| {
        resolve_placeholders(child, stack, local + extra)
    })
}

/// Replace this-scope `$var:` placeholders with combo-tuple extractions:
/// `TUP_EXTRACT_key(INPUT(local))`.
fn resolve_combo(e: &Expr, keys: &[String], local: usize) -> Expr {
    if let Expr::Named(n) = e {
        if let Some(key) = n.strip_prefix("$var:") {
            if keys.iter().any(|k| k == key) {
                return Expr::Input(local).extract(key.to_string());
            }
            return e.clone();
        }
    }
    with_binder_tracking(e, &mut |child, extra| {
        resolve_combo(child, keys, local + extra)
    })
}

/// Rebuild a node, applying `f(child, binders_crossed)` to every direct
/// child — the binder-aware analog of [`Expr::map_children`].
fn with_binder_tracking(e: &Expr, f: &mut dyn FnMut(&Expr, usize) -> Expr) -> Expr {
    match e {
        Expr::SetApply {
            input,
            body,
            only_types,
        } => Expr::SetApply {
            input: Box::new(f(input, 0)),
            body: Box::new(f(body, 1)),
            only_types: only_types.clone(),
        },
        Expr::ArrApply { input, body } => Expr::ArrApply {
            input: Box::new(f(input, 0)),
            body: Box::new(f(body, 1)),
        },
        Expr::Group { input, by } => Expr::Group {
            input: Box::new(f(input, 0)),
            by: Box::new(f(by, 1)),
        },
        Expr::Comp { input, pred } => Expr::Comp {
            input: Box::new(f(input, 0)),
            pred: pred.map_exprs(&mut |x| f(x, 1)),
        },
        Expr::Select { input, pred } => Expr::Select {
            input: Box::new(f(input, 0)),
            pred: pred.map_exprs(&mut |x| f(x, 1)),
        },
        Expr::ArrSelect { input, pred } => Expr::ArrSelect {
            input: Box::new(f(input, 0)),
            pred: pred.map_exprs(&mut |x| f(x, 1)),
        },
        Expr::RelJoin { left, right, pred } => Expr::RelJoin {
            left: Box::new(f(left, 0)),
            right: Box::new(f(right, 0)),
            pred: pred.map_exprs(&mut |x| f(x, 1)),
        },
        Expr::SetApplySwitch { input, table } => Expr::SetApplySwitch {
            input: Box::new(f(input, 0)),
            table: table.iter().map(|(t, b)| (t.clone(), f(b, 1))).collect(),
        },
        other => other.map_children(&mut |c| f(c, 0)),
    }
}

/// Resolve `$this` in a stored method body to `Input(depth)` relative to
/// the body's own root binder.
pub fn resolve_this(e: &Expr) -> Expr {
    fn go(e: &Expr, local: usize) -> Expr {
        if let Expr::Named(n) = e {
            if n == "$this" {
                return Expr::Input(local);
            }
        }
        with_binder_tracking(e, &mut |child, extra| go(child, local + extra))
    }
    go(e, 0)
}
