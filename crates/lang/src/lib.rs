//! # excess-lang — the EXCESS query language front end
//!
//! Lexer, parser, and the two constructive halves of the paper's
//! equipollence theorem (Section 3.4):
//!
//! * [`translate`] — EXCESS → algebra (the query compiler);
//! * [`decompile()`] — algebra → EXCESS (the inductive 23-case proof, made
//!   executable).
//!
//! Plus EXTRA DDL lowering ([`ddl`]) and the method registry with
//! overriding ([`methods`], Section 4).
//!
//! ## Surface grammar commitments
//!
//! The paper presents EXCESS by example; where its equipollence proof uses
//! forms it never fully specifies, this crate commits to:
//!
//! * set operators in expressions: `uplus` (⊎), `union`, `intersect`,
//!   `-` (difference by operand sort), `times` (×);
//! * sub-retrieves as expressions: `(retrieve … )`;
//! * system functions for the remaining structural operators:
//!   `de`, `collapse`, `subarr`, `arr_extract`, `arr_cat`, `arr_diff`,
//!   `tupcat`, `project`, `mkref`, `deref`, `exact`, `the`, `date`;
//! * `from x in <array>` is order-preserving (the "uniform query
//!   interface to multisets, arrays, tuples and single objects");
//! * update statements: `append to`, `delete from`, `replace`, `assign`;
//! * stored procedures: `define procedure p (params) { stmt* }` invoked
//!   with `call p(args…)` (parameters substitute by value, see [`subst`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod ddl;
pub mod decompile;
pub mod error;
pub mod lexer;
pub mod methods;
pub mod parser;
pub mod subst;
pub mod token;
pub mod translate;

pub use decompile::{decompile, decompile_into};
pub use error::{LangError, LangResult};
pub use methods::{MethodDef, MethodRegistry};
pub use parser::{parse_program, parse_statement};
pub use translate::{translate_retrieve, TranslateCtx};
