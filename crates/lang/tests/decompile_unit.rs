//! Decompiler unit tests: exact surface forms per operator, fresh-variable
//! hygiene, and the documented non-decompilable corners.

use excess_core::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess_lang::{decompile, decompile_into};
use excess_types::{SchemaType, TypeRegistry, Value};

fn reg() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.define("T", SchemaType::tuple([("x", SchemaType::int4())]))
        .unwrap();
    r.define_with_supertypes("U", SchemaType::tuple([("y", SchemaType::int4())]), &["T"])
        .unwrap();
    r
}

#[test]
fn leaf_and_literal_forms() {
    let r = reg();
    assert_eq!(decompile(&Expr::named("A"), &r).unwrap(), "A");
    assert_eq!(decompile(&Expr::int(5), &r).unwrap(), "5");
    assert_eq!(decompile(&Expr::lit(Value::float(2.5)), &r).unwrap(), "2.5");
    assert_eq!(
        decompile(&Expr::lit(Value::str("a\"b")), &r).unwrap(),
        "\"a\\\"b\""
    );
    assert_eq!(
        decompile(&Expr::lit(Value::bool(true)), &r).unwrap(),
        "true"
    );
    assert_eq!(decompile(&Expr::lit(Value::dne()), &r).unwrap(), "dne");
    assert_eq!(decompile(&Expr::lit(Value::unk()), &r).unwrap(), "unk");
    assert_eq!(
        decompile(
            &Expr::lit(Value::date(excess_types::Date::new(1990, 12, 1).unwrap())),
            &r
        )
        .unwrap(),
        "date(1990, 12, 1)"
    );
    assert_eq!(
        decompile(&Expr::lit(Value::tuple([("a", Value::int(1))])), &r).unwrap(),
        "(a: 1)"
    );
    assert_eq!(
        decompile(&Expr::lit(Value::Tuple(excess_types::Tuple::empty())), &r).unwrap(),
        "()"
    );
}

#[test]
fn operator_surface_forms() {
    let r = reg();
    let a = Expr::named("A");
    let b = Expr::named("B");
    for (plan, expected) in [
        (a.clone().add_union(b.clone()), "(A uplus B)"),
        (a.clone().diff(b.clone()), "(A - B)"),
        (
            Expr::Union(Box::new(a.clone()), Box::new(b.clone())),
            "(A union B)",
        ),
        (
            Expr::Intersect(Box::new(a.clone()), Box::new(b.clone())),
            "(A intersect B)",
        ),
        (a.clone().cross(b.clone()), "(A times B)"),
        (a.clone().make_set(), "{ A }"),
        (a.clone().make_arr(), "[ A ]"),
        (a.clone().dup_elim(), "de(A)"),
        (a.clone().set_collapse(), "collapse(A)"),
        (
            a.clone().subarr(Bound::At(2), Bound::Last),
            "subarr(A, 2, last)",
        ),
        (
            Expr::ArrExtract(Box::new(a.clone()), Bound::At(3)),
            "arr_extract(A, 3)",
        ),
        (a.clone().arr_cat(b.clone()), "arr_cat(A, B)"),
        (a.clone().deref(), "deref(A)"),
        (a.clone().make_ref("T"), "mkref(A, T)"),
        (a.clone().project(["x", "y"]), "project(A, x, y)"),
        (a.clone().tup_cat(b.clone()), "tupcat(A, B)"),
        (a.clone().extract("f"), "(A).f"),
        (a.clone().make_tup("f"), "(f: A)"),
        (Expr::call(Func::Min, vec![a.clone()]), "min(A)"),
        (Expr::call(Func::Neg, vec![a.clone()]), "(- A)"),
    ] {
        assert_eq!(decompile(&plan, &r).unwrap(), expected, "for {plan}");
    }
}

#[test]
fn binder_forms_use_fresh_variables() {
    let r = reg();
    let plan = Expr::named("A").set_apply(Expr::named("B").set_apply(Expr::call(
        Func::Add,
        vec![Expr::input(), Expr::input_at(1)],
    )));
    let s = decompile(&plan, &r).unwrap();
    assert_eq!(
        s,
        "(retrieve ((retrieve ((x1 + x0)) from x1 in B)) from x0 in A)"
    );
}

#[test]
fn comp_uses_the_singleton_encoding() {
    let r = reg();
    let plan = Expr::int(5).comp(Pred::cmp(Expr::input(), CmpOp::Gt, Expr::int(3)));
    assert_eq!(
        decompile(&plan, &r).unwrap(),
        "the((retrieve (x0) from x0 in { 5 } where x0 > 3))"
    );
}

#[test]
fn group_and_exact_forms() {
    let r = reg();
    let g = Expr::named("A").group_by(Expr::input());
    assert_eq!(
        decompile(&g, &r).unwrap(),
        "(retrieve (x0) from x0 in A by x0)"
    );
    let filtered = Expr::named("A").set_apply_only(["T", "U"], Expr::input());
    assert_eq!(
        decompile(&filtered, &r).unwrap(),
        "(retrieve (x0) from x0 in exact(A, T, U))"
    );
}

#[test]
fn switch_expands_through_coverage() {
    let r = reg();
    let sw = Expr::SetApplySwitch {
        input: Box::new(Expr::named("A")),
        table: vec![
            ("T".into(), Expr::input().extract("x")),
            ("U".into(), Expr::input().extract("y")),
        ],
    };
    let s = decompile(&sw, &r).unwrap();
    // T's arm covers exactly T (U overrides); U's covers U.
    assert!(s.contains("exact(A, T)"), "{s}");
    assert!(s.contains("exact(A, U)"), "{s}");
    assert!(s.contains("uplus"), "{s}");
}

#[test]
fn pred_connectives_and_membership() {
    let r = reg();
    let p = Pred::cmp(Expr::input(), CmpOp::In, Expr::named("B"))
        .and(Pred::cmp(Expr::input(), CmpOp::Ne, Expr::int(0)).not());
    let plan = Expr::named("A").select(p);
    let s = decompile(&plan, &r).unwrap();
    assert!(s.contains("x1 in B"), "{s}");
    assert!(s.contains("and not ("), "{s}");
}

#[test]
fn decompile_into_is_a_statement() {
    let r = reg();
    let s = decompile_into(&Expr::named("A").dup_elim(), &r, "Out").unwrap();
    assert_eq!(s, "retrieve (de(A)) into Out");
    // …which parses back as a retrieve with `into`.
    let stmt = excess_lang::parse_statement(&s).unwrap();
    assert!(matches!(
        stmt,
        excess_lang::ast::Stmt::Retrieve(excess_lang::ast::Retrieve { into: Some(_), .. })
    ));
}

#[test]
fn documented_failures() {
    let r = reg();
    // OID constants.
    let oid = excess_types::Oid {
        minted: excess_types::TypeId(0),
        serial: 1,
    };
    assert!(decompile(&Expr::lit(Value::Ref(oid)), &r).is_err());
    // Primed field names.
    assert!(decompile(&Expr::named("A").extract("x'"), &r).is_err());
    // Free INPUT (an open term is not a query).
    assert!(decompile(&Expr::input(), &r).is_err());
    // Internal extent-view names.
    assert!(decompile(&Expr::named("P::exact::T"), &r).is_err());
    // Keyword-shaped object names.
    assert!(decompile(&Expr::named("where"), &r).is_err());
}
