//! Front-end robustness: the lexer and parser must return errors, never
//! panic, on arbitrary input — including near-miss mutations of valid
//! queries.

use excess_lang::{lexer::lex, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(s in "\\PC{0,120}") {
        let _ = lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,120}") {
        let _ = parse_program(&s);
    }

    #[test]
    fn parser_never_panics_on_query_shaped_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("retrieve".to_string()),
                Just("from".to_string()),
                Just("where".to_string()),
                Just("by".to_string()),
                Just("unique".to_string()),
                Just("in".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just(".".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("\"s\"".to_string()),
                Just("define".to_string()),
                Just("type".to_string()),
                Just("ref".to_string()),
                Just("and".to_string()),
                Just("not".to_string()),
            ],
            0..25
        )
    ) {
        let src = words.join(" ");
        let _ = parse_program(&src);
    }

    #[test]
    fn valid_queries_with_one_token_deleted_never_panic(k in 0usize..40) {
        let src = r#"retrieve unique ( S . dept . name , E . name ) by S . dept
                     where S . advisor = E . name into Out"#;
        let toks: Vec<&str> = src.split_whitespace().collect();
        if k < toks.len() {
            let mutated: Vec<&str> = toks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != k)
                .map(|(_, t)| *t)
                .collect();
            let _ = parse_program(&mutated.join(" "));
        }
    }
}

#[test]
fn deeply_nested_parens_fail_gracefully() {
    // Moderate nesting parses; absurd nesting is rejected with an error
    // (never a stack overflow — the parser carries a depth bound).
    let nest = |n: usize| {
        let mut src = String::from("retrieve (");
        src.push_str(&"(".repeat(n));
        src.push('1');
        src.push_str(&")".repeat(n));
        src.push(')');
        src
    };
    assert!(parse_program(&nest(40)).is_ok());
    let err = parse_program(&nest(5000)).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}
