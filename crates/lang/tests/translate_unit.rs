//! Translator unit tests: variable resolution (explicit, `range of`,
//! implicit path-prefix), shadowing, correlated aggregates, array
//! semantics, method inlining, and error reporting.

use excess_core::expr::Expr;
use excess_lang::ast::Stmt;
use excess_lang::methods::{MethodDef, MethodRegistry};
use excess_lang::translate::{translate_retrieve, TranslateCtx};
use excess_lang::{parse_program, parse_statement};
use excess_types::{SchemaType, TypeRegistry};
use std::collections::HashMap;

struct Fx {
    reg: TypeRegistry,
    schemas: HashMap<String, SchemaType>,
    ranges: HashMap<String, excess_lang::ast::QExpr>,
    methods: MethodRegistry,
}

impl Fx {
    fn new() -> Self {
        let mut reg = TypeRegistry::new();
        reg.define(
            "Dept",
            SchemaType::tuple([
                ("dname", SchemaType::chars()),
                ("floor", SchemaType::int4()),
            ]),
        )
        .unwrap();
        reg.define(
            "Emp",
            SchemaType::tuple([
                ("name", SchemaType::chars()),
                ("dept", SchemaType::reference("Dept")),
                (
                    "kids",
                    SchemaType::set(SchemaType::tuple([("kname", SchemaType::chars())])),
                ),
            ]),
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert(
            "Emps".to_string(),
            SchemaType::set(SchemaType::named("Emp")),
        );
        schemas.insert("Nums".to_string(), SchemaType::set(SchemaType::int4()));
        schemas.insert("Arr".to_string(), SchemaType::array(SchemaType::int4()));
        Fx {
            reg,
            schemas,
            ranges: HashMap::new(),
            methods: MethodRegistry::new(),
        }
    }

    fn tx(&self, src: &str) -> Result<Expr, excess_lang::LangError> {
        let stmts = parse_program(src)?;
        let mut ranges = self.ranges.clone();
        let mut last = None;
        for s in stmts {
            match s {
                Stmt::RangeDecl { var, source } => {
                    ranges.insert(var, source);
                }
                Stmt::Retrieve(r) => last = Some(r),
                other => panic!("unsupported in fixture: {other:?}"),
            }
        }
        let tc = TranslateCtx {
            registry: &self.reg,
            schemas: &self.schemas,
            ranges: &ranges,
            methods: &self.methods,
            this_type: None,
            params: vec![],
        };
        Ok(translate_retrieve(&last.expect("retrieve"), &tc)?.0)
    }
}

#[test]
fn zero_variable_retrieve_is_the_bare_value() {
    let fx = Fx::new();
    let e = fx.tx("retrieve (1 + 2)").unwrap();
    assert_eq!(e.to_string(), "add(1, 2)");
    // The proof's base case: retrieve (R) denotes R itself.
    let r = fx.tx("retrieve (Nums)").unwrap();
    assert_eq!(r, Expr::named("Nums"));
}

#[test]
fn explicit_from_becomes_one_set_apply() {
    let fx = Fx::new();
    let e = fx.tx("retrieve (x) from x in Nums").unwrap();
    assert_eq!(e, Expr::named("Nums").set_apply(Expr::input()));
}

#[test]
fn implicit_variable_shared_across_clauses() {
    // `Emps.name` in the target and `Emps.dept` in the filter must bind
    // ONE variable (the Figure 4 correlation) — a single SET_APPLY.
    let fx = Fx::new();
    let e = fx
        .tx(r#"retrieve (Emps.name) where Emps.dept.floor = 2"#)
        .unwrap();
    let s = e.to_string();
    assert_eq!(s.matches("SET_APPLY").count(), 1, "{s}");
    assert_eq!(s.matches("Emps").count(), 1, "{s}");
}

#[test]
fn range_of_instantiates_lazily_and_orders_dependencies() {
    let fx = Fx::new();
    // C's source references E (declared by range-of); E's binder must end
    // up OUTSIDE C's despite being created later.
    let e = fx
        .tx(r#"range of E is Emps
               retrieve (C.kname) from C in E.kids where E.name = "a""#)
        .unwrap();
    let s = e.to_string();
    // Outer scan over Emps, inner over kids, flattened once.
    assert_eq!(s.matches("SET_COLLAPSE").count(), 1, "{s}");
    assert!(s.starts_with("SET_COLLAPSE(SET_APPLY["), "{s}");
    assert!(s.contains("Emps"), "{s}");
}

#[test]
fn aggregate_scopes_are_independent() {
    // The aggregate's E is its own variable, correlated to the outer EMP
    // by the where clause.
    let fx = Fx::new();
    let e = fx
        .tx(r#"range of EMP is Emps
               retrieve (EMP.name, count(E.kids from E in Emps
                         where E.dept.floor = EMP.dept.floor))"#)
        .unwrap();
    let s = e.to_string();
    // Outer scan + inner aggregate scan of the same object.
    assert_eq!(s.matches("Emps").count(), 2, "{s}");
    assert!(s.contains("count("), "{s}");
    // The correlation reaches the outer binder: INPUT^1 appears.
    assert!(s.contains("INPUT^1"), "{s}");
}

#[test]
fn shadowing_inner_variable_wins() {
    let fx = Fx::new();
    // The aggregate redeclares x over Emps; inner x.name must refer to the
    // aggregate's x (an Emp), not the outer x (an int from Nums).
    let e = fx
        .tx(r#"retrieve (count(x.name from x in Emps))
               from x in Nums"#)
        .unwrap();
    // If shadowing failed, navigation of `.name` on an int would error.
    let s = e.to_string();
    assert!(s.contains("count("), "{s}");
}

#[test]
fn single_array_source_is_order_preserving() {
    let fx = Fx::new();
    let e = fx.tx("retrieve (x + 1) from x in Arr where x > 2").unwrap();
    let s = e.to_string();
    assert!(s.starts_with("ARR_APPLY["), "{s}");
    // unique over an array → ARR_DE.
    let u = fx.tx("retrieve unique (x) from x in Arr").unwrap();
    assert!(u.to_string().starts_with("ARR_DE("), "{}", u);
}

#[test]
fn arrays_cannot_be_grouped_or_mixed() {
    let fx = Fx::new();
    assert!(fx.tx("retrieve (x) from x in Arr by x").is_err());
    assert!(fx.tx("retrieve (x, y) from x in Arr, y in Nums").is_err());
}

#[test]
fn by_clause_builds_the_grp_pipeline() {
    let fx = Fx::new();
    let e = fx
        .tx("retrieve (E.name) by E.dept.floor from E in Emps")
        .unwrap();
    let s = e.to_string();
    assert_eq!(s.matches("GRP[").count(), 1, "{s}");
    // Combination tuples are keyed by the variable name.
    assert!(s.contains("TUP[E]"), "{s}");
}

#[test]
fn method_inlining_substitutes_receiver_and_args() {
    let mut fx = Fx::new();
    fx.methods
        .define(MethodDef {
            owner: "Emp".into(),
            name: "kid_count".into(),
            params: vec![],
            returns: SchemaType::int4(),
            body: Expr::call(
                excess_core::expr::Func::Count,
                vec![Expr::input().extract("kids")],
            ),
        })
        .unwrap();
    let e = fx.tx("retrieve (E.kid_count()) from E in Emps").unwrap();
    let s = e.to_string();
    // Inlined: no dispatch machinery, just the body applied to the binder.
    assert!(!s.contains("SWITCH"), "{s}");
    assert!(s.contains("count(TUP_EXTRACT[kids](INPUT))"), "{s}");
}

#[test]
fn wrong_method_arity_is_reported() {
    let mut fx = Fx::new();
    fx.methods
        .define(MethodDef {
            owner: "Emp".into(),
            name: "f".into(),
            params: vec![("k".into(), SchemaType::int4())],
            returns: SchemaType::int4(),
            body: Expr::int(0),
        })
        .unwrap();
    let err = fx.tx("retrieve (E.f()) from E in Emps").unwrap_err();
    assert!(err.to_string().contains("takes 1 arguments"), "{err}");
}

#[test]
fn unknown_names_fields_and_functions_error_cleanly() {
    let fx = Fx::new();
    for (src, needle) in [
        ("retrieve (Nope)", "unknown name"),
        ("retrieve (E.bogus) from E in Emps", "no field or method"),
        ("retrieve (frobnicate(1))", "unknown function"),
        ("retrieve (x) from x in 1", "must range over"),
        (
            "retrieve (x, x) from x in Nums, x in Nums",
            "duplicate range variable",
        ),
    ] {
        let err = fx.tx(src).unwrap_err();
        assert!(err.to_string().contains(needle), "{src}: {err}");
    }
}

#[test]
fn or_lowers_to_not_and_not() {
    let fx = Fx::new();
    let e = fx
        .tx("retrieve (x) from x in Nums where x = 1 or x = 2")
        .unwrap();
    let s = e.to_string();
    assert!(s.contains("¬((¬(") || s.contains("¬("), "{s}");
}

#[test]
fn labeled_targets_and_clash_priming() {
    let fx = Fx::new();
    let e = fx.tx("retrieve (a = x, a = x + 1) from x in Nums").unwrap();
    let s = e.to_string();
    assert!(s.contains("TUP[a]"), "{s}");
    assert!(s.contains("TUP[a']"), "{s}");
    // Single labeled target still produces a 1-tuple (not a bare value).
    let one = fx.tx("retrieve (lbl = x) from x in Nums").unwrap();
    assert!(one.to_string().contains("TUP[lbl]"), "{one}");
}

#[test]
fn parse_statement_round_trips_replace() {
    let s =
        parse_statement(r#"replace Depts (floor: Depts.floor + 1) where Depts.floor = 3"#).unwrap();
    match s {
        Stmt::Replace {
            target,
            fields,
            filter,
        } => {
            assert_eq!(target, "Depts");
            assert_eq!(fields.len(), 1);
            assert!(filter.is_some());
        }
        other => panic!("unexpected: {other:?}"),
    }
}
