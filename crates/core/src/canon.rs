//! Canonical forms: comparing query results modulo object identity.
//!
//! OIDs are opaque ("whose value is not available to the user"), so two
//! plans are equivalent when their results are equal *after* consistently
//! renaming fresh OIDs and following references to value-equal objects.
//! This matters for rule 28 (`REF(DEREF(A)) = A`): the unrewritten plan
//! mints a fresh OID whose referent is value-equal to `A`'s referent; the
//! rewritten plan returns `A` itself.  Under [`canonical_form`] both
//! results are identical.
//!
//! The canonicalisation replaces every `Ref(oid)` with a tuple
//! `(@obj: k, @val: canonical(deref(oid)))` where `k` is the 0-based order
//! of first visit, and a back-edge (cycle) with just `(@obj: k)`.  Cyclic
//! object graphs (e.g. `Employee.manager` self references) terminate
//! because revisits stop recursion.

use excess_types::{ObjectStore, Value};
use std::collections::HashMap;

/// Canonicalise a value against a store (see module docs).
pub fn canonical_form(v: &Value, store: &ObjectStore) -> Value {
    let mut visited = HashMap::new();
    canon(v, store, &mut visited)
}

fn canon(v: &Value, store: &ObjectStore, visited: &mut HashMap<excess_types::Oid, usize>) -> Value {
    match v {
        Value::Ref(oid) => {
            if let Some(&k) = visited.get(oid) {
                return Value::tuple([("@obj", Value::int(k as i32))]);
            }
            let k = visited.len();
            visited.insert(*oid, k);
            match store.deref(*oid) {
                Ok(inner) => {
                    let c = canon(&inner.clone(), store, visited);
                    Value::tuple([("@obj", Value::int(k as i32)), ("@val", c)])
                }
                Err(_) => Value::tuple([
                    ("@obj", Value::int(k as i32)),
                    ("@dangling", Value::bool(true)),
                ]),
            }
        }
        Value::Tuple(t) => Value::Tuple(excess_types::Tuple::from_fields(
            t.iter()
                .map(|(n, fv)| (n.to_string(), canon(fv, store, visited))),
        )),
        Value::Set(s) => {
            let mut out = excess_types::MultiSet::new();
            for (e, c) in s.iter_counted() {
                out.insert_n(canon(e, store, visited), c);
            }
            Value::Set(out)
        }
        Value::Array(a) => Value::Array(a.iter().map(|e| canon(e, store, visited)).collect()),
        other => other.clone(),
    }
}

/// `true` iff two values are equal modulo consistent OID renaming and
/// reference following (each against its own store).
pub fn equal_modulo_identity(
    a: &Value,
    store_a: &ObjectStore,
    b: &Value,
    store_b: &ObjectStore,
) -> bool {
    canonical_form(a, store_a) == canonical_form(b, store_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excess_types::{SchemaType, TypeRegistry, Value};

    fn setup() -> (TypeRegistry, ObjectStore) {
        let mut r = TypeRegistry::new();
        r.define("Cell", SchemaType::tuple([("v", SchemaType::int4())]))
            .unwrap();
        (r, ObjectStore::new())
    }

    #[test]
    fn fresh_oids_with_equal_referents_canonicalise_equal() {
        let (r, mut s) = setup();
        let ty = r.lookup("Cell").unwrap();
        let cell = Value::tuple([("v", Value::int(7))]);
        let o1 = s.create(&r, ty, cell.clone()).unwrap();
        let o2 = s.create(&r, ty, cell).unwrap();
        assert_ne!(Value::Ref(o1), Value::Ref(o2));
        assert!(equal_modulo_identity(
            &Value::Ref(o1),
            &s,
            &Value::Ref(o2),
            &s
        ));
    }

    #[test]
    fn shared_vs_distinct_identity_distinguished() {
        // {r, r} (shared) vs {r1, r2} (two equal-valued objects): the
        // canonical forms differ — identity structure is preserved.
        let (r, mut s) = setup();
        let ty = r.lookup("Cell").unwrap();
        let cell = Value::tuple([("v", Value::int(7))]);
        let o1 = s.create(&r, ty, cell.clone()).unwrap();
        let o2 = s.create(&r, ty, cell).unwrap();
        let shared = Value::array([Value::Ref(o1), Value::Ref(o1)]);
        let distinct = Value::array([Value::Ref(o1), Value::Ref(o2)]);
        assert!(!equal_modulo_identity(&shared, &s, &distinct, &s));
        assert!(equal_modulo_identity(&shared, &s, &shared, &s));
    }

    #[test]
    fn cyclic_object_graphs_terminate() {
        let mut r = TypeRegistry::new();
        r.define(
            "Node",
            SchemaType::tuple([("next", SchemaType::reference("Node"))]),
        )
        .unwrap();
        let ty = r.lookup("Node").unwrap();
        let mut s = ObjectStore::new();
        // Create a node, then point it at itself.
        let oid = s.create_unchecked(ty, Value::dne());
        s.update(&r, oid, Value::tuple([("next", Value::Ref(oid))]))
            .unwrap();
        let c = canonical_form(&Value::Ref(oid), &s);
        // The inner reference is a back-edge: (@obj: 0).
        assert_eq!(c.to_string(), "(@obj: 0, @val: (next: (@obj: 0)))");
    }

    #[test]
    fn dangling_refs_are_marked() {
        let (r, mut s) = setup();
        let ty = r.lookup("Cell").unwrap();
        let o = s
            .create(&r, ty, Value::tuple([("v", Value::int(1))]))
            .unwrap();
        s.delete(o).unwrap();
        let c = canonical_form(&Value::Ref(o), &s);
        assert!(c.to_string().contains("@dangling"));
    }
}
