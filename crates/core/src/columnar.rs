//! Batched (vectorized) kernels over columnar extent chunks.
//!
//! The row evaluator clones the catalog value at every `Named` leaf and
//! then walks occurrence-at-a-time over cloned `Value` trees.  The
//! kernels here instead consume the extent's [`Chunk`] straight out of
//! the catalog — flat typed columns, no per-occurrence allocation — and
//! produce **exactly** the multiset the row path would, charging
//! **exactly** the same [`Counters`].  The
//! speedup is wall-clock only; the paper's cost arguments (which are
//! counter-based) are untouched.
//!
//! Four kernels, mirroring the hot physical ops:
//!
//! * [`run_scan_filter`] — fused `σ`-over-`Named`: a compiled conjunct
//!   list evaluated per row with typed fast paths (an `int4` column
//!   against an `int4` literal compares register-to-register).
//! * [`columnar_hash_join`] — build/probe on typed key columns with
//!   native `HashMap` keys instead of `Value` comparisons.
//! * [`columnar_group`] — `GRP` keyed by one attribute column.
//! * [`columnar_distinct`] — `DE`; chunk rows are distinct by
//!   construction, so this is a weight reset.
//!
//! # The chunk-safety contract
//!
//! A kernel runs only when the lowering pass annotated the node *and*
//! the runtime re-verification succeeds (the chunk exists, the
//! predicate compiles against its columns, the key columns pass the
//! null-freeness/kind/disjointness guard).  Any refusal returns `None`
//! and the caller falls through to the row evaluator — statistics and
//! stale annotations can cost speed, never correctness.  Three-valued
//! semantics survive because compiled comparisons read the validity
//! bitmaps: a `dne` cell makes the conjunct `F`, an `unk` cell makes it
//! `U`, exactly as [`compare`](crate::ops::predicate::compare).
//! The `in` operator is refused at compile time (it is the one
//! comparison that can raise a sort error, and compiled filters must be
//! total).
//!
//! Kernels are bypassed outright when profiling is enabled: the traced
//! row evaluator brackets every node, and keeping profile shapes
//! (per-operator self times, telescoping sums) identical to PR 1–6 is
//! worth more than a vectorized `EXPLAIN ANALYZE`.

use crate::counters::Counters;
use crate::eval::EvalCtx;
use crate::expr::{CmpOp, Expr, Pred};
use crate::ops::predicate::{self, Truth};
use crate::physical::{conjuncts, split_residual};
use excess_types::{Chunk, Column, ColumnData, MultiSet, Tuple, Value};
use std::collections::HashMap;

/// A batched kernel assignment for one logical node, resolved by node
/// address (see `PhysicalPlan::chunk_table`).
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkKernel {
    /// Fused selection over the chunk of a named extent.
    Scan {
        /// The extent whose chunk the scan reads.
        object: String,
    },
    /// Hash equi-join of two chunked extents on typed key columns.
    HashEquiJoin {
        /// Left extent name.
        left: String,
        /// Right extent name.
        right: String,
        /// Key column on the left chunk.
        left_key: String,
        /// Key column on the right chunk.
        right_key: String,
    },
    /// `GRP` of a chunked extent by one attribute column.
    Group {
        /// The extent whose chunk is grouped.
        object: String,
        /// The grouping attribute.
        key: String,
    },
    /// `DE` of a chunked extent.
    Distinct {
        /// The extent whose chunk is deduplicated.
        object: String,
    },
}

// --------------------------------------------------------------- filters

/// One side of a compiled comparison.
#[derive(Debug, Clone)]
enum Opnd<'p> {
    /// A column of the chunk, by index.
    Col(usize),
    /// A literal from the predicate.
    Lit(&'p Value),
}

/// A compiled conjunct, specialised where the column types allow.
#[derive(Debug, Clone)]
enum CompiledCmp<'p> {
    /// Null-free `int4` column against an `int4` literal.
    IntLit { col: usize, op: CmpOp, lit: i32 },
    /// Null-free string column against a string literal.
    StrLit { col: usize, op: CmpOp, lit: &'p str },
    /// Two null-free `int4` columns.
    IntCols { l: usize, op: CmpOp, r: usize },
    /// The total fallback: reconstruct cell values and defer to
    /// [`predicate::compare`] (nulls included — `value_at` surfaces
    /// them and `compare` applies the Kleene rules).
    Generic { l: Opnd<'p>, op: CmpOp, r: Opnd<'p> },
}

/// A selection predicate compiled against one chunk's columns:
/// conjuncts in the evaluator's left-to-right order, each total
/// (never raising) by construction.
#[derive(Debug, Clone)]
pub struct ScanFilter<'p> {
    cmps: Vec<CompiledCmp<'p>>,
}

/// Is `e` a bare attribute extract `INPUT.f`?  Returns the field.
fn bare_extract(e: &Expr) -> Option<&str> {
    if let Expr::TupExtract(inner, f) = e {
        if matches!(&**inner, Expr::Input(0)) {
            return Some(f);
        }
    }
    None
}

fn operand<'p>(e: &'p Expr, chunk: &Chunk) -> Option<Opnd<'p>> {
    if let Some(f) = bare_extract(e) {
        return chunk.col_index(f).map(Opnd::Col);
    }
    if let Expr::Const(v) = e {
        return Some(Opnd::Lit(v));
    }
    None
}

/// Compile `pred` against `chunk`'s columns, or `None` when the
/// predicate is not chunk-compilable: every conjunct must be an atomic
/// comparison (no `¬`), its operator must not be `in` (the one
/// comparison that can raise), and each operand must be either a bare
/// `INPUT.f` over an existing column or a literal.
pub fn compile_scan_filter<'p>(pred: &'p Pred, chunk: &Chunk) -> Option<ScanFilter<'p>> {
    let mut cmps = Vec::new();
    for c in conjuncts(pred) {
        let Pred::Cmp(l, op, r) = c else {
            return None; // ¬ breaks the flat short-circuit argument
        };
        if *op == CmpOp::In {
            return None; // `in` can raise a sort error; filters must be total
        }
        let (l, r) = (operand(l, chunk)?, operand(r, chunk)?);
        cmps.push(specialise(l, *op, r, chunk));
    }
    Some(ScanFilter { cmps })
}

/// Pick the typed fast path for a conjunct where the columns allow it
/// (null-free typed columns against matching literals or each other).
/// The result is tied to `chunk`'s column layout; a filter must only
/// ever run over the chunk it was compiled against.
fn specialise<'p>(l: Opnd<'p>, op: CmpOp, r: Opnd<'p>, chunk: &Chunk) -> CompiledCmp<'p> {
    match (&l, &r) {
        (Opnd::Col(ci), Opnd::Lit(v)) => {
            let col = col_of(chunk, *ci);
            if col.null_free() {
                if matches!(col.data, ColumnData::Int(_)) {
                    if let Some(lit) = v.as_int() {
                        return CompiledCmp::IntLit { col: *ci, op, lit };
                    }
                }
                if matches!(col.data, ColumnData::Str(_)) {
                    if let Some(lit) = v.as_str() {
                        return CompiledCmp::StrLit { col: *ci, op, lit };
                    }
                }
            }
        }
        (Opnd::Col(a), Opnd::Col(b)) => {
            let (ca, cb) = (col_of(chunk, *a), col_of(chunk, *b));
            if ca.null_free()
                && cb.null_free()
                && matches!(ca.data, ColumnData::Int(_))
                && matches!(cb.data, ColumnData::Int(_))
            {
                return CompiledCmp::IntCols { l: *a, op, r: *b };
            }
        }
        _ => {}
    }
    CompiledCmp::Generic { l, op, r }
}

/// Does `pred` compile against `chunk`?  The lowering pass's static
/// side of the chunk-safety check.
pub fn scan_pred_compiles(pred: &Pred, chunk: &Chunk) -> bool {
    compile_scan_filter(pred, chunk).is_some()
}

fn col_of(chunk: &Chunk, idx: usize) -> &Column {
    &chunk.columns()[idx].1
}

fn ord_truth(op: CmpOp, ord: std::cmp::Ordering) -> Truth {
    use std::cmp::Ordering::*;
    let t = match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::In => unreachable!("`in` is refused at compile time"),
    };
    if t {
        Truth::T
    } else {
        Truth::F
    }
}

fn eval_generic(chunk: &Chunk, l: &Opnd<'_>, op: CmpOp, r: &Opnd<'_>, i: usize) -> Truth {
    // `value_at` materialises nulls as null values, so `compare`'s
    // Kleene rules apply verbatim.  `in` never reaches here, so the
    // `None` (sort-error) case is impossible.
    let lv = match l {
        Opnd::Col(c) => col_of(chunk, *c).value_at(i),
        Opnd::Lit(v) => (*v).clone(),
    };
    let rv = match r {
        Opnd::Col(c) => col_of(chunk, *c).value_at(i),
        Opnd::Lit(v) => (*v).clone(),
    };
    predicate::compare(&lv, op, &rv).expect("`in` refused at compile time")
}

/// Run a compiled filter over rows `lo..hi` of `chunk`, producing the
/// multiset the row evaluator's `σ` would produce over the same rows
/// and charging identical counters: `occurrences_scanned` per
/// occurrence, `comparisons` per conjunct *evaluated* (left-to-right
/// with the `F` short-circuit) per occurrence.  `U` rows contribute
/// `unk` occurrences, as COMP requires.
pub fn run_scan_filter(
    chunk: &Chunk,
    filter: &ScanFilter<'_>,
    lo: usize,
    hi: usize,
    counters: &mut Counters,
) -> MultiSet {
    let cmps = &filter.cmps;
    let weights = chunk.weights();
    let mut out = MultiSet::new();
    for i in lo..hi {
        let w = weights[i];
        counters.occurrences_scanned += w;
        let mut acc = Truth::T;
        for c in cmps {
            counters.comparisons += w;
            let t = match c {
                CompiledCmp::IntLit { col, op, lit } => {
                    let ColumnData::Int(v) = &col_of(chunk, *col).data else {
                        unreachable!("specialised against this chunk")
                    };
                    ord_truth(*op, v[i].cmp(lit))
                }
                CompiledCmp::StrLit { col, op, lit } => {
                    let ColumnData::Str(v) = &col_of(chunk, *col).data else {
                        unreachable!("specialised against this chunk")
                    };
                    ord_truth(*op, v[i].as_str().cmp(lit))
                }
                CompiledCmp::IntCols { l, op, r } => {
                    let (ColumnData::Int(a), ColumnData::Int(b)) =
                        (&col_of(chunk, *l).data, &col_of(chunk, *r).data)
                    else {
                        unreachable!("specialised against this chunk")
                    };
                    ord_truth(*op, a[i].cmp(&b[i]))
                }
                CompiledCmp::Generic { l, op, r } => eval_generic(chunk, l, *op, r, i),
            };
            acc = acc.and(t);
            if acc == Truth::F {
                break;
            }
        }
        match acc {
            Truth::T => out.insert_n(chunk.row_value(i), w),
            Truth::U => out.insert_n(Value::unk(), w),
            Truth::F => {}
        }
    }
    out
}

// ------------------------------------------------------------------ join

/// The chunk-level guard for a columnar hash join — the column-granular
/// analogue of `key_pair_usable`, O(#columns) instead of O(rows):
///
/// * both key columns exist, are null-free, and share one supported
///   typed encoding (`int4` or string);
/// * the key field is absent from the other side;
/// * **all** attribute names are disjoint across the sides, so the
///   concatenated output tuple needs no `TUP_CAT` clash renaming.
pub fn join_keys_usable(left: &Chunk, right: &Chunk, lk: &str, rk: &str) -> bool {
    let (Some(lc), Some(rc)) = (left.col(lk), right.col(rk)) else {
        return false;
    };
    if !lc.null_free() || !rc.null_free() {
        return false;
    }
    let typed_pair = matches!(
        (&lc.data, &rc.data),
        (ColumnData::Int(_), ColumnData::Int(_)) | (ColumnData::Str(_), ColumnData::Str(_))
    );
    if !typed_pair {
        return false;
    }
    left.columns()
        .iter()
        .all(|(n, _)| right.col_index(n).is_none())
}

/// Build/probe a hash equi-join over two chunks, or `None` when the
/// guard refuses (caller falls back to the row hash kernel, then to
/// the nested loop).  Requires an empty residual — the caller only
/// annotates single-conjunct equi-joins — so no predicate is ever
/// evaluated: `occurrences_scanned` is charged per in-bucket pair and
/// `comparisons` stays at zero, exactly like the row hash kernel on
/// the same plan.
pub fn columnar_hash_join(
    left: &Chunk,
    right: &Chunk,
    lk: &str,
    rk: &str,
    counters: &mut Counters,
) -> Option<MultiSet> {
    if !join_keys_usable(left, right, lk, rk) {
        return None;
    }
    let (lw, rw) = (left.weights(), right.weights());
    let mut out = MultiSet::new();
    let mut emit = |i: usize, j: usize| {
        counters.occurrences_scanned += lw[i] * rw[j];
        let mut fields = left.row_fields(i);
        fields.extend(right.row_fields(j));
        out.insert_n(Value::Tuple(Tuple::from_fields(fields)), lw[i] * rw[j]);
    };
    match (
        &left.col(lk).expect("guard checked").data,
        &right.col(rk).expect("guard checked").data,
    ) {
        (ColumnData::Int(lv), ColumnData::Int(rv)) => {
            let mut buckets: HashMap<i32, Vec<usize>> = HashMap::with_capacity(rv.len());
            for (j, k) in rv.iter().enumerate() {
                buckets.entry(*k).or_default().push(j);
            }
            for (i, k) in lv.iter().enumerate() {
                if let Some(matches) = buckets.get(k) {
                    for &j in matches {
                        emit(i, j);
                    }
                }
            }
        }
        (ColumnData::Str(lv), ColumnData::Str(rv)) => {
            let mut buckets: HashMap<&str, Vec<usize>> = HashMap::with_capacity(rv.len());
            for (j, k) in rv.iter().enumerate() {
                buckets.entry(k.as_str()).or_default().push(j);
            }
            for (i, k) in lv.iter().enumerate() {
                if let Some(matches) = buckets.get(k.as_str()) {
                    for &j in matches {
                        emit(i, j);
                    }
                }
            }
        }
        _ => unreachable!("guard admits int/str key pairs only"),
    }
    Some(out)
}

// ----------------------------------------------------------- group / DE

/// `GRP` a chunk by one attribute column, or `None` when the column is
/// missing.  Row semantics preserved: every occurrence charges
/// `occurrences_scanned`, `dne` keys drop their occurrences, `unk` keys
/// collect into one group, groups come out in key order.
pub fn columnar_group(chunk: &Chunk, key: &str, counters: &mut Counters) -> Option<MultiSet> {
    if chunk.is_empty() {
        return Some(MultiSet::new());
    }
    let kcol = chunk.col(key)?;
    let weights = chunk.weights();
    let mut groups: std::collections::BTreeMap<Value, MultiSet> = Default::default();
    for (i, &w) in weights.iter().enumerate() {
        counters.occurrences_scanned += w;
        if kcol.is_dne(i) {
            continue; // an occurrence with no grouping key is dropped
        }
        groups
            .entry(kcol.value_at(i))
            .or_default()
            .insert_n(chunk.row_value(i), w);
    }
    Some(MultiSet::from_occurrences(
        groups.into_values().map(Value::Set),
    ))
}

/// `DE` a chunk.  Rows are the distinct elements by construction, so
/// the output is every row with multiplicity one;
/// `de_input_occurrences` is charged with the total occurrence count,
/// as the row evaluator does.
pub fn columnar_distinct(chunk: &Chunk, counters: &mut Counters) -> MultiSet {
    counters.de_input_occurrences += chunk.total_occurrences();
    let mut out = MultiSet::new();
    for i in 0..chunk.len() {
        out.insert_n(chunk.row_value(i), 1);
    }
    out
}

// ------------------------------------------------- evaluator-side hooks

/// Look up the chunk kernel assigned to node `e`, when batched
/// execution is admissible at all (kernels installed, profiling off).
fn kernel_for<'c>(e: &Expr, ctx: &EvalCtx<'c>) -> Option<ChunkKernel> {
    if ctx.trace.is_some() {
        return None; // keep profile shapes identical to the row path
    }
    ctx.chunk_kernels
        .as_ref()
        .and_then(|t| t.get(&(e as *const Expr as usize)))
        .cloned()
}

fn chunk_of<'a>(ctx: &EvalCtx<'a>, input: &Expr, object: &str) -> Option<&'a Chunk> {
    match input {
        Expr::Named(n) if n == object => {}
        _ => return None, // stale annotation: node shape changed
    }
    let cat = ctx.catalog;
    cat.get_chunk(object)
}

/// `σ`-over-`Named` hook: compile the predicate against the extent's
/// chunk and run the batched filter.  `None` falls through to the row
/// path (no annotation, no chunk, or the predicate refuses to
/// compile); `named_object_scans` is charged exactly once, as the row
/// path's `Named` leaf would.
pub(crate) fn try_select<'a>(
    e: &Expr,
    input: &Expr,
    pred: &Pred,
    ctx: &mut EvalCtx<'a>,
) -> Option<Value> {
    let ChunkKernel::Scan { object } = kernel_for(e, ctx)? else {
        return None;
    };
    let chunk = chunk_of(ctx, input, &object)?;
    if chunk.is_empty() {
        // The row path would scan the (empty) extent and filter nothing.
        ctx.counters.named_object_scans += 1;
        return Some(Value::Set(MultiSet::new()));
    }
    let filter = compile_scan_filter(pred, chunk)?;
    ctx.counters.named_object_scans += 1;
    let out = run_scan_filter(chunk, &filter, 0, chunk.len(), &mut ctx.counters);
    Some(Value::Set(out))
}

/// `rel_join`-over-two-`Named` hook.  `None` falls through to the row
/// path — where the plan's row hash kernel is still installed, so a
/// refused columnar join degrades to the guarded row hash join, then
/// to the nested loop.
pub(crate) fn try_join<'a>(
    e: &Expr,
    left: &Expr,
    right: &Expr,
    pred: &Pred,
    ctx: &mut EvalCtx<'a>,
) -> Option<Value> {
    let ChunkKernel::HashEquiJoin {
        left: lo,
        right: ro,
        left_key,
        right_key,
    } = kernel_for(e, ctx)?
    else {
        return None;
    };
    let lchunk = chunk_of(ctx, left, &lo)?;
    let rchunk = chunk_of(ctx, right, &ro)?;
    // The kernel never evaluates a predicate, so it is only sound when
    // the equi conjunct is the *whole* predicate.
    if !matches!(split_residual(pred, &left_key, &right_key), Some(r) if r.is_empty()) {
        return None;
    }
    // Try the annotated orientation, then the flip, like the row kernel.
    let out = columnar_hash_join(lchunk, rchunk, &left_key, &right_key, &mut ctx.counters)
        .or_else(|| columnar_hash_join(lchunk, rchunk, &right_key, &left_key, &mut ctx.counters))?;
    ctx.counters.named_object_scans += 2;
    Some(Value::Set(out))
}

/// `GRP`-over-`Named` hook, for grouping keys of the form `INPUT.f`.
pub(crate) fn try_group<'a>(
    e: &Expr,
    input: &Expr,
    by: &Expr,
    ctx: &mut EvalCtx<'a>,
) -> Option<Value> {
    let ChunkKernel::Group { object, key } = kernel_for(e, ctx)? else {
        return None;
    };
    if bare_extract(by) != Some(key.as_str()) {
        return None; // stale annotation
    }
    let chunk = chunk_of(ctx, input, &object)?;
    if !chunk.is_empty() && chunk.col(&key).is_none() {
        return None; // refuse before charging anything
    }
    ctx.counters.named_object_scans += 1;
    let groups = columnar_group(chunk, &key, &mut ctx.counters).expect("key column checked");
    Some(Value::Set(groups))
}

/// `DE`-over-`Named` hook.
pub(crate) fn try_distinct<'a>(e: &Expr, input: &Expr, ctx: &mut EvalCtx<'a>) -> Option<Value> {
    let ChunkKernel::Distinct { object } = kernel_for(e, ctx)? else {
        return None;
    };
    let chunk = chunk_of(ctx, input, &object)?;
    ctx.counters.named_object_scans += 1;
    Some(Value::Set(columnar_distinct(chunk, &mut ctx.counters)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ChunkedCatalog;
    use crate::eval::evaluate;
    use crate::physical::{evaluate_physical, PhysChoice, PhysOp, PhysicalPlan};
    use crate::profile::NodePath;
    use excess_types::{ObjectStore, TypeRegistry};
    use std::collections::BTreeMap;

    fn extent(rows: Vec<(Value, u64)>) -> Value {
        let mut s = MultiSet::new();
        for (v, n) in rows {
            s.insert_n(v, n);
        }
        Value::Set(s)
    }

    fn students() -> Value {
        let mut rows = Vec::new();
        for i in 0..40i32 {
            let dept = match i % 7 {
                0 => Value::dne(),
                3 => Value::unk(),
                d => Value::int(d),
            };
            rows.push((
                Value::tuple([
                    ("sname", Value::str(format!("s{i:02}"))),
                    ("sdept", dept),
                    ("sgpa", Value::int(i % 5)),
                ]),
                (i as u64 % 3) + 1,
            ));
        }
        extent(rows)
    }

    fn catalogs() -> (HashMap<String, Value>, ChunkedCatalog) {
        let mut rows = ChunkedCatalog::default();
        rows.put("S", students());
        let mut emps = Vec::new();
        for i in 0..30i32 {
            emps.push((
                Value::tuple([
                    ("ename", Value::str(format!("s{:02}", i % 40))),
                    ("esal", Value::int(1000 + i)),
                ]),
                1,
            ));
        }
        rows.put("E", extent(emps));
        let plain: HashMap<String, Value> = rows.objects.clone().into_iter().collect();
        (plain, rows)
    }

    fn annotated(plan: &Expr, op: PhysOp) -> PhysicalPlan {
        let mut choices: BTreeMap<NodePath, PhysChoice> = BTreeMap::new();
        choices.insert(
            Vec::new(),
            PhysChoice {
                op,
                why: "test".into(),
                est_rows: None,
            },
        );
        PhysicalPlan {
            logical: plan.clone(),
            choices,
            elided_guards: Default::default(),
        }
    }

    fn run_row(plan: &Expr, cat: &dyn crate::catalog::Catalog) -> (Value, Counters) {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, cat);
        let v = evaluate(plan, &mut ctx).expect("row eval");
        (v, ctx.counters)
    }

    fn run_columnar(pp: &PhysicalPlan, cat: &dyn crate::catalog::Catalog) -> (Value, Counters) {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, cat);
        let v = evaluate_physical(pp, &mut ctx).expect("columnar eval");
        (v, ctx.counters)
    }

    #[test]
    fn scan_is_canon_and_counter_identical_including_nulls() {
        let (plain, chunked) = catalogs();
        // sdept has dne (→ F, dropped) and unk (→ unk occurrence) cells,
        // plus a second conjunct exercising the short-circuit accounting.
        let pred = Pred::cmp(Expr::input().extract("sdept"), CmpOp::Eq, Expr::int(2)).and(
            Pred::cmp(Expr::input().extract("sgpa"), CmpOp::Ge, Expr::int(1)),
        );
        let plan = Expr::named("S").select(pred);
        let (vr, cr) = run_row(&plan, &plain);
        let pp = annotated(&plan, PhysOp::ColumnarScan { object: "S".into() });
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc, "columnar scan changed the result");
        assert_eq!(cr, cc, "columnar scan changed the counters");
    }

    #[test]
    fn join_is_canon_and_counter_identical() {
        let (plain, chunked) = catalogs();
        let pred = Pred::cmp(
            Expr::input().extract("sname"),
            CmpOp::Eq,
            Expr::input().extract("ename"),
        );
        let plan = Expr::named("S").rel_join(Expr::named("E"), pred);
        let (vr, _) = run_row(&plan, &plain);
        let pp = annotated(
            &plan,
            PhysOp::ColumnarHashEquiJoin {
                left: "S".into(),
                right: "E".into(),
                left_key: "sname".into(),
                right_key: "ename".into(),
            },
        );
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc, "columnar join changed the result");
        // Counter parity target is the row *hash* kernel on the same plan.
        let row_hash = annotated(
            &plan,
            PhysOp::HashEquiJoin {
                left_key: "sname".into(),
                right_key: "ename".into(),
            },
        );
        let (vh, ch) = run_columnar(&row_hash, &plain);
        assert_eq!(vh, vc);
        assert_eq!(ch, cc, "columnar join must charge like the row hash kernel");
    }

    #[test]
    fn group_and_distinct_match_the_row_path() {
        let (plain, chunked) = catalogs();
        let g = Expr::named("S").group_by(Expr::input().extract("sdept"));
        let (vr, cr) = run_row(&g, &plain);
        let pp = annotated(
            &g,
            PhysOp::ColumnarHashGroup {
                object: "S".into(),
                key: "sdept".into(),
            },
        );
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc, "columnar GRP changed the result");
        assert_eq!(cr, cc, "columnar GRP changed the counters");

        let d = Expr::named("S").dup_elim();
        let (vr, cr) = run_row(&d, &plain);
        let pp = annotated(&d, PhysOp::ColumnarHashDistinct { object: "S".into() });
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc, "columnar DE changed the result");
        assert_eq!(cr, cc, "columnar DE changed the counters");
    }

    #[test]
    fn missing_chunk_or_uncompilable_pred_falls_back_silently() {
        let (plain, _) = catalogs();
        // Catalog without chunks: the annotated plan must still run, via
        // the row path, with row-path counters.
        let pred = Pred::cmp(Expr::input().extract("sgpa"), CmpOp::Ge, Expr::int(2));
        let plan = Expr::named("S").select(pred.clone());
        let (vr, cr) = run_row(&plan, &plain);
        let pp = annotated(&plan, PhysOp::ColumnarScan { object: "S".into() });
        let (vc, cc) = run_columnar(&pp, &plain);
        assert_eq!(vr, vc);
        assert_eq!(cr, cc);

        // `in` refuses to compile: with chunks present the kernel must
        // still fall back, because compiled filters have to be total.
        let (_, chunked) = catalogs();
        let inp = Pred::cmp(
            Expr::input().extract("sgpa"),
            CmpOp::In,
            Expr::Const(Value::set([Value::int(1), Value::int(2)])),
        );
        let plan = Expr::named("S").select(inp);
        let (vr, cr) = run_row(&plan, &plain);
        let pp = annotated(&plan, PhysOp::ColumnarScan { object: "S".into() });
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc);
        assert_eq!(cr, cc);
    }

    #[test]
    fn nullable_key_refuses_columnar_join_but_still_answers() {
        let (plain, chunked) = catalogs();
        // sdept is nullable: the chunk guard must refuse, and the row
        // hash kernel's own guard refuses too, landing on the nested loop.
        let pred = Pred::cmp(
            Expr::input().extract("sdept"),
            CmpOp::Eq,
            Expr::input().extract("esal"),
        );
        let plan = Expr::named("S").rel_join(Expr::named("E"), pred);
        let (vr, cr) = run_row(&plan, &plain);
        let pp = annotated(
            &plan,
            PhysOp::ColumnarHashEquiJoin {
                left: "S".into(),
                right: "E".into(),
                left_key: "sdept".into(),
                right_key: "esal".into(),
            },
        );
        let (vc, cc) = run_columnar(&pp, &chunked);
        assert_eq!(vr, vc);
        assert_eq!(cr, cc, "full fallback must charge nested-loop counters");
    }
}
